//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset the `dream-suite` workspace uses: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`, `any::<T>()`, integer and
//! float range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, the `prop_assert*` / [`prop_assume!`] macros and
//! [`ProptestConfig::with_cases`].
//!
//! Cases are sampled from a deterministic per-test RNG (seeded from the test
//! name), so failures are reproducible run to run. There is **no shrinking**:
//! a failing case panics with the exact sampled inputs instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How a single sampled case ended, when it did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is discarded.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration. Only `cases` is honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy combinators grouped the way the real crate groups them.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use std::fmt;
        use std::ops::Range;

        /// Length specifications accepted by [`vec`]: an exact `usize` or a
        /// half-open `Range<usize>`.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    lo: exact,
                    hi_exclusive: exact + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        /// The strategy returned by [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                use rand::Rng;
                let len = if self.size.lo + 1 == self.size.hi_exclusive {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi_exclusive)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for `Vec`s whose elements come from `element` and
        /// whose length comes from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::{StdRng, Strategy};
        use std::fmt;

        /// The strategy returned by [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                use rand::Rng;
                let i = rng.gen_range(0..self.options.len());
                self.options[i].clone()
            }
        }

        /// A strategy drawing uniformly from `options`.
        pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: no options");
            Select { options }
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministically derives a seed from a test's identifying string (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: samples up to `cases` successful runs of `case`
/// (a closure over freshly sampled inputs), tolerating `prop_assume!`
/// rejections, and panics on the first failure.
pub fn run_property_test(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_name));
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(20).max(1024);
    while passed < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed after {passed} passing case(s)\n\
                     inputs: {inputs}\n{msg}"
                );
            }
        }
    }
}

/// Defines property tests. Mirrors the real crate's surface syntax: inside
/// a test module one writes `#[test]` above each property, exactly as with
/// the real crate. (The attribute is left off here so the doctest can call
/// the generated function directly.)
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn addition_commutes(a in any::<i16>(), b in any::<i16>()) {
///         prop_assert_eq!(i32::from(a) + i32::from(b), i32::from(b) + i32::from(a));
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property_test(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                        let inputs = {
                            let mut s = String::new();
                            $(
                                s.push_str(concat!(stringify!($arg), " = "));
                                s.push_str(&format!("{:?}, ", &$arg));
                            )+
                            s
                        };
                        let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                        (inputs, outcome)
                    },
                );
            }
        )*
    };
}

/// Like `assert!`, but fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u32..22, b in 1usize..=32, f in -4.0f64..4.0) {
            prop_assert!(a < 22);
            prop_assert!((1..=32).contains(&b));
            prop_assert!((-4.0..4.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u32..4, any::<bool>()), 0..6),
            exact in prop::collection::vec(any::<i16>(), 8),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(exact.len(), 8);
            for (x, _flag) in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<i16>()) {
            prop_assume!(x != i16::MIN);
            prop_assert_eq!(x.abs(), x.wrapping_abs());
        }
    }

    #[test]
    fn prop_map_and_select() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        let sel = prop::sample::select(vec!["a", "b", "c"]);
        for _ in 0..100 {
            assert!(["a", "b", "c"].contains(&sel.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        run_property_test_fails();
    }

    fn run_property_test_fails() {
        let config = ProptestConfig::with_cases(16);
        crate::run_property_test(&config, "demo", |rng| {
            let x = crate::Strategy::sample(&(0u32..100), rng);
            let outcome = (|| -> Result<(), TestCaseError> {
                prop_assert!(x < 1000, "unreachable");
                prop_assert!(x % 2 == 0 || x % 2 == 1, "unreachable");
                prop_assert!(x < 50, "x was {}", x);
                Ok(())
            })();
            (format!("x = {x:?}"), outcome)
        });
    }
}
