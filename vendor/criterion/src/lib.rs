//! Minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the `dream-suite` workspace uses — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — so that
//! `cargo bench` (and the CI smoke job `cargo bench --no-run`) keep working
//! without network access. Each benchmark is warmed up briefly, timed over a
//! short budget, and reported as a mean time per iteration; there is no
//! statistical analysis, plotting or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Time budget spent measuring one benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Time budget spent warming one benchmark up.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Quantity processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: let caches and branch predictors settle.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
        }
        // Measurement: batched timing over a fixed budget.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..16 {
                std::hint::black_box(routine());
            }
            iters += 16;
            if start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(path: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{path:<40} (no measurement)");
        return;
    }
    let ns_per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
        }
        Throughput::Bytes(n) => {
            format!("  {:.1} MB/s", n as f64 / ns_per_iter * 1e3)
        }
    });
    println!(
        "{path:<40} {:>12.1} ns/iter{}",
        ns_per_iter,
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much data one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this stand-in is time-budgeted and
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b, self.throughput);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b, self.throughput);
        self
    }

    /// Ends the group. (No cross-benchmark analysis in this stand-in.)
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&id.name, &b, None);
        self
    }
}

/// Re-export matching the real crate's `criterion::black_box` path.
/// (The workspace's benches use `std::hint::black_box` directly.)
pub use std::hint::black_box;

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse in
            // this stand-in.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| ()));
        group.finish();
    }
}
