//! Minimal, offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides exactly what the `dream-suite` workspace uses: a deterministic
//! [`rngs::StdRng`] seedable via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically solid
//! for simulation, *not* cryptographic, and its stream differs from the real
//! crate's ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 * span.
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let i: i16 = rng.gen_range(-8000i16..8000);
            assert!((-8000..8000).contains(&i));
            let u: u32 = rng.gen_range(1u32..=32);
            assert!((1..=32).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "{trues}");
    }
}
