//! The Q0.15 sample type.

use core::fmt;
use core::ops::{Add, Neg, Sub};

use crate::Rounding;

/// Number of fractional bits in [`Q15`].
pub const Q15_FRACTION_BITS: u32 = 15;

/// Largest representable [`Q15`] value (`32767 / 32768`, just under `1.0`).
pub const Q15_MAX: Q15 = Q15(i16::MAX);

/// Smallest representable [`Q15`] value (`-1.0` exactly).
pub const Q15_MIN: Q15 = Q15(i16::MIN);

/// A 16-bit two's-complement fixed-point sample in Q0.15 format.
///
/// The value is `raw / 2^15`, covering `[-1.0, 1.0)`. All arithmetic
/// saturates instead of wrapping — the behaviour of the saturating DSP
/// extensions present on the microcontrollers the paper targets, and the
/// behaviour that keeps a stuck-at fault from silently turning an overflow
/// into an unrelated value.
///
/// The bit layout matters to this repository beyond arithmetic: small-valued
/// samples have long runs of identical most-significant bits (the sign
/// extension), which is exactly what the DREAM technique exploits.
///
/// ```
/// use dream_fixed::Q15;
/// let a = Q15::from_f64(0.75);
/// let b = Q15::from_f64(0.50);
/// // Saturating addition: 1.25 is clamped to just under 1.0.
/// assert_eq!((a + b), dream_fixed::Q15_MAX);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q15(i16);

impl Q15 {
    /// The zero sample.
    pub const ZERO: Q15 = Q15(0);

    /// One least-significant-bit step (`2^-15`).
    pub const EPSILON: Q15 = Q15(1);

    /// Creates a sample from its raw two's-complement bit pattern.
    ///
    /// ```
    /// use dream_fixed::Q15;
    /// assert_eq!(Q15::from_raw(16384).to_f64(), 0.5);
    /// ```
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        Q15(raw)
    }

    /// Converts a float to the nearest representable sample, saturating at
    /// the format limits.
    ///
    /// ```
    /// use dream_fixed::{Q15, Q15_MAX, Q15_MIN};
    /// assert_eq!(Q15::from_f64(2.0), Q15_MAX);
    /// assert_eq!(Q15::from_f64(-2.0), Q15_MIN);
    /// ```
    pub fn from_f64(value: f64) -> Self {
        let scaled = (value * f64::from(1i32 << Q15_FRACTION_BITS)).round();
        if scaled >= f64::from(i16::MAX) {
            Q15_MAX
        } else if scaled <= f64::from(i16::MIN) {
            Q15_MIN
        } else {
            Q15(scaled as i16)
        }
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Returns the value as a float (`raw / 2^15`).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1i32 << Q15_FRACTION_BITS)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-(-1.0)` clamps to `Q15_MAX`).
    #[inline]
    pub fn saturating_neg(self) -> Q15 {
        Q15(self.0.checked_neg().unwrap_or(i16::MAX))
    }

    /// Fixed-point multiplication with the given rounding mode.
    ///
    /// The product of two Q0.15 values is a Q1.30 value; this shifts it back
    /// to Q0.15. The only case that saturates is `-1.0 × -1.0`.
    ///
    /// ```
    /// use dream_fixed::{Q15, Rounding};
    /// let half = Q15::from_f64(0.5);
    /// assert_eq!(half.mul(half, Rounding::Nearest).to_f64(), 0.25);
    /// ```
    pub fn mul(self, rhs: Q15, rounding: Rounding) -> Q15 {
        let wide = i32::from(self.0) * i32::from(rhs.0);
        let shifted = rounding.shift_right(i64::from(wide), Q15_FRACTION_BITS);
        Q15(clamp_i64_to_i16(shifted))
    }

    /// Absolute value, saturating for `-1.0`.
    #[inline]
    pub fn saturating_abs(self) -> Q15 {
        Q15(self.0.checked_abs().unwrap_or(i16::MAX))
    }

    /// Length (in bits) of the run of identical most-significant bits,
    /// including the sign bit itself. Always in `1..=16`.
    ///
    /// This is the quantity the DREAM write logic computes: the number of
    /// sign-extension bits that can be reconstructed from the sign alone.
    ///
    /// ```
    /// use dream_fixed::Q15;
    /// assert_eq!(Q15::from_raw(0).sign_run(), 16);      // all zero bits
    /// assert_eq!(Q15::from_raw(-1).sign_run(), 16);     // all one bits
    /// assert_eq!(Q15::from_raw(1).sign_run(), 15);      // 15 zeros then a 1
    /// assert_eq!(Q15::from_raw(i16::MIN).sign_run(), 1); // 1000…0
    /// ```
    pub fn sign_run(self) -> u32 {
        let bits = self.0 as u16;
        if self.0 < 0 {
            (!bits).leading_zeros().max(1)
        } else {
            bits.leading_zeros().max(1)
        }
        .min(16)
    }
}

#[inline]
fn clamp_i64_to_i16(v: i64) -> i16 {
    v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16
}

impl Add for Q15 {
    type Output = Q15;
    fn add(self, rhs: Q15) -> Q15 {
        self.saturating_add(rhs)
    }
}

impl Sub for Q15 {
    type Output = Q15;
    fn sub(self, rhs: Q15) -> Q15 {
        self.saturating_sub(rhs)
    }
}

impl Neg for Q15 {
    type Output = Q15;
    fn neg(self) -> Q15 {
        self.saturating_neg()
    }
}

impl From<i16> for Q15 {
    fn from(raw: i16) -> Self {
        Q15::from_raw(raw)
    }
}

impl From<Q15> for i16 {
    fn from(q: Q15) -> i16 {
        q.raw()
    }
}

impl fmt::Debug for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q15({} = {:.6})", self.0, self.to_f64())
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip_is_tight() {
        for raw in [-32768i16, -1, 0, 1, 32767, 1234, -4321] {
            let q = Q15::from_raw(raw);
            assert_eq!(Q15::from_f64(q.to_f64()), q);
        }
    }

    #[test]
    fn addition_saturates_both_ways() {
        assert_eq!(Q15_MAX + Q15::EPSILON, Q15_MAX);
        assert_eq!(Q15_MIN - Q15::EPSILON, Q15_MIN);
        assert_eq!(-Q15_MIN, Q15_MAX);
    }

    #[test]
    fn multiplication_matches_float_reference() {
        let cases = [(0.5, 0.5), (-0.25, 0.75), (0.999, -0.999), (-1.0, 0.5)];
        for (a, b) in cases {
            let q = Q15::from_f64(a).mul(Q15::from_f64(b), Rounding::Nearest);
            assert!((q.to_f64() - a * b).abs() < 2.0 / 32768.0, "{a} * {b}");
        }
    }

    #[test]
    fn minus_one_squared_saturates() {
        assert_eq!(Q15_MIN.mul(Q15_MIN, Rounding::Nearest), Q15_MAX);
    }

    #[test]
    fn sign_run_counts_sign_extension() {
        assert_eq!(Q15::from_raw(0x0001).sign_run(), 15);
        assert_eq!(Q15::from_raw(0x00FF).sign_run(), 8);
        assert_eq!(Q15::from_raw(0x7FFF).sign_run(), 1);
        assert_eq!(Q15::from_raw(-2).sign_run(), 15);
        assert_eq!(Q15::from_raw(-256).sign_run(), 8);
    }

    #[test]
    fn abs_saturates_at_min() {
        assert_eq!(Q15_MIN.saturating_abs(), Q15_MAX);
        assert_eq!(Q15::from_raw(-5).saturating_abs(), Q15::from_raw(5));
    }
}
