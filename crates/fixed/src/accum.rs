//! The 32-bit multiply-accumulate register.

use core::fmt;
use core::ops::{Add, Sub};

use crate::{Rounding, Q15};

/// A 32-bit accumulator for Q15 multiply-accumulate chains.
///
/// Products of two Q0.15 samples are Q1.30 values; summing a realistic
/// filter length (tens of taps) fits comfortably in 32 bits, matching the
/// single-cycle MAC units of the ARM-class cores modelled by the SoC
/// substrate. Accumulation itself saturates at the i32 limits rather than
/// wrapping, and the value only re-enters the (faulty, protected) data
/// memory via [`Acc32::to_q15`], which performs the explicit narrowing.
///
/// ```
/// use dream_fixed::{Acc32, Q15, Rounding};
/// let x = Q15::from_f64(0.5);
/// let acc = Acc32::ZERO.mac(x, x).mac(x, x); // 0.25 + 0.25
/// assert_eq!(acc.to_q15(Rounding::Nearest).to_f64(), 0.5);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acc32(i32);

impl Acc32 {
    /// The empty accumulator.
    pub const ZERO: Acc32 = Acc32(0);

    /// Creates an accumulator from a raw Q1.30 value.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Acc32(raw)
    }

    /// Loads a Q15 sample into the accumulator (shifted up to Q1.30).
    #[inline]
    pub fn from_q15(sample: Q15) -> Self {
        Acc32(i32::from(sample.raw()) << 15)
    }

    /// Returns the raw Q1.30 contents.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Multiply-accumulate: `self + a * b`, saturating.
    #[inline]
    pub fn mac(self, a: Q15, b: Q15) -> Acc32 {
        self.saturating_add_raw(i32::from(a.raw()) * i32::from(b.raw()))
    }

    /// Multiply-subtract: `self - a * b`, saturating.
    #[inline]
    pub fn msu(self, a: Q15, b: Q15) -> Acc32 {
        self.saturating_sub_raw(i32::from(a.raw()) * i32::from(b.raw()))
    }

    /// Accumulates a sample scaled by a small integer (shift-add filters
    /// with taps like 1, 3, 3, 1). Saturates at the Q1.30 limits — sums
    /// whose magnitude exceeds 2.0 need integer-domain accumulation
    /// instead.
    #[inline]
    pub fn mac_int(self, a: Q15, k: i32) -> Acc32 {
        let wide = (i64::from(a.raw()) * i64::from(k)) << 15;
        let clamped = wide.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
        self.saturating_add_raw(clamped)
    }

    /// Narrows back to a Q15 sample with the given rounding, saturating at
    /// the format limits.
    pub fn to_q15(self, rounding: Rounding) -> Q15 {
        let shifted = rounding.shift_right(i64::from(self.0), 15);
        Q15::from_raw(shifted.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16)
    }

    /// Narrows with an additional right shift (for kernels whose taps carry
    /// a power-of-two gain, e.g. the `/8` of the spline low-pass filter).
    pub fn to_q15_shifted(self, extra_shift: u32, rounding: Rounding) -> Q15 {
        let shifted = rounding.shift_right(i64::from(self.0), 15 + extra_shift);
        Q15::from_raw(shifted.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16)
    }

    /// Returns the accumulator value as a float in sample units (the raw
    /// contents interpreted as Q1.30).
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / (1u64 << 30) as f64
    }

    #[inline]
    fn saturating_add_raw(self, raw: i32) -> Acc32 {
        Acc32(self.0.saturating_add(raw))
    }

    #[inline]
    fn saturating_sub_raw(self, raw: i32) -> Acc32 {
        Acc32(self.0.saturating_sub(raw))
    }
}

/// Dot product of two equal-length raw-Q15 slices, bit-identical to
/// folding [`Acc32::mac`] over the pairs starting from [`Acc32::ZERO`] —
/// restructured so the common case autovectorizes.
///
/// Saturation makes the sequential fold order-sensitive in general, so the
/// fast path is gated on a per-call proof that no prefix of the sum can
/// saturate: when `Σ|a[i]| ≤ 65535` (raw units — a row gain below 2.0),
/// every prefix of `Σ a[i]·b[i]` is bounded by `32768 · 65535 < 2³¹`, the
/// saturating adds all behave as plain adds, and the sum may be
/// reassociated freely — here into eight independent i32 lanes the
/// compiler turns into SIMD multiply-accumulates. Slices failing the bound
/// fall back to the exact sequential fold.
///
/// ```
/// use dream_fixed::{dot_q15, Acc32, Q15};
/// let a = [16384i16, -8192, 4096];
/// let b = [1000i16, 2000, -3000];
/// let fold = a.iter().zip(&b).fold(Acc32::ZERO, |acc, (&x, &y)| {
///     acc.mac(Q15::from_raw(x), Q15::from_raw(y))
/// });
/// assert_eq!(dot_q15(&a, &b), fold);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_q15(a: &[i16], b: &[i16]) -> Acc32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let gain: u32 = a.iter().map(|&v| u32::from(v.unsigned_abs())).sum();
    if gain <= u32::from(u16::MAX) {
        const LANES: usize = 8;
        let mut lanes = [0i32; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (xs, ys) in (&mut ca).zip(&mut cb) {
            for (lane, (&x, &y)) in lanes.iter_mut().zip(xs.iter().zip(ys)) {
                *lane += i32::from(x) * i32::from(y);
            }
        }
        let mut total: i32 = lanes.iter().sum();
        for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
            total += i32::from(x) * i32::from(y);
        }
        Acc32(total)
    } else {
        a.iter().zip(b).fold(Acc32::ZERO, |acc, (&x, &y)| {
            acc.mac(Q15::from_raw(x), Q15::from_raw(y))
        })
    }
}

impl Add for Acc32 {
    type Output = Acc32;
    fn add(self, rhs: Acc32) -> Acc32 {
        Acc32(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Acc32 {
    type Output = Acc32;
    fn sub(self, rhs: Acc32) -> Acc32 {
        Acc32(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Acc32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Acc32({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_chain_matches_float() {
        let taps = [0.25, -0.5, 0.125, 0.375];
        let xs = [0.9, -0.7, 0.3, -0.1];
        let mut acc = Acc32::ZERO;
        let mut reference = 0.0;
        for (t, x) in taps.iter().zip(&xs) {
            acc = acc.mac(Q15::from_f64(*t), Q15::from_f64(*x));
            reference += t * x;
        }
        assert!((acc.to_q15(Rounding::Nearest).to_f64() - reference).abs() < 1e-3);
    }

    #[test]
    fn from_q15_round_trips() {
        for raw in [-32768i16, -1, 0, 1, 32767] {
            let q = Q15::from_raw(raw);
            assert_eq!(Acc32::from_q15(q).to_q15(Rounding::Floor), q);
        }
    }

    #[test]
    fn narrowing_saturates() {
        let big = Acc32::from_raw(i32::MAX);
        assert_eq!(big.to_q15(Rounding::Nearest).raw(), i16::MAX);
        let small = Acc32::from_raw(i32::MIN);
        assert_eq!(small.to_q15(Rounding::Nearest).raw(), i16::MIN);
    }

    #[test]
    fn mac_int_applies_integer_taps() {
        // (1*x + 3*x + 3*x + 1*x) >> 3 == x for the spline low-pass.
        let x = Q15::from_f64(0.123);
        let acc = Acc32::ZERO
            .mac_int(x, 1)
            .mac_int(x, 3)
            .mac_int(x, 3)
            .mac_int(x, 1);
        let y = acc.to_q15_shifted(3, Rounding::Nearest);
        assert_eq!(y, x);
    }

    #[test]
    fn accumulation_saturates_instead_of_wrapping() {
        let mut acc = Acc32::ZERO;
        let one = Q15::from_raw(i16::MAX);
        for _ in 0..10_000 {
            acc = acc.mac(one, one);
        }
        assert_eq!(acc.raw(), i32::MAX);
    }

    /// The exact sequential specification `dot_q15` promises to match.
    fn fold_mac(a: &[i16], b: &[i16]) -> Acc32 {
        a.iter().zip(b).fold(Acc32::ZERO, |acc, (&x, &y)| {
            acc.mac(Q15::from_raw(x), Q15::from_raw(y))
        })
    }

    #[test]
    fn dot_matches_sequential_fold_on_typical_rows() {
        // Lengths straddling the unroll width, values mixing signs and
        // both i16 extremes, low enough total gain for the fast path.
        for n in [0usize, 1, 7, 8, 9, 31, 64, 65] {
            let a: Vec<i16> = (0..n)
                .map(|i| ((i * 2654435761) % 1031) as i16 - 515)
                .collect();
            let b: Vec<i16> = (0..n)
                .map(|i| {
                    if i == 0 {
                        i16::MIN
                    } else {
                        (((i * 40503) % 65536) as i32 - 32768) as i16
                    }
                })
                .collect();
            assert_eq!(dot_q15(&a, &b), fold_mac(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn dot_matches_sequential_fold_when_saturating() {
        // Σ|a| far above the fast-path bound: the fold saturates both
        // directions mid-chain, so only the sequential path is correct —
        // and dot_q15 must take it.
        let a = vec![i16::MIN; 4000];
        let b: Vec<i16> = (0..4000)
            .map(|i| if i % 3 == 0 { i16::MIN } else { i16::MAX })
            .collect();
        assert_eq!(dot_q15(&a, &b), fold_mac(&a, &b));
        // Alternating signs so prefixes cross both rails.
        let c: Vec<i16> = (0..4000)
            .map(|i| if i % 2 == 0 { i16::MAX } else { i16::MIN })
            .collect();
        assert_eq!(dot_q15(&a, &c), fold_mac(&a, &c));
    }

    #[test]
    fn dot_boundary_gain_still_exact() {
        // Exactly at the fast-path bound (Σ|a| = 65535): the largest
        // prefix magnitude is 65535·32768 < i32::MAX, so no saturation.
        let a = vec![i16::MIN, 32767, 0, 0];
        let b = vec![i16::MIN, i16::MIN, 123, -123];
        assert_eq!(dot_q15(&a, &b), fold_mac(&a, &b));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_rejects_length_mismatch() {
        let _ = dot_q15(&[1, 2], &[3]);
    }
}
