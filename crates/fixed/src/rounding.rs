//! Rounding modes used when narrowing wide intermediates back to 16 bits.

/// How a wide fixed-point intermediate is rounded when shifted back down to
/// a 16-bit sample.
///
/// The microcontroller-class DSP kernels in the paper's applications narrow
/// their 32-bit accumulators on every store to memory; which mode is in use
/// changes the quantization-noise floor that the error-free (dashed) curves
/// of Fig. 4 sit on, so it is explicit in every API that narrows.
///
/// ```
/// use dream_fixed::Rounding;
/// assert_eq!(Rounding::Floor.shift_right(-3, 1), -2);
/// assert_eq!(Rounding::Truncate.shift_right(-3, 1), -1);
/// assert_eq!(Rounding::Nearest.shift_right(3, 1), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Round to nearest, ties away from zero. The default for all kernels.
    #[default]
    Nearest,
    /// Arithmetic shift right (round toward negative infinity). Cheapest in
    /// hardware; adds a small negative bias.
    Floor,
    /// Round toward zero (C-style integer division behaviour).
    Truncate,
}

impl Rounding {
    /// Shifts `value` right by `bits` using this rounding mode.
    ///
    /// `bits` may be 0, in which case `value` is returned unchanged.
    #[inline]
    pub fn shift_right(self, value: i64, bits: u32) -> i64 {
        if bits == 0 {
            return value;
        }
        match self {
            Rounding::Floor => value >> bits,
            Rounding::Truncate => {
                if value >= 0 {
                    value >> bits
                } else {
                    -((-value) >> bits)
                }
            }
            Rounding::Nearest => {
                let half = 1i64 << (bits - 1);
                if value >= 0 {
                    (value + half) >> bits
                } else {
                    -(((-value) + half) >> bits)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_arithmetic_shift() {
        assert_eq!(Rounding::Floor.shift_right(7, 2), 1);
        assert_eq!(Rounding::Floor.shift_right(-7, 2), -2);
    }

    #[test]
    fn truncate_moves_toward_zero() {
        assert_eq!(Rounding::Truncate.shift_right(7, 2), 1);
        assert_eq!(Rounding::Truncate.shift_right(-7, 2), -1);
    }

    #[test]
    fn nearest_ties_away_from_zero() {
        assert_eq!(Rounding::Nearest.shift_right(2, 1), 1);
        assert_eq!(Rounding::Nearest.shift_right(3, 1), 2);
        assert_eq!(Rounding::Nearest.shift_right(-3, 1), -2);
        assert_eq!(Rounding::Nearest.shift_right(-2, 1), -1);
    }

    #[test]
    fn zero_shift_is_identity() {
        for mode in [Rounding::Nearest, Rounding::Floor, Rounding::Truncate] {
            assert_eq!(mode.shift_right(-12345, 0), -12345);
        }
    }
}
