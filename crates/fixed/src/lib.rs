//! Q-format fixed-point arithmetic for 16-bit biosignal processing.
//!
//! Ultra-low-power biomedical nodes such as the one modelled by the paper
//! process ECG samples as 16-bit two's-complement words ([`Q15`]). This crate
//! provides the arithmetic the five applications are built on:
//!
//! * [`Q15`] — a saturating Q0.15 sample type whose *bit layout* is the thing
//!   the DREAM technique protects (sign-extension runs in the MSBs),
//! * [`Acc32`] — the 32-bit multiply-accumulate register used by every
//!   filtering kernel, with explicit, documented rounding on the way back to
//!   16 bits,
//! * [`Rounding`] — the rounding modes supported by the store path.
//!
//! # Example
//!
//! ```
//! use dream_fixed::{Q15, Acc32, Rounding};
//!
//! // A 3-tap moving average in Q15, the way the DSP kernels do it.
//! let taps = [Q15::from_f64(1.0 / 3.0); 3];
//! let x = [Q15::from_f64(0.30), Q15::from_f64(0.60), Q15::from_f64(0.90)];
//! let mut acc = Acc32::ZERO;
//! for (t, s) in taps.iter().zip(&x) {
//!     acc = acc.mac(*t, *s);
//! }
//! let y = acc.to_q15(Rounding::Nearest);
//! assert!((y.to_f64() - 0.60).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod q15;
mod rounding;

pub use accum::{dot_q15, Acc32};
pub use q15::{Q15, Q15_FRACTION_BITS, Q15_MAX, Q15_MIN};
pub use rounding::Rounding;

/// Number of bits in the data words manipulated by every application in the
/// paper (the MIT-BIH samples are stored as 16-bit words, §II).
pub const WORD_BITS: u32 = 16;

/// Converts a slice of raw `i16` words into `Q15` samples without changing
/// the bit patterns.
///
/// This is the view the memory substrate hands back to the DSP layer: the
/// fault-injection machinery works on raw bits, the arithmetic works on
/// `Q15`.
///
/// ```
/// let words = [0i16, 16384, -16384];
/// let q = dream_fixed::from_raw_slice(&words);
/// assert_eq!(q[1].to_f64(), 0.5);
/// ```
pub fn from_raw_slice(words: &[i16]) -> Vec<Q15> {
    words.iter().copied().map(Q15::from_raw).collect()
}

/// Converts `Q15` samples back into raw `i16` words (bit-identical).
///
/// ```
/// use dream_fixed::Q15;
/// let q = [Q15::from_raw(-5), Q15::from_raw(7)];
/// assert_eq!(dream_fixed::to_raw_slice(&q), vec![-5, 7]);
/// ```
pub fn to_raw_slice(samples: &[Q15]) -> Vec<i16> {
    samples.iter().map(|s| s.raw()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip_preserves_bits() {
        let words: Vec<i16> = vec![i16::MIN, -1, 0, 1, i16::MAX, 12345, -12345];
        assert_eq!(to_raw_slice(&from_raw_slice(&words)), words);
    }

    #[test]
    fn word_bits_matches_q15_layout() {
        assert_eq!(WORD_BITS, 16);
        assert_eq!(Q15_FRACTION_BITS, 15);
    }
}
