//! Property-based tests for the fixed-point layer.

use dream_fixed::{Acc32, Rounding, Q15};
use proptest::prelude::*;

proptest! {
    /// Conversion to float and back is the identity on representable values.
    #[test]
    fn float_round_trip(raw in any::<i16>()) {
        let q = Q15::from_raw(raw);
        prop_assert_eq!(Q15::from_f64(q.to_f64()), q);
    }

    /// Saturating addition never leaves the representable range and agrees
    /// with clamped integer addition.
    #[test]
    fn add_is_clamped_integer_add(a in any::<i16>(), b in any::<i16>()) {
        let sum = (Q15::from_raw(a) + Q15::from_raw(b)).raw();
        let wide = i32::from(a) + i32::from(b);
        prop_assert_eq!(i32::from(sum), wide.clamp(i32::from(i16::MIN), i32::from(i16::MAX)));
    }

    /// Multiplication error versus the float reference is bounded by one ULP
    /// (plus the saturation case at -1 * -1).
    #[test]
    fn mul_close_to_float(a in any::<i16>(), b in any::<i16>()) {
        let qa = Q15::from_raw(a);
        let qb = Q15::from_raw(b);
        let got = qa.mul(qb, Rounding::Nearest).to_f64();
        let want = (qa.to_f64() * qb.to_f64()).clamp(-1.0, 32767.0 / 32768.0);
        prop_assert!((got - want).abs() <= 1.5 / 32768.0, "{} vs {}", got, want);
    }

    /// The sign-run is consistent with its definition: the top `run` bits
    /// all equal the sign bit, and bit `15 - run` (when it exists) differs.
    #[test]
    fn sign_run_definition(raw in any::<i16>()) {
        let q = Q15::from_raw(raw);
        let run = q.sign_run();
        prop_assert!((1..=16).contains(&run));
        let bits = raw as u16;
        let sign = (bits >> 15) & 1;
        for i in 0..run {
            prop_assert_eq!((bits >> (15 - i)) & 1, sign, "bit {} of {:#06x}", i, bits);
        }
        if run < 16 {
            prop_assert_eq!((bits >> (15 - run)) & 1, 1 - sign);
        }
    }

    /// MAC chains stay within one quantization step of the float reference
    /// for bounded inputs.
    #[test]
    fn mac_chain_bounded_error(
        taps in prop::collection::vec(-8000i16..8000, 1..32),
        xs in prop::collection::vec(-8000i16..8000, 1..32),
    ) {
        let n = taps.len().min(xs.len());
        let mut acc = Acc32::ZERO;
        let mut reference = 0.0f64;
        for i in 0..n {
            let t = Q15::from_raw(taps[i]);
            let x = Q15::from_raw(xs[i]);
            acc = acc.mac(t, x);
            reference += t.to_f64() * x.to_f64();
        }
        let got = acc.to_q15(Rounding::Nearest).to_f64();
        prop_assert!((got - reference.clamp(-1.0, 32767.0 / 32768.0)).abs() < 2.0 / 32768.0);
    }

    /// All rounding modes agree on exactly-representable shifts.
    #[test]
    fn rounding_modes_agree_on_exact(v in any::<i32>()) {
        let exact = i64::from(v) << 4;
        for mode in [Rounding::Nearest, Rounding::Floor, Rounding::Truncate] {
            prop_assert_eq!(mode.shift_right(exact, 4), i64::from(v));
        }
    }
}
