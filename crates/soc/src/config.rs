//! Platform configuration.

use dream_mem::MemGeometry;

/// Geometry and clocking of the modelled multi-processor platform.
///
/// ```
/// use dream_soc::SocConfig;
/// let c = SocConfig::inyu();
/// assert_eq!(c.max_cores, 16);
/// assert_eq!(c.clock_hz, 200.0e6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SocConfig {
    /// Maximum number of cores the interconnect supports.
    pub max_cores: usize,
    /// Core and memory clock (Hz).
    pub clock_hz: f64,
    /// Shared data-memory geometry (base 16-bit layout).
    pub geometry: MemGeometry,
    /// Core compute cycles charged between consecutive memory accesses
    /// (the "rest of the instruction stream" of a cycle-accurate run).
    pub compute_gap_cycles: u32,
}

impl SocConfig {
    /// The paper's INYU platform: 16 ARM V6-class cores at 200 MHz sharing
    /// a 32 kB / 16-bank memory (§V).
    pub fn inyu() -> Self {
        SocConfig {
            max_cores: 16,
            clock_hz: 200.0e6,
            geometry: MemGeometry::inyu_data_memory(),
            compute_gap_cycles: 1,
        }
    }

    /// Seconds elapsed for a given cycle count at this clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::inyu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inyu_matches_paper_numbers() {
        let c = SocConfig::inyu();
        assert_eq!(c.geometry.capacity_bytes(), 32 * 1024);
        assert_eq!(c.geometry.banks(), 16);
        assert_eq!(c.max_cores, 16);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let c = SocConfig::inyu();
        assert!((c.seconds(200_000_000) - 1.0).abs() < 1e-12);
        assert!((c.seconds(200_000) - 1e-3).abs() < 1e-15);
    }
}
