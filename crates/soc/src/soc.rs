//! The platform composition.

use dream_core::{AccessStats, EmtKind, EnergyModelBundle, ProtectedMemory};
use dream_dsp::BiomedicalApp;
use dream_energy::EnergyBreakdown;
use dream_mem::FaultMap;

use crate::{AccessTrace, Crossbar, CrossbarStats, MemoryPort, SocConfig};

/// Everything one platform run produces.
#[derive(Clone, Debug)]
pub struct SocRun {
    /// Output words of each application, in core order.
    pub outputs: Vec<Vec<i16>>,
    /// Shared-memory access statistics accumulated over the run.
    pub stats: AccessStats,
    /// Total cycles (crossbar replay, including conflict stalls).
    pub cycles: u64,
    /// Interconnect statistics.
    pub crossbar: CrossbarStats,
}

impl SocRun {
    /// Output of the first (or only) core.
    pub fn output(&self) -> &[i16] {
        &self.outputs[0]
    }
}

/// The modelled platform: an EMT-protected shared memory behind a banked
/// crossbar, executing one application per core.
///
/// ```
/// use dream_core::EmtKind;
/// use dream_dsp::AppKind;
/// use dream_ecg::Database;
/// use dream_soc::{Soc, SocConfig};
///
/// let record = Database::record(101, 512);
/// let mut soc = Soc::new(SocConfig::inyu(), EmtKind::EccSecDed, None);
/// let run = soc.run_app(&*AppKind::CompressedSensing.instantiate(512), &record.samples);
/// assert_eq!(run.output().len(), 256);
/// ```
pub struct Soc {
    config: SocConfig,
    mem: ProtectedMemory,
}

impl Soc {
    /// Builds a platform with the given EMT and optional shared fault map
    /// (width ≥ 22 so all EMTs see the same fault locations, §V).
    pub fn new(config: SocConfig, emt: EmtKind, fault_map: Option<&FaultMap>) -> Self {
        let mem = match fault_map {
            Some(map) => ProtectedMemory::with_fault_map(emt, config.geometry, map),
            None => ProtectedMemory::new(emt, config.geometry),
        };
        Soc { config, mem }
    }

    /// The platform configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The protected shared memory (e.g. for fault census).
    pub fn memory(&self) -> &ProtectedMemory {
        &self.mem
    }

    /// Runs a single application on core 0.
    pub fn run_app(&mut self, app: &dyn BiomedicalApp, input: &[i16]) -> SocRun {
        self.run_apps(&[(app, input)])
    }

    /// Runs one application per core (disjoint partitions of the shared
    /// memory), then replays the recorded traces through the crossbar for
    /// cycle-level timing.
    ///
    /// # Panics
    ///
    /// Panics if more apps than cores are given, or the combined footprint
    /// exceeds the shared memory.
    pub fn run_apps(&mut self, apps: &[(&dyn BiomedicalApp, &[i16])]) -> SocRun {
        assert!(!apps.is_empty(), "need at least one application");
        assert!(
            apps.len() <= self.config.max_cores,
            "more applications than cores"
        );
        let total: usize = apps.iter().map(|(a, _)| a.memory_words()).sum();
        assert!(
            total <= self.config.geometry.words(),
            "combined footprint {total} exceeds the shared memory"
        );
        self.mem.reset_stats();
        let mut outputs = Vec::with_capacity(apps.len());
        let mut traces: Vec<AccessTrace> = Vec::with_capacity(apps.len());
        let mut base = 0usize;
        for (app, input) in apps {
            let words = app.memory_words();
            let mut port = MemoryPort::new(
                &mut self.mem,
                self.config.geometry,
                base,
                words,
                self.config.compute_gap_cycles,
            );
            outputs.push(app.run(input, &mut port));
            traces.push(port.into_trace());
            base += words;
        }
        let crossbar = Crossbar::simulate(self.config.geometry.banks(), &traces);
        SocRun {
            outputs,
            stats: self.mem.stats(),
            cycles: crossbar.cycles,
            crossbar,
        }
    }

    /// Prices a run at the given data-memory supply voltage.
    pub fn energy(&self, run: &SocRun, bundle: &EnergyModelBundle, data_v: f64) -> EnergyBreakdown {
        bundle.run_energy(
            self.mem.codec(),
            &run.stats,
            self.mem.words(),
            data_v,
            self.config.seconds(run.cycles),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_dsp::AppKind;
    use dream_ecg::Database;

    #[test]
    fn single_core_run_matches_plain_storage() {
        // With no faults, running through the SoC must produce exactly the
        // same output as a plain in-process buffer.
        let record = Database::record(100, 512);
        for kind in AppKind::all() {
            let app = kind.instantiate(512);
            let mut soc = Soc::new(SocConfig::inyu(), EmtKind::None, None);
            let run = soc.run_app(&*app, &record.samples);
            let mut plain = dream_dsp::VecStorage::new(app.memory_words());
            let expect = app.run(&record.samples, &mut plain);
            assert_eq!(run.output(), &expect[..], "{kind}");
        }
    }

    #[test]
    fn stats_count_the_whole_run() {
        let record = Database::record(100, 512);
        let app = AppKind::Dwt.instantiate(512);
        let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
        let run = soc.run_app(&*app, &record.samples);
        // The DWT writes at least input + all outputs, reads more.
        assert!(run.stats.writes >= 512 + 5 * 512);
        assert!(run.stats.reads > run.stats.writes);
        assert_eq!(run.cycles, run.crossbar.cycles);
    }

    #[test]
    fn two_cores_share_the_memory() {
        let record = Database::record(102, 256);
        let a = AppKind::Dwt.instantiate(256);
        let b = AppKind::CompressedSensing.instantiate(256);
        let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
        let run = soc.run_apps(&[(&*a, &record.samples), (&*b, &record.samples)]);
        assert_eq!(run.outputs.len(), 2);
        assert_eq!(run.outputs[1].len(), 128);
        // Parallel cores on one memory: some bank conflicts are expected.
        assert!(run.crossbar.cycles > 0);
    }

    #[test]
    fn parallel_runs_cost_fewer_cycles_than_serial() {
        let record = Database::record(104, 256);
        let a = AppKind::MorphologicalFilter.instantiate(256);
        let b = AppKind::MorphologicalFilter.instantiate(256);
        let mut soc = Soc::new(SocConfig::inyu(), EmtKind::None, None);
        let serial_a = soc.run_app(&*a, &record.samples).cycles;
        let serial_b = soc.run_app(&*b, &record.samples).cycles;
        let parallel = soc
            .run_apps(&[(&*a, &record.samples), (&*b, &record.samples)])
            .cycles;
        assert!(
            parallel < serial_a + serial_b,
            "parallel {parallel} vs serial {}",
            serial_a + serial_b
        );
    }

    #[test]
    fn energy_accounts_for_leakage_over_cycles() {
        let record = Database::record(100, 512);
        let app = AppKind::Dwt.instantiate(512);
        let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
        let run = soc.run_app(&*app, &record.samples);
        let bundle = EnergyModelBundle::date16();
        let e = soc.energy(&run, &bundle, 0.6);
        assert!(e.leakage_pj > 0.0);
        assert!(e.data_dynamic_pj > 0.0);
        assert!(e.side_dynamic_pj > 0.0); // DREAM's mask memory
    }

    #[test]
    #[should_panic(expected = "exceeds the shared memory")]
    fn oversubscription_rejected() {
        let record = Database::record(100, 4096);
        let apps: Vec<Box<dyn dream_dsp::BiomedicalApp>> =
            (0..4).map(|_| AppKind::Dwt.instantiate(4096)).collect();
        let pairs: Vec<(&dyn dream_dsp::BiomedicalApp, &[i16])> = apps
            .iter()
            .map(|a| {
                (
                    a.as_ref() as &dyn dream_dsp::BiomedicalApp,
                    &record.samples[..],
                )
            })
            .collect();
        let mut soc = Soc::new(SocConfig::inyu(), EmtKind::None, None);
        let _ = soc.run_apps(&pairs);
    }
}
