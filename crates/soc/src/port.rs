//! Memory ports: the bridge between applications and the protected memory.

use dream_core::ProtectedMemory;
use dream_dsp::WordStorage;
use dream_mem::MemGeometry;

/// One recorded memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Core compute cycles since the previous access was issued.
    pub gap: u32,
    /// Bank the access targets.
    pub bank: u16,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// A bank-annotated access trace of one core's run, replayable through the
/// [`Crossbar`](crate::Crossbar) for cycle-level timing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessTrace {
    events: Vec<TraceEvent>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A core's window into the shared protected memory.
///
/// Implements [`WordStorage`], so any [`dream_dsp`] application can run
/// over it unchanged. Every access:
///
/// 1. is offset by the port's base address (cores get disjoint partitions
///    of the shared memory, as the paper's applications get disjoint
///    buffers),
/// 2. goes through the EMT codec and the faulty array of the underlying
///    [`ProtectedMemory`],
/// 3. is appended to the port's [`AccessTrace`] with its bank id and the
///    compute-cycle gap since the previous access.
pub struct MemoryPort<'a> {
    mem: &'a mut ProtectedMemory,
    geometry: MemGeometry,
    base: usize,
    words: usize,
    compute_gap: u32,
    trace: AccessTrace,
}

impl<'a> MemoryPort<'a> {
    /// Opens a port over `mem` covering `words` words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the window overruns the memory.
    pub fn new(
        mem: &'a mut ProtectedMemory,
        geometry: MemGeometry,
        base: usize,
        words: usize,
        compute_gap: u32,
    ) -> Self {
        assert!(base + words <= mem.words(), "port window out of range");
        MemoryPort {
            mem,
            geometry,
            base,
            words,
            compute_gap,
            trace: AccessTrace::new(),
        }
    }

    /// Consumes the port, returning its recorded trace.
    pub fn into_trace(self) -> AccessTrace {
        self.trace
    }

    fn record(&mut self, addr: usize, is_write: bool) {
        self.trace.push(TraceEvent {
            gap: self.compute_gap,
            bank: self.geometry.bank_of(self.base + addr) as u16,
            is_write,
        });
    }
}

impl WordStorage for MemoryPort<'_> {
    fn len(&self) -> usize {
        self.words
    }

    fn read(&mut self, addr: usize) -> i16 {
        assert!(addr < self.words, "port read out of range");
        self.record(addr, false);
        self.mem.read(self.base + addr)
    }

    fn write(&mut self, addr: usize, value: i16) {
        assert!(addr < self.words, "port write out of range");
        self.record(addr, true);
        self.mem.write(self.base + addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_core::EmtKind;

    fn mem() -> ProtectedMemory {
        ProtectedMemory::new(EmtKind::Dream, MemGeometry::new(64, 16, 4))
    }

    #[test]
    fn port_offsets_addresses() {
        let mut m = mem();
        {
            let mut port = MemoryPort::new(&mut m, MemGeometry::new(64, 16, 4), 32, 16, 1);
            port.write(0, 42);
        }
        assert_eq!(m.read(32), 42);
    }

    #[test]
    fn trace_records_banks_and_kinds() {
        let mut m = mem();
        let g = MemGeometry::new(64, 16, 4);
        let mut port = MemoryPort::new(&mut m, g, 0, 64, 2);
        port.write(0, 1); // bank 0
        port.write(1, 2); // bank 1
        let _ = port.read(5); // bank 1
        let trace = port.into_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events()[0].bank, 0);
        assert_eq!(trace.events()[1].bank, 1);
        assert_eq!(trace.events()[2].bank, 1);
        assert!(trace.events()[0].is_write);
        assert!(!trace.events()[2].is_write);
        assert_eq!(trace.events()[0].gap, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_window_rejected() {
        let mut m = mem();
        let _ = MemoryPort::new(&mut m, MemGeometry::new(64, 16, 4), 60, 16, 1);
    }

    #[test]
    #[should_panic(expected = "port read out of range")]
    fn reads_beyond_window_rejected() {
        let mut m = mem();
        let mut port = MemoryPort::new(&mut m, MemGeometry::new(64, 16, 4), 0, 8, 1);
        let _ = port.read(8);
    }
}
