//! Cycle-approximate MPSoC model — the reproduction's substitute for the
//! VirtualSOC full-system simulator the paper extends (§V).
//!
//! The paper's platform is the INYU biomedical node: up to 16 ARM V6
//! cores clocked at 200 MHz sharing a 32 kB, 16-bank data memory through a
//! crossbar. For the studied quantities — which data words live in the
//! faulty memory, how many accesses each run makes, how long a run takes —
//! a transaction-level model is sufficient, so this crate provides:
//!
//! * [`SocConfig`] — platform geometry and clock (INYU preset),
//! * [`MemoryPort`] — a [`dream_dsp::WordStorage`] implementation that
//!   routes every application access through an EMT-protected faulty
//!   memory while recording a bank-accurate access trace,
//! * [`Crossbar`] — a cycle-by-cycle round-robin arbiter that replays one
//!   trace per core and charges stalls for bank conflicts,
//! * [`Soc`] — the composition: run one application per core, get outputs,
//!   access statistics, cycle counts and an energy breakdown.
//!
//! # Example
//!
//! ```
//! use dream_core::EmtKind;
//! use dream_dsp::AppKind;
//! use dream_ecg::Database;
//! use dream_soc::{Soc, SocConfig};
//!
//! let record = Database::record(100, 512);
//! let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
//! let run = soc.run_app(&*AppKind::Dwt.instantiate(512), &record.samples);
//! assert!(run.cycles > 0);
//! assert_eq!(run.output().len(), 5 * 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod crossbar;
mod port;
mod soc;

pub use config::SocConfig;
pub use crossbar::{Crossbar, CrossbarStats};
pub use port::{AccessTrace, MemoryPort, TraceEvent};
pub use soc::{Soc, SocRun};
