//! The bank-level crossbar arbiter.

use crate::{AccessTrace, TraceEvent};

/// Timing statistics of a crossbar replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossbarStats {
    /// Total cycles until every core drained its trace.
    pub cycles: u64,
    /// Cycles lost to bank conflicts (summed over cores).
    pub conflict_stalls: u64,
    /// Accesses served per bank.
    pub bank_accesses: Vec<u64>,
}

impl CrossbarStats {
    /// Fraction of issued accesses that stalled at least one cycle.
    pub fn conflict_rate(&self) -> f64 {
        let total: u64 = self.bank_accesses.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.conflict_stalls as f64 / total as f64
        }
    }
}

/// Cycle-by-cycle round-robin arbiter over `banks` single-ported banks —
/// the logarithmic interconnect of PULP-style TCDMs that VirtualSOC
/// models, reduced to its timing behaviour.
///
/// Each core replays its [`AccessTrace`]: an event becomes *ready* `gap`
/// cycles after the core's previous access completed; each bank serves one
/// request per cycle, granting the lowest core id after a rotating
/// priority pointer, so no core starves.
///
/// ```
/// use dream_soc::{AccessTrace, Crossbar, TraceEvent};
/// // Two cores hammering the same bank: one of them always stalls.
/// let mk = || {
///     let mut t = AccessTrace::new();
///     for _ in 0..4 {
///         t.push(TraceEvent { gap: 0, bank: 0, is_write: false });
///     }
///     t
/// };
/// let stats = Crossbar::simulate(4, &[mk(), mk()]);
/// assert!(stats.conflict_stalls > 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Crossbar;

impl Crossbar {
    /// Replays one trace per core and returns the timing statistics.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or any event targets a bank out of range.
    pub fn simulate(banks: usize, traces: &[AccessTrace]) -> CrossbarStats {
        assert!(banks > 0, "need at least one bank");
        let cores = traces.len();
        let mut stats = CrossbarStats {
            cycles: 0,
            conflict_stalls: 0,
            bank_accesses: vec![0; banks],
        };
        if cores == 0 {
            return stats;
        }
        // Per-core cursor into its trace and the cycle its next event
        // becomes ready.
        let mut cursor = vec![0usize; cores];
        let mut ready_at = vec![0u64; cores];
        for (c, t) in traces.iter().enumerate() {
            if let Some(e) = t.events().first() {
                assert!((e.bank as usize) < banks, "bank out of range");
                ready_at[c] = u64::from(e.gap);
            }
        }
        let mut priority = vec![0usize; banks];
        let mut cycle: u64 = 0;
        let mut remaining: usize = traces.iter().map(AccessTrace::len).sum();
        while remaining > 0 {
            // Gather requests per bank for this cycle.
            let mut granted: Vec<Option<usize>> = vec![None; banks];
            let mut contenders: Vec<Vec<usize>> = vec![Vec::new(); banks];
            for c in 0..cores {
                if cursor[c] < traces[c].len() && ready_at[c] <= cycle {
                    let e = traces[c].events()[cursor[c]];
                    contenders[e.bank as usize].push(c);
                }
            }
            for b in 0..banks {
                if contenders[b].is_empty() {
                    continue;
                }
                // Rotating priority: first contender at or after the
                // pointer wins.
                let winner = *contenders[b]
                    .iter()
                    .find(|&&c| c >= priority[b])
                    .unwrap_or(&contenders[b][0]);
                granted[b] = Some(winner);
                priority[b] = (winner + 1) % cores;
                stats.conflict_stalls += contenders[b].len() as u64 - 1;
                stats.bank_accesses[b] += 1;
            }
            for g in granted.iter().flatten() {
                let c = *g;
                cursor[c] += 1;
                remaining -= 1;
                if cursor[c] < traces[c].len() {
                    let e: TraceEvent = traces[c].events()[cursor[c]];
                    assert!((e.bank as usize) < banks, "bank out of range");
                    // Next event ready after the serviced cycle plus its
                    // compute gap.
                    ready_at[c] = cycle + 1 + u64::from(e.gap);
                }
            }
            cycle += 1;
        }
        stats.cycles = cycle;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(banks: &[u16], gap: u32) -> AccessTrace {
        let mut t = AccessTrace::new();
        for &b in banks {
            t.push(TraceEvent {
                gap,
                bank: b,
                is_write: false,
            });
        }
        t
    }

    #[test]
    fn single_core_never_conflicts() {
        let t = trace(&[0, 1, 2, 3, 0, 1], 1);
        let stats = Crossbar::simulate(4, &[t]);
        assert_eq!(stats.conflict_stalls, 0);
        // Each access: 1 gap cycle + 1 service cycle.
        assert_eq!(stats.cycles, 12);
    }

    #[test]
    fn disjoint_banks_run_in_parallel() {
        let a = trace(&[0; 8], 0);
        let b = trace(&[1; 8], 0);
        let stats = Crossbar::simulate(2, &[a, b]);
        assert_eq!(stats.conflict_stalls, 0);
        assert_eq!(stats.cycles, 8);
    }

    #[test]
    fn same_bank_serializes() {
        let a = trace(&[0; 8], 0);
        let b = trace(&[0; 8], 0);
        let stats = Crossbar::simulate(2, &[a, b]);
        assert_eq!(stats.cycles, 16);
        assert!(stats.conflict_stalls >= 8);
    }

    #[test]
    fn round_robin_is_fair() {
        // Three cores on one bank: each must get ~1/3 of the service slots;
        // total time is exactly the serialized length.
        let traces: Vec<AccessTrace> = (0..3).map(|_| trace(&[0; 30], 0)).collect();
        let stats = Crossbar::simulate(1, &traces);
        assert_eq!(stats.cycles, 90);
        assert_eq!(stats.bank_accesses[0], 90);
    }

    #[test]
    fn empty_traces_cost_nothing() {
        let stats = Crossbar::simulate(4, &[AccessTrace::new(), AccessTrace::new()]);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.conflict_rate(), 0.0);
    }

    #[test]
    fn gaps_delay_completion() {
        let fast = Crossbar::simulate(2, &[trace(&[0, 1, 0, 1], 0)]);
        let slow = Crossbar::simulate(2, &[trace(&[0, 1, 0, 1], 3)]);
        assert!(slow.cycles > fast.cycles);
    }
}
