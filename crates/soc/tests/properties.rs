//! Property-based tests for the MPSoC timing model.

use dream_soc::{AccessTrace, Crossbar, TraceEvent};
use proptest::prelude::*;

fn arbitrary_trace(banks: u16, max_len: usize) -> impl Strategy<Value = AccessTrace> {
    prop::collection::vec((0u32..4, 0..banks, any::<bool>()), 0..max_len).prop_map(|events| {
        let mut t = AccessTrace::new();
        for (gap, bank, is_write) in events {
            t.push(TraceEvent {
                gap,
                bank,
                is_write,
            });
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every issued access is served exactly once, whatever
    /// the contention pattern.
    #[test]
    fn crossbar_serves_every_access(
        traces in prop::collection::vec(arbitrary_trace(4, 40), 1..5),
    ) {
        let stats = Crossbar::simulate(4, &traces);
        let issued: u64 = traces.iter().map(|t| t.len() as u64).sum();
        let served: u64 = stats.bank_accesses.iter().sum();
        prop_assert_eq!(served, issued);
    }

    /// The replay always terminates within the trivial upper bound: total
    /// accesses plus all compute gaps (complete serialization).
    #[test]
    fn crossbar_cycles_bounded(
        traces in prop::collection::vec(arbitrary_trace(4, 40), 1..5),
    ) {
        let stats = Crossbar::simulate(4, &traces);
        let worst: u64 = traces
            .iter()
            .flat_map(|t| t.events().iter())
            .map(|e| 1 + u64::from(e.gap))
            .sum();
        prop_assert!(stats.cycles <= worst, "{} > {}", stats.cycles, worst);
        // And at least the longest single core's serial time.
        let longest: u64 = traces
            .iter()
            .map(|t| t.events().iter().map(|e| 1 + u64::from(e.gap)).sum())
            .max()
            .unwrap_or(0);
        prop_assert!(stats.cycles >= longest);
    }

    /// Banks are single-ported: no bank ever serves more accesses than
    /// elapsed cycles. (Note: "adding a core never shortens the makespan"
    /// is *not* a sound property — rotating-priority arbiters exhibit
    /// classic scheduling anomalies where extra contenders permute grants
    /// onto a shorter critical path.)
    #[test]
    fn banks_serve_at_most_one_per_cycle(
        traces in prop::collection::vec(arbitrary_trace(4, 40), 1..5),
    ) {
        let stats = Crossbar::simulate(4, &traces);
        for (b, &served) in stats.bank_accesses.iter().enumerate() {
            prop_assert!(served <= stats.cycles, "bank {} served {} in {} cycles", b, served, stats.cycles);
        }
    }

    /// Single-core replays never stall: conflicts need two requesters.
    #[test]
    fn single_core_never_conflicts(trace in arbitrary_trace(8, 60)) {
        let stats = Crossbar::simulate(8, &[trace]);
        prop_assert_eq!(stats.conflict_stalls, 0);
    }
}
