//! Experiment harness: a declarative scenario engine with one thin,
//! row-typed driver per table/figure of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`scenario`] | the engine: serializable campaign specs, the preset registry, and execution with streaming sinks |
//! | [`fig2`] | Fig. 2 — output SNR vs position of an injected stuck-at bit, per application, plus the §III compressed-sensing tolerance thresholds |
//! | [`fig4`] | Fig. 4a/b/c — output SNR vs memory supply voltage, per application, for no protection / DREAM / ECC SEC/DED (200 random fault maps per voltage, shared across EMTs) |
//! | [`energy_table`] | §VI-B — energy overhead of each EMT vs the unprotected baseline, and the codec area comparison |
//! | [`tradeoff`] | §VI-C — mixed-EMT voltage policy for a given output-degradation tolerance and its energy savings |
//! | [`ablation`] | extensions: protected-bits census, address-scrambling ablation, BER-slope sensitivity, mask-supply ablation |
//! | [`campaign`] | shared plumbing: seed discipline, the storage adapter onto protected memories, SNR capping, geometry/record-suite selection |
//! | [`exec`] | the deterministic parallel trial executor behind every campaign (`DREAM_THREADS`, `DREAM_BATCH`, `DREAM_BATCH_BAILOUT`) |
//! | [`telemetry`] | process-wide counters of the batched executor's economics (evictions, bail-outs, clean-pass replays) for `perf_baseline` trajectory entries |
//! | [`report`] | streaming row sinks (ASCII table, CSV, JSONL) for the `dream` CLI |
//!
//! The experiment functions are deterministic: every random choice derives
//! from explicit seeds, and the [`exec`] scheduler merges trial results in
//! trial order, so `cargo run -p dream-bench --bin dream -- run fig4`
//! prints the same series on every machine **at every thread count**.
//!
//! # Example
//!
//! ```
//! use dream_sim::fig2::{Fig2Config, run_fig2};
//! use dream_dsp::AppKind;
//!
//! // A miniature Fig. 2: one app, 64-sample windows, 2 records.
//! let cfg = Fig2Config { window: 256, records: 2, apps: vec![AppKind::CompressedSensing], fault_trials: 2 };
//! let rows = run_fig2(&cfg);
//! assert_eq!(rows.len(), 2 * 16); // stuck-at-0 and stuck-at-1, 16 bit positions
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod energy_table;
pub mod exec;
pub mod fig2;
pub mod fig4;
pub mod report;
pub mod scenario;
pub mod telemetry;
pub mod tradeoff;
