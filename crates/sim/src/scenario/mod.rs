//! The declarative scenario engine: **one spec, one engine, one sink**
//! for every campaign.
//!
//! Every artifact of the paper — and every new workload — is the same
//! shape: a sweep over `{app × technique × grid × record × trial}` with
//! fault-model knobs, reduced to per-point statistics. This module makes
//! that shape *data*:
//!
//! * [`spec`] — the serializable [`Scenario`] description (sweep axes,
//!   fault knobs, sink options) and its compilation to flattened
//!   [`FlatTrial`] descriptors;
//! * [`json`] — the dependency-free JSON layer spec files ride on;
//! * [`registry`] — named presets (`fig2`, `fig4`, `energy`, `tradeoff`,
//!   `ablation`, `noise-sweep`, `geometry-sweep`) in full and smoke
//!   scales;
//! * [`engine`] — execution on the deterministic parallel
//!   [`crate::exec::run_trials`] executor, streaming rows to any
//!   [`crate::report::Sink`] as grid points complete;
//! * [`runner`] — the [`CampaignRunner`] builder every driver (CLI,
//!   campaign service, tests) goes through: per-campaign thread pinning,
//!   [`Progress`] events, [`CancelToken`] cancellation, and
//!   resume-by-skipping.
//!
//! The historical figure modules ([`crate::fig2`], [`crate::fig4`],
//! [`crate::energy_table`], [`crate::tradeoff`], [`crate::ablation`]) are
//! thin preset constructors and row-typed post-processing over a shared
//! [`ScenarioOutcome`]; their numeric output is byte-identical to the
//! pre-engine runners at any thread count (pinned by
//! `tests/scenario_golden.rs`).
//!
//! # Example
//!
//! ```
//! use dream_sim::scenario::{registry, CampaignRunner};
//!
//! let mut sc = registry::get("noise-sweep", true).expect("preset exists");
//! sc.trials = 1;
//! sc.records = 1;
//! sc.apps = vec![dream_dsp::AppKind::Dwt];
//! let expected = sc.grid.len() * sc.emts.len();
//! let outcome = CampaignRunner::new(sc).run_discarding().expect("engine runs");
//! assert_eq!(outcome.rows.len(), expected);
//! ```

pub mod engine;
pub mod json;
pub mod registry;
pub mod runner;
pub mod shard;
pub mod spec;

#[allow(deprecated)]
pub use engine::{run, run_with_sink};
pub use engine::{
    AblationRow, EngineError, GeometryEnergyRow, InjectionRow, NoisePoint, OutcomeData,
    ScenarioOutcome,
};
pub use runner::{CampaignRunner, Progress};
pub use shard::{Shard, ShardPlan};
pub use spec::{
    app_from_token, app_token, emt_from_token, emt_token, FaultModelSpec, FaultSpec, FlatTrial,
    Grid, Kind, Scenario, SinkFormat, SinkSpec, SpecError,
};

pub use crate::exec::CancelToken;
