//! The scenario engine: compiles a [`Scenario`] into flattened trial
//! descriptors, executes them on [`crate::exec::run_trials`], aggregates
//! per-point statistics, and streams result rows to a [`Sink`] as each
//! grid point completes.
//!
//! Determinism contract: every number depends only on the spec (seeds
//! derive from [`crate::campaign::fault_seed`] over descriptor indices,
//! reductions happen in trial order after the executor's order-restoring
//! merge), so output is bit-identical at any thread count — the golden
//! differential test pins the five paper presets against the pre-refactor
//! runners.

use std::io;

use dream_core::{EmtKind, TrialBatch};
use dream_dsp::{samples_to_f64, snr_db, AppKind, BiomedicalApp};
use dream_ecg::Record;
use dream_energy::EnergyBreakdown;
use dream_mem::{
    AddressScrambler, BatchFaultPlanes, BerModel, FaultMap, FaultModel, MemGeometry, StuckAt,
    MAX_LANES,
};
use dream_soc::{Soc, SocConfig};

use crate::ablation;
use crate::campaign::{
    banked_geometry, cap_snr, fault_seed, record_suite_with_noise, reference_outputs, CleanTrace,
    EmtMemory, RawTrace,
};
use crate::energy_table::{run_energy_table, EnergyConfig, EnergyRow};
use crate::exec::{self, CancelToken};
use crate::fig4::Fig4Point;
use crate::report::Sink;
use crate::telemetry;
use crate::tradeoff::{explore, TradeoffPolicy};

use super::spec::{Grid, Kind, Scenario, SpecError};

/// Width of the shared fault maps in multi-EMT sweeps: covers the widest
/// codeword (ECC's 22 bits) so one map serves every technique (§V).
const SHARED_MAP_WIDTH: u32 = 22;

/// One row of a bit-position injection sweep (the Fig. 2 family,
/// generalized over protection techniques).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectionRow {
    /// Application under test.
    pub app: AppKind,
    /// Protection scheme.
    pub emt: EmtKind,
    /// Polarity of the injected fault.
    pub stuck: StuckAt,
    /// Stuck bit position.
    pub bit: u32,
    /// Mean output SNR over records × trials (dB).
    pub snr_db: f64,
}

/// One row of a noise sweep: one (noise scale, EMT, app) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoisePoint {
    /// Input-noise amplitude multiplier (1.0 = standard suite).
    pub scale: f64,
    /// Protection scheme.
    pub emt: EmtKind,
    /// Application under test.
    pub app: AppKind,
    /// Mean output SNR over the runs (dB).
    pub mean_snr_db: f64,
    /// Worst run (dB).
    pub min_snr_db: f64,
    /// Mean fraction of reads the decoder corrected.
    pub corrected_rate: f64,
    /// Mean fraction of reads flagged uncorrectable.
    pub uncorrectable_rate: f64,
}

/// One row of a memory-size energy sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeometryEnergyRow {
    /// Data-memory size (16-bit words).
    pub words: usize,
    /// Protection scheme.
    pub emt: EmtKind,
    /// Energy of one application run at the sweep voltage.
    pub energy: EnergyBreakdown,
    /// Fractional overhead versus no protection at the same size.
    pub overhead_vs_none: f64,
}

/// One row of the ablation bundle (study × x × series × value, all
/// pre-formatted — the four studies have heterogeneous shapes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AblationRow {
    /// Which study the row belongs to.
    pub study: &'static str,
    /// The study's x-coordinate (bit count, run index, voltage …).
    pub x: String,
    /// The series within the study.
    pub series: String,
    /// The measured value.
    pub value: String,
}

/// Typed result payload of a scenario run — the figure modules'
/// row-typed post-processing (tolerance extraction, curve lookup, policy
/// pricing) consumes these.
#[derive(Clone, Debug, PartialEq)]
pub enum OutcomeData {
    /// Bit-position sweeps (Fig. 2 family).
    Injection(Vec<InjectionRow>),
    /// Voltage sweeps (Fig. 4 family).
    Fig4(Vec<Fig4Point>),
    /// Noise sweeps.
    Noise(Vec<NoisePoint>),
    /// Voltage energy tables (§VI-B).
    Energy(Vec<EnergyRow>),
    /// Memory-size energy sweeps.
    Geometry(Vec<GeometryEnergyRow>),
    /// §VI-C policies.
    Tradeoff(Vec<TradeoffPolicy>),
    /// The ablation bundle.
    Ablation(Vec<AblationRow>),
}

/// A completed scenario: the spec it ran, the sink-level row view, and the
/// typed payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioOutcome {
    /// The executed spec.
    pub scenario: Scenario,
    /// Column headers of the row view.
    pub headers: Vec<&'static str>,
    /// Sink-level rows (the exact cells every sink format received).
    pub rows: Vec<Vec<String>>,
    /// Typed payload.
    pub data: OutcomeData,
}

/// An engine failure: a bad spec, a sink I/O error, or a cancellation.
#[derive(Debug)]
pub enum EngineError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A sink write failed.
    Io(io::Error),
    /// The campaign's [`CancelToken`] fired before it completed. Any rows
    /// already streamed form a deterministic prefix of the full output —
    /// resume by re-running and skipping them
    /// (`CampaignRunner::skip_rows`).
    Cancelled,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Spec(e) => e.fmt(f),
            EngineError::Io(e) => write!(f, "sink error: {e}"),
            EngineError::Cancelled => f.write_str("campaign cancelled"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> Self {
        EngineError::Spec(e)
    }
}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<exec::Cancelled> for EngineError {
    fn from(_: exec::Cancelled) -> Self {
        EngineError::Cancelled
    }
}

/// Returns [`EngineError::Cancelled`] once `cancel` has fired — the
/// coarse-grained check the non-`run_trials` stretches of a campaign
/// (energy tables, study boundaries) poll between units of work.
fn ensure_live(cancel: Option<&CancelToken>) -> Result<(), EngineError> {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return Err(EngineError::Cancelled);
    }
    Ok(())
}

/// Runs a scenario, discarding the streamed rows (callers that only want
/// the typed outcome).
///
/// # Errors
///
/// Returns [`EngineError::Spec`] when the spec fails validation.
#[deprecated(
    since = "0.6.0",
    note = "drive campaigns through `scenario::CampaignRunner` (`CampaignRunner::new(sc).run_discarding()`)"
)]
pub fn run(sc: &Scenario) -> Result<ScenarioOutcome, EngineError> {
    run_campaign(sc, &mut crate::report::NullSink, None)
}

/// Runs a scenario, streaming result rows to `sink` as grid points
/// complete, and returns the full outcome.
///
/// # Errors
///
/// Returns [`EngineError::Spec`] for invalid specs and
/// [`EngineError::Io`] for sink failures.
#[deprecated(
    since = "0.6.0",
    note = "drive campaigns through `scenario::CampaignRunner` (`CampaignRunner::new(sc).run(sink)`)"
)]
pub fn run_with_sink(sc: &Scenario, sink: &mut dyn Sink) -> Result<ScenarioOutcome, EngineError> {
    run_campaign(sc, sink, None)
}

/// The engine's single entry point: validates, dispatches by
/// (kind, grid) family, streams rows to `sink`, and polls `cancel`
/// cooperatively. Public API surface is `scenario::CampaignRunner`, which
/// adds thread pinning and progress instrumentation on top.
pub(crate) fn run_campaign(
    sc: &Scenario,
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    sc.validate()?;
    ensure_live(cancel)?;
    match (&sc.kind, &sc.grid) {
        (Kind::SnrSweep, Grid::BitPosition(bits)) => run_injection(sc, bits, sink, cancel),
        (Kind::SnrSweep, Grid::Voltage(vs)) => run_voltage(sc, vs, sink, cancel),
        (Kind::SnrSweep, Grid::NoiseScale(scales)) => run_noise(sc, scales, sink, cancel),
        (Kind::EnergySweep, Grid::Voltage(vs)) => run_energy(sc, vs, sink, cancel),
        (Kind::EnergySweep, Grid::MemoryWords(words)) => run_geometry(sc, words, sink, cancel),
        (Kind::Tradeoff, Grid::Voltage(vs)) => run_tradeoff(sc, vs, sink, cancel),
        (Kind::Ablation, Grid::Voltage(vs)) => run_ablation(sc, vs, sink, cancel),
        _ => unreachable!("validate() rejects incompatible kind/grid pairs"),
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 family: single-cell stuck-at injections over a bit-position grid.
// ---------------------------------------------------------------------------

fn injection_headers(sc: &Scenario) -> Vec<&'static str> {
    if sc.emts.len() > 1 {
        vec!["app", "emt", "stuck", "bit", "snr_db"]
    } else {
        // Single-technique sweeps (the paper's Fig. 2 is unprotected)
        // keep the historical four-column layout byte for byte.
        vec!["app", "stuck", "bit", "snr_db"]
    }
}

fn injection_render(sc: &Scenario, row: &InjectionRow) -> Vec<String> {
    let mut cells = vec![row.app.to_string()];
    if sc.emts.len() > 1 {
        cells.push(row.emt.to_string());
    }
    cells.push(format!("{:?}", row.stuck));
    cells.push(row.bit.to_string());
    cells.push(format!("{:.3}", row.snr_db));
    cells
}

/// One flattened trial of an injection sweep: its grid coordinates plus
/// the Monte-Carlo indices that seed the fault location.
#[derive(Clone, Copy)]
struct InjectionTrial {
    stuck: StuckAt,
    bit: u32,
    record: usize,
    trial: usize,
}

/// Bit-sliced execution of one (app, EMT) injection batch: trials sharing
/// a record ride one clean pass in lanes of up to [`MAX_LANES`]; lanes
/// whose decode ever diverges from the clean word are replayed on the
/// scalar path, so the returned SNR vector (in `trials` order) is
/// bit-identical to the scalar branch by construction.
#[allow(clippy::too_many_arguments)]
fn injection_snrs_batched(
    sc: &Scenario,
    trials: &[InjectionTrial],
    app_kind: AppKind,
    emt: EmtKind,
    width: u32,
    records: &[Record],
    references: &[Vec<f64>],
    cancel: Option<&CancelToken>,
) -> Result<Vec<f64>, exec::Cancelled> {
    // Resolved on the driver thread: workers never see the caller's
    // ambient (thread-local) bail-out binding.
    let bailout = exec::batch_bailout();
    // One clean pass per record, shared by every lane group of this
    // (app, EMT): groups replay the trace instead of re-running the app.
    let passes: Vec<CleanPass> = {
        let app = app_kind.instantiate(sc.window);
        let geometry = banked_geometry(app.memory_words());
        let mut mem = EmtMemory::new(emt, geometry);
        let map = FaultMap::empty(geometry.words(), width);
        records
            .iter()
            .enumerate()
            .map(|(ri, record)| {
                mem.reset_with_fault_map(&map);
                let trace = mem.record_trace(&*app, &record.samples);
                let snr = cap_snr(snr_db(&references[ri], &samples_to_f64(trace.output())));
                telemetry::record_trace();
                CleanPass { trace, snr }
            })
            .collect()
    };
    // Lanes must share their clean pass, so group by record and chunk to
    // the lane budget. Scheduling granularity changes; values don't.
    let mut by_record: Vec<Vec<(usize, InjectionTrial)>> = vec![Vec::new(); records.len()];
    for (i, t) in trials.iter().enumerate() {
        by_record[t.record].push((i, *t));
    }
    let groups: Vec<Vec<(usize, InjectionTrial)>> = by_record
        .iter()
        .flat_map(|lanes| lanes.chunks(MAX_LANES).map(<[_]>::to_vec))
        .collect();
    let scratch = || {
        let app = app_kind.instantiate(sc.window);
        let words = app.memory_words();
        let geometry = banked_geometry(words);
        let mem = EmtMemory::new(emt, geometry);
        let map = FaultMap::empty(geometry.words(), width);
        let planes = BatchFaultPlanes::new(geometry.words(), width);
        (app, mem, map, planes, words)
    };
    let per_group = exec::run_trials_cancellable(
        &groups,
        scratch,
        |(app, mem, map, planes, words), group, _| {
            let record = group[0].1.record;
            planes.clear();
            for (lane, (_, t)) in group.iter().enumerate() {
                // Same location derivation as the scalar path below.
                let seed = fault_seed(sc.seed, t.record, t.trial);
                let word = (seed % *words as u64) as usize;
                planes.inject(lane, word, t.bit, t.stuck);
            }
            let pass = &passes[record];
            let mut batch = TrialBatch::with_bailout(group.len(), bailout);
            mem.replay_trace(&pass.trace, planes, &mut batch, u64::MAX);
            let clean_snr = pass.snr;
            let bailed = batch.bailed().count_ones();
            telemetry::record_batch_pass(
                group.len(),
                batch.evicted().count_ones() - bailed,
                bailed,
            );
            group
                .iter()
                .enumerate()
                .map(|(lane, &(i, t))| {
                    let snr = if batch.is_alive(lane) {
                        // Survivor: its trace is the clean trace.
                        clean_snr
                    } else {
                        let seed = fault_seed(sc.seed, t.record, t.trial);
                        let word = (seed % *words as u64) as usize;
                        map.clear();
                        map.inject(word, t.bit, t.stuck);
                        mem.reset_with_fault_map(map);
                        let out = mem.run_app(&**app, &records[record].samples);
                        cap_snr(snr_db(&references[record], &samples_to_f64(&out)))
                    };
                    (i, snr)
                })
                .collect::<Vec<_>>()
        },
        cancel,
    )?;
    let mut snrs = vec![0.0f64; trials.len()];
    for (i, snr) in per_group.into_iter().flatten() {
        snrs[i] = snr;
    }
    Ok(snrs)
}

fn run_injection(
    sc: &Scenario,
    bits: &[u32],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    let records = record_suite_with_noise(sc.window, sc.effective_records(), sc.noise_scale);
    let headers = injection_headers(sc);
    sink.begin(&headers)?;

    let mut typed = Vec::new();
    let mut rendered = Vec::new();
    for &app_kind in &sc.apps {
        let app = app_kind.instantiate(sc.window);
        let references = reference_outputs(&*app, &records);
        for &emt in &sc.emts {
            // One batch per (app, EMT): the historical Fig. 2 nested-loop
            // order, flattened.
            let mut trials = Vec::new();
            for stuck in [StuckAt::Zero, StuckAt::One] {
                for &bit in bits {
                    for record in 0..records.len() {
                        for trial in 0..sc.trials {
                            trials.push(InjectionTrial {
                                stuck,
                                bit,
                                record,
                                trial,
                            });
                        }
                    }
                }
            }
            // Unprotected sweeps keep the historical 16-bit map; mixed-EMT
            // sweeps inject into the shared 22-bit codeword space.
            let width = if emt == EmtKind::None {
                16
            } else {
                SHARED_MAP_WIDTH
            };
            let snrs = if exec::batch_enabled() {
                injection_snrs_batched(
                    sc,
                    &trials,
                    app_kind,
                    emt,
                    width,
                    &records,
                    &references,
                    cancel,
                )?
            } else {
                let scratch = || {
                    let app = app_kind.instantiate(sc.window);
                    let words = app.memory_words();
                    let geometry = banked_geometry(words);
                    let mem = EmtMemory::new(emt, geometry);
                    let map = FaultMap::empty(geometry.words(), width);
                    (app, mem, map, words)
                };
                exec::run_trials_cancellable(
                    &trials,
                    scratch,
                    |(app, mem, map, words), t, _| {
                        // One faulty cell at a deterministic pseudo-random
                        // location in the app's buffer footprint. The location
                        // depends only on (record, trial) — not on the bit or
                        // polarity — so the bit axis is a paired comparison, as
                        // when profiling one physical die.
                        let seed = fault_seed(sc.seed, t.record, t.trial);
                        let word = (seed % *words as u64) as usize;
                        map.clear();
                        map.inject(word, t.bit, t.stuck);
                        mem.reset_with_fault_map(map);
                        let out = mem.run_app(&**app, &records[t.record].samples);
                        cap_snr(snr_db(&references[t.record], &samples_to_f64(&out)))
                    },
                    cancel,
                )?
            };
            // Per-point averages, each over its contiguous chunk in trial
            // order (bit-exact with the historical serial reduction).
            let runs_per_point = records.len() * sc.trials;
            let mut batch = Vec::new();
            let mut next = 0usize;
            for stuck in [StuckAt::Zero, StuckAt::One] {
                for &bit in bits {
                    let point = &snrs[next..next + runs_per_point];
                    next += runs_per_point;
                    let row = InjectionRow {
                        app: app_kind,
                        emt,
                        stuck,
                        bit,
                        snr_db: point.iter().sum::<f64>() / runs_per_point as f64,
                    };
                    batch.push(injection_render(sc, &row));
                    typed.push(row);
                }
            }
            sink.emit(&batch)?;
            rendered.extend(batch);
        }
    }
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers,
        rows: rendered,
        data: OutcomeData::Injection(typed),
    })
}

// ---------------------------------------------------------------------------
// Fig. 4 family: Monte-Carlo fault-map draws shared across EMTs × apps.
// ---------------------------------------------------------------------------

/// Per-trial observation of one (EMT, app) cell.
struct Cell {
    snr_db: f64,
    uncorrectable: f64,
    corrected: f64,
}

/// One memoized clean pass: the aggregated read trace of an (EMT, app,
/// record) triple on fault-free memory, plus its capped reference SNR.
///
/// The clean pass depends on none of a grid point's knobs — not the
/// voltage, not the fault model, not the trial index — so a draw sweep
/// records each triple once and every batched group replays the trace
/// instead of re-running the application.
struct CleanPass {
    trace: CleanTrace,
    snr: f64,
}

/// Clean passes indexed `[emt][app][record]`.
type CleanPasses = Vec<Vec<Vec<CleanPass>>>;

/// Records the clean pass of every (EMT, app, record) triple a draw
/// campaign will touch, in parallel over the trial executor.
fn record_clean_passes(
    sc: &Scenario,
    records: &[Record],
    references: &References,
    geometry: MemGeometry,
    cancel: Option<&CancelToken>,
) -> Result<CleanPasses, exec::Cancelled> {
    // Draw runs cycle the suite as `run % records.len()`, so a campaign
    // with fewer trials than records never touches the tail — don't pay
    // to record it (smoke-scale sweeps would otherwise spend more time
    // recording unused traces than running trials).
    let used = records.len().min(sc.trials.max(1));
    // One codec-agnostic raw pass per (app, record): on fault-free memory
    // the application's dynamics do not depend on the EMT (every codec
    // round-trips written words — see [`RawTrace`]), so the expensive
    // application runs happen apps × records times and each EMT's trace is
    // derived by re-encoding, not re-running.
    let mut pairs = Vec::new();
    for ai in 0..sc.apps.len() {
        for ri in 0..used {
            pairs.push((ai, ri));
        }
    }
    let scratch = || -> Vec<Box<dyn BiomedicalApp>> {
        sc.apps.iter().map(|&k| k.instantiate(sc.window)).collect()
    };
    let raws = exec::run_trials_cancellable(
        &pairs,
        scratch,
        |apps, &(ai, ri), _| RawTrace::record(&*apps[ai], &records[ri].samples, geometry.words()),
        cancel,
    )?;
    // Derivation is cheap (one encode per distinct word); an app that read
    // a never-written address (`None` — codec-dependent virgin decode)
    // falls back to direct per-EMT recording, trading speed for exactness.
    let mut mems: Vec<EmtMemory> = sc
        .emts
        .iter()
        .map(|&emt| EmtMemory::new(emt, geometry))
        .collect();
    let empty = FaultMap::empty(geometry.words(), SHARED_MAP_WIDTH);
    let mut fallback_apps: Option<Vec<Box<dyn BiomedicalApp>>> = None;
    let mut passes: CleanPasses = Vec::with_capacity(sc.emts.len());
    for mem in &mut mems {
        let mut per_app = Vec::with_capacity(sc.apps.len());
        for ai in 0..sc.apps.len() {
            let mut per_record = Vec::with_capacity(used);
            for ri in 0..used {
                let trace = match &raws[ai * used + ri] {
                    Some(raw) => mem.derive_trace(raw),
                    None => {
                        let apps = fallback_apps.get_or_insert_with(scratch);
                        mem.reset_with_fault_map(&empty);
                        mem.record_trace(&*apps[ai], &records[ri].samples)
                    }
                };
                let snr = cap_snr(snr_db(&references[ai][ri], &samples_to_f64(trace.output())));
                telemetry::record_trace();
                per_record.push(CleanPass { trace, snr });
            }
            per_app.push(per_record);
        }
        passes.push(per_app);
    }
    Ok(passes)
}

/// Point-invariant inputs of one Monte-Carlo draw batch: the resolved
/// fault model, the calibration behind it, the record suite with its
/// references, the shared geometry, and the campaign's cancel token.
struct DrawCtx<'a> {
    /// The point-resolved [`FaultModel`]
    /// ([`crate::scenario::FaultModelSpec::resolve`] at the point's
    /// operating voltage).
    fault_model: &'a FaultModel,
    /// Feeds the per-bank-voltage model's ΔV→BER mapping.
    ber_model: &'a BerModel,
    records: &'a [Record],
    references: &'a [Vec<Vec<f64>>],
    geometry: MemGeometry,
    /// Memoized clean passes (batched sweeps only; `None` on the scalar
    /// path, which recomputes nothing to begin with).
    clean: Option<&'a CleanPasses>,
    cancel: Option<&'a CancelToken>,
}

/// Runs the draws of one grid point: `sc.trials` maps drawn by
/// `ctx.fault_model`, each shared across every EMT and app (§V
/// methodology), returning the cells in (run, emt, app) order.
fn draw_point(
    sc: &Scenario,
    point: usize,
    ctx: &DrawCtx,
) -> Result<Vec<Vec<Cell>>, exec::Cancelled> {
    if exec::batch_enabled() {
        return draw_point_batched(sc, point, ctx);
    }
    let DrawCtx {
        fault_model,
        ber_model,
        records,
        references,
        geometry,
        clean: _,
        cancel,
    } = *ctx;
    let runs: Vec<usize> = (0..sc.trials).collect();
    let scratch = || {
        let apps: Vec<Box<dyn BiomedicalApp>> =
            sc.apps.iter().map(|&k| k.instantiate(sc.window)).collect();
        let mems: Vec<EmtMemory> = sc
            .emts
            .iter()
            .map(|&emt| EmtMemory::new(emt, geometry))
            .collect();
        let map = FaultMap::empty(geometry.words(), SHARED_MAP_WIDTH);
        (apps, mems, map)
    };
    exec::run_trials_cancellable(
        &runs,
        scratch,
        |(apps, mems, map), &run, _| {
            // Same seed across EMTs and apps => same fault map, as in the
            // paper; the wide map covers the widest codeword. `Iid` draws are
            // bit-identical to the historical `regenerate` call.
            let seed = fault_seed(sc.seed, point, run);
            fault_model.arm(map, &geometry, ber_model, seed);
            let record = &records[run % records.len()];
            let mut cells = Vec::with_capacity(sc.emts.len() * apps.len());
            for mem in mems.iter_mut() {
                for (ai, app) in apps.iter().enumerate() {
                    mem.reset_with_fault_map(map);
                    if let Some(base) = sc.scrambler_key {
                        // Fresh logical→physical mapping per (point, run): the
                        // §V randomization that lets one die emulate many.
                        mem.set_scrambler(AddressScrambler::new(
                            geometry.words(),
                            fault_seed(base, point, run),
                        ));
                    }
                    let out = mem.run_app(&**app, &record.samples);
                    let snr = cap_snr(snr_db(
                        &references[ai][run % records.len()],
                        &samples_to_f64(&out),
                    ));
                    let stats = mem.stats();
                    let (uncorrectable, corrected) = if stats.reads > 0 {
                        (
                            stats.uncorrectable_reads as f64 / stats.reads as f64,
                            stats.corrected_reads as f64 / stats.reads as f64,
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    cells.push(Cell {
                        snr_db: snr,
                        uncorrectable,
                        corrected,
                    });
                }
            }
            cells
        },
        cancel,
    )
}

/// Bit-sliced variant of [`draw_point`]: runs ride memoized clean passes
/// per (EMT, app) in lanes of up to [`MAX_LANES`]. Each lane's drawn
/// fault map (scrambler included, resolved to logical addresses) is
/// transposed into [`BatchFaultPlanes`]; with clean traces in hand a
/// group freely mixes records — each record's trace replays on exactly
/// the lanes that drew it — so even campaigns with few trials per record
/// fill whole groups. Survivors take their record's clean SNR and their
/// [`TrialBatch::lane_stats`] outcome counts, evicted lanes replay the
/// ordinary scalar trial — so the returned cells, in the same
/// (run, emt, app) order, are bit-identical to [`draw_point`]'s.
fn draw_point_batched(
    sc: &Scenario,
    point: usize,
    ctx: &DrawCtx,
) -> Result<Vec<Vec<Cell>>, exec::Cancelled> {
    let DrawCtx {
        fault_model,
        ber_model,
        records,
        references,
        geometry,
        clean,
        cancel,
    } = *ctx;
    // Resolved on the driver thread: workers never see the caller's
    // ambient (thread-local) bail-out binding.
    let bailout = exec::batch_bailout();
    let groups: Vec<Vec<usize>> = if clean.is_some() {
        // Trace replay feeds each lane exactly its own record's events
        // (masked sub-replays share one plane transposition), so lanes
        // need not share a record: chunk runs in order to the lane
        // budget. Small campaigns fill whole groups instead of
        // fragmenting into per-record slivers.
        (0..sc.trials)
            .collect::<Vec<_>>()
            .chunks(MAX_LANES)
            .map(<[_]>::to_vec)
            .collect()
    } else {
        // Without memoized traces the clean pass *runs the app once* for
        // the whole group, so lanes must share their record.
        (0..records.len())
            .flat_map(|r| {
                let runs: Vec<usize> = (0..sc.trials)
                    .filter(|run| run % records.len() == r)
                    .collect();
                runs.chunks(MAX_LANES)
                    .map(<[_]>::to_vec)
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    // One armed map per lane, reused by every evicted cell of the lane:
    // the scalar path arms once per run and shares the map across its
    // EMT × app cells, and re-arming per evicted cell would pay that
    // O(words · width) clear-and-sample up to EMTs × apps times over.
    let lane_budget = sc.trials.min(MAX_LANES);
    let scratch = || {
        let apps: Vec<Box<dyn BiomedicalApp>> =
            sc.apps.iter().map(|&k| k.instantiate(sc.window)).collect();
        let mems: Vec<EmtMemory> = sc
            .emts
            .iter()
            .map(|&emt| EmtMemory::new(emt, geometry))
            .collect();
        let maps: Vec<FaultMap> = (0..lane_budget)
            .map(|_| FaultMap::empty(geometry.words(), SHARED_MAP_WIDTH))
            .collect();
        // Never armed: resets the memory fault-free for clean app passes.
        let empty = FaultMap::empty(geometry.words(), SHARED_MAP_WIDTH);
        let planes = BatchFaultPlanes::new(geometry.words(), SHARED_MAP_WIDTH);
        (apps, mems, maps, empty, planes)
    };
    let per_group = exec::run_trials_cancellable(
        &groups,
        scratch,
        |(apps, mems, maps, empty, planes), group, _| {
            planes.clear();
            // Lanes replaying the same record form one masked sub-group;
            // single-record groups (the run_app_batch fallback) collapse
            // to one part covering every lane.
            let mut parts: Vec<(usize, u64)> = Vec::new();
            for (lane, &run) in group.iter().enumerate() {
                let ri = run % records.len();
                match parts.iter_mut().find(|(r, _)| *r == ri) {
                    Some((_, lanes)) => *lanes |= 1 << lane,
                    None => parts.push((ri, 1 << lane)),
                }
                // Same draw as the scalar path; the scrambler is folded
                // into the planes so the clean pass needs none.
                let seed = fault_seed(sc.seed, point, run);
                fault_model.arm(&mut maps[lane], &geometry, ber_model, seed);
                let scrambler = sc.scrambler_key.map(|base| {
                    AddressScrambler::new(geometry.words(), fault_seed(base, point, run))
                });
                planes.add_lane(lane, &maps[lane], scrambler.as_ref());
            }
            let mut cells: Vec<Vec<Cell>> = group
                .iter()
                .map(|_| Vec::with_capacity(sc.emts.len() * apps.len()))
                .collect();
            for (ei, mem) in mems.iter_mut().enumerate() {
                for (ai, app) in apps.iter().enumerate() {
                    let mut batch = TrialBatch::with_bailout(group.len(), bailout);
                    // Survivor baseline shared by every lane of a
                    // single-record group; `None` when traces carry it
                    // per record instead.
                    let fallback = match clean {
                        Some(passes) => {
                            // Replay the memoized traces: only dirty
                            // events pay plane work; the application
                            // never runs.
                            for &(ri, lanes) in &parts {
                                let pass = &passes[ei][ai][ri];
                                mem.replay_trace(&pass.trace, planes, &mut batch, lanes);
                            }
                            None
                        }
                        None => {
                            let ri = group[0] % records.len();
                            mem.reset_with_fault_map(empty);
                            let out =
                                mem.run_app_batch(&**app, &records[ri].samples, planes, &mut batch);
                            let snr = cap_snr(snr_db(&references[ai][ri], &samples_to_f64(&out)));
                            Some((snr, mem.stats()))
                        }
                    };
                    let bailed = batch.bailed().count_ones();
                    telemetry::record_batch_pass(
                        group.len(),
                        batch.evicted().count_ones() - bailed,
                        bailed,
                    );
                    for (lane, &run) in group.iter().enumerate() {
                        let ri = run % records.len();
                        let (snr, stats) = if batch.is_alive(lane) {
                            let (clean_snr, clean_stats) = match (clean, fallback) {
                                (Some(passes), _) => {
                                    let pass = &passes[ei][ai][ri];
                                    (pass.snr, pass.trace.stats())
                                }
                                (None, Some(shared)) => shared,
                                (None, None) => unreachable!("fallback set on the app-run path"),
                            };
                            (clean_snr, batch.lane_stats(lane, &clean_stats))
                        } else {
                            // Evicted: the ordinary scalar trial, verbatim
                            // (the lane's map is already armed above).
                            mem.reset_with_fault_map(&maps[lane]);
                            if let Some(base) = sc.scrambler_key {
                                mem.set_scrambler(AddressScrambler::new(
                                    geometry.words(),
                                    fault_seed(base, point, run),
                                ));
                            }
                            let out = mem.run_app(&**app, &records[ri].samples);
                            let snr = cap_snr(snr_db(&references[ai][ri], &samples_to_f64(&out)));
                            (snr, mem.stats())
                        };
                        let (uncorrectable, corrected) = if stats.reads > 0 {
                            (
                                stats.uncorrectable_reads as f64 / stats.reads as f64,
                                stats.corrected_reads as f64 / stats.reads as f64,
                            )
                        } else {
                            (0.0, 0.0)
                        };
                        cells[lane].push(Cell {
                            snr_db: snr,
                            uncorrectable,
                            corrected,
                        });
                    }
                }
            }
            group
                .iter()
                .zip(cells)
                .map(|(&run, c)| (run, c))
                .collect::<Vec<_>>()
        },
        cancel,
    )?;
    let mut out: Vec<Vec<Cell>> = (0..sc.trials).map(|_| Vec::new()).collect();
    for (run, cells) in per_group.into_iter().flatten() {
        out[run] = cells;
    }
    Ok(out)
}

/// Aggregates one grid point's cells into per-(EMT, app) statistics, in
/// the historical (emt, app) order and run-ascending reduction sequence.
fn aggregate_point(sc: &Scenario, results: &[Vec<Cell>]) -> Vec<(EmtKind, AppKind, Cell, f64)> {
    let mut out = Vec::new();
    for (ei, &emt) in sc.emts.iter().enumerate() {
        for (ai, &app) in sc.apps.iter().enumerate() {
            let cell_idx = ei * sc.apps.len() + ai;
            let mut snr_sum = 0.0;
            let mut snr_min = f64::INFINITY;
            let mut uncorrectable = 0.0;
            let mut corrected = 0.0;
            for trial_cells in results.iter().take(sc.trials) {
                let cell = &trial_cells[cell_idx];
                snr_sum += cell.snr_db;
                snr_min = snr_min.min(cell.snr_db);
                uncorrectable += cell.uncorrectable;
                corrected += cell.corrected;
            }
            let n = sc.trials as f64;
            out.push((
                emt,
                app,
                Cell {
                    snr_db: snr_sum / n,
                    uncorrectable: uncorrectable / n,
                    corrected: corrected / n,
                },
                snr_min,
            ));
        }
    }
    out
}

/// Double-precision reference outputs per (app, record).
type References = Vec<Vec<Vec<f64>>>;

/// Shared hoisted state of the draw families: apps, the geometry fitting
/// the largest footprint, and per-(app, record) references.
fn draw_shared(
    sc: &Scenario,
    records: &[Record],
) -> (Vec<Box<dyn BiomedicalApp>>, MemGeometry, References) {
    let apps: Vec<Box<dyn BiomedicalApp>> =
        sc.apps.iter().map(|&k| k.instantiate(sc.window)).collect();
    let max_words = apps
        .iter()
        .map(|a| a.memory_words())
        .max()
        .expect("validated: at least one app");
    let geometry = banked_geometry(max_words);
    let references: Vec<Vec<Vec<f64>>> = apps
        .iter()
        .map(|app| reference_outputs(&**app, records))
        .collect();
    (apps, geometry, references)
}

const FIG4_HEADERS: [&str; 7] = [
    "app",
    "emt",
    "voltage",
    "mean_snr_db",
    "min_snr_db",
    "corrected_rate",
    "uncorrectable_rate",
];

fn fig4_render(p: &Fig4Point) -> Vec<String> {
    vec![
        p.app.to_string(),
        p.emt.to_string(),
        format!("{:.2}", p.voltage),
        format!("{:.3}", p.mean_snr_db),
        format!("{:.3}", p.min_snr_db),
        format!("{:.6}", p.corrected_rate),
        format!("{:.6}", p.uncorrectable_rate),
    ]
}

/// Executes a voltage sweep and returns the Fig. 4 points in the
/// historical (voltage, emt, app) order, streaming per voltage.
fn voltage_points(
    sc: &Scenario,
    voltages: &[f64],
    mut on_point: impl FnMut(&[Fig4Point]) -> io::Result<()>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Fig4Point>, EngineError> {
    let records = record_suite_with_noise(sc.window, sc.effective_records(), sc.noise_scale);
    let (_apps, geometry, references) = draw_shared(sc, &records);
    // One clean pass per (EMT, app, record), shared by every voltage: each
    // additional grid point pays only faulty-delta work.
    let clean = if exec::batch_enabled() {
        Some(record_clean_passes(
            sc,
            &records,
            &references,
            geometry,
            cancel,
        )?)
    } else {
        None
    };
    let model = sc.fault.to_model();
    let mut points = Vec::new();
    for (vi, &voltage) in voltages.iter().enumerate() {
        let fault_model = sc.fault.model.resolve(&model, voltage);
        let results = draw_point(
            sc,
            sc.point_offset + vi,
            &DrawCtx {
                fault_model: &fault_model,
                ber_model: &model,
                records: &records,
                references: &references,
                geometry,
                clean: clean.as_ref(),
                cancel,
            },
        )?;
        let batch: Vec<Fig4Point> = aggregate_point(sc, &results)
            .into_iter()
            .map(|(emt, app, mean, min)| Fig4Point {
                app,
                emt,
                voltage,
                mean_snr_db: mean.snr_db,
                min_snr_db: min,
                uncorrectable_rate: mean.uncorrectable,
                corrected_rate: mean.corrected,
            })
            .collect();
        on_point(&batch)?;
        points.extend(batch);
    }
    Ok(points)
}

fn run_voltage(
    sc: &Scenario,
    voltages: &[f64],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    sink.begin(&FIG4_HEADERS)?;
    let mut rendered = Vec::new();
    let points = voltage_points(
        sc,
        voltages,
        |batch| {
            let rows: Vec<Vec<String>> = batch.iter().map(fig4_render).collect();
            rendered.extend(rows.iter().cloned());
            sink.emit(&rows)
        },
        cancel,
    )?;
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers: FIG4_HEADERS.to_vec(),
        rows: rendered,
        data: OutcomeData::Fig4(points),
    })
}

fn run_noise(
    sc: &Scenario,
    scales: &[f64],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    let headers = vec![
        "noise_scale",
        "emt",
        "app",
        "mean_snr_db",
        "min_snr_db",
        "corrected_rate",
        "uncorrectable_rate",
    ];
    sink.begin(&headers)?;
    let model = sc.fault.to_model();
    // The whole sweep operates at one voltage, so one resolved model
    // serves every point.
    let fault_model = sc.fault.model.resolve(&model, sc.fixed_voltage);
    let mut typed = Vec::new();
    let mut rendered = Vec::new();
    // The apps (and hence the geometry) are scale-independent; the record
    // suite and per-(app, record) references depend on the scale — and
    // only on it. Keeping the most recent suite means consecutive grid
    // points at one scale pay for the reference computation exactly once,
    // without holding every suite of a long sweep in memory at once.
    let apps: Vec<Box<dyn BiomedicalApp>> =
        sc.apps.iter().map(|&k| k.instantiate(sc.window)).collect();
    let geometry = banked_geometry(
        apps.iter()
            .map(|a| a.memory_words())
            .max()
            .expect("validated: at least one app"),
    );
    let mut suite: Option<(u64, Vec<Record>, References, Option<CleanPasses>)> = None;
    for (si, &scale) in scales.iter().enumerate() {
        let key = scale.to_bits();
        if suite.as_ref().is_none_or(|(k, ..)| *k != key) {
            let records = record_suite_with_noise(sc.window, sc.effective_records(), scale);
            let references: References = apps
                .iter()
                .map(|app| reference_outputs(&**app, &records))
                .collect();
            // Clean passes follow the suite: consecutive points at one
            // scale share them, like the references.
            let clean = if exec::batch_enabled() {
                Some(record_clean_passes(
                    sc,
                    &records,
                    &references,
                    geometry,
                    cancel,
                )?)
            } else {
                None
            };
            suite = Some((key, records, references, clean));
        }
        let (_, records, references, clean) = suite.as_ref().expect("just populated");
        let results = draw_point(
            sc,
            sc.point_offset + si,
            &DrawCtx {
                fault_model: &fault_model,
                ber_model: &model,
                records,
                references,
                geometry,
                clean: clean.as_ref(),
                cancel,
            },
        )?;
        let mut batch = Vec::new();
        for (emt, app, mean, min) in aggregate_point(sc, &results) {
            let row = NoisePoint {
                scale,
                emt,
                app,
                mean_snr_db: mean.snr_db,
                min_snr_db: min,
                corrected_rate: mean.corrected,
                uncorrectable_rate: mean.uncorrectable,
            };
            batch.push(vec![
                format!("{:.2}", row.scale),
                row.emt.to_string(),
                row.app.to_string(),
                format!("{:.3}", row.mean_snr_db),
                format!("{:.3}", row.min_snr_db),
                format!("{:.6}", row.corrected_rate),
                format!("{:.6}", row.uncorrectable_rate),
            ]);
            typed.push(row);
        }
        sink.emit(&batch)?;
        rendered.extend(batch);
    }
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers,
        rows: rendered,
        data: OutcomeData::Noise(typed),
    })
}

// ---------------------------------------------------------------------------
// Energy families.
// ---------------------------------------------------------------------------

const ENERGY_HEADERS: [&str; 8] = [
    "emt", "voltage", "total_pj", "data_pj", "mask_pj", "codec_pj", "leak_pj", "overhead",
];

fn energy_render(r: &EnergyRow) -> Vec<String> {
    vec![
        r.emt.to_string(),
        format!("{:.2}", r.voltage),
        format!("{:.3}", r.energy.total_pj()),
        format!("{:.3}", r.energy.data_dynamic_pj),
        format!("{:.3}", r.energy.side_dynamic_pj),
        format!("{:.3}", r.energy.codec_pj),
        format!("{:.3}", r.energy.leakage_pj),
        format!("{:.4}", r.overhead_vs_none),
    ]
}

fn energy_config(sc: &Scenario, voltages: &[f64]) -> EnergyConfig {
    EnergyConfig {
        app: sc.apps[0],
        window: sc.window,
        voltages: voltages.to_vec(),
        emts: sc.emts.clone(),
    }
}

fn run_energy(
    sc: &Scenario,
    voltages: &[f64],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    sink.begin(&ENERGY_HEADERS)?;
    ensure_live(cancel)?;
    let rows = run_energy_table(&energy_config(sc, voltages));
    // Stream one batch per voltage (the table computes in one pass; the
    // batching keeps sink behaviour uniform across families).
    let mut rendered = Vec::new();
    for chunk in rows.chunks(sc.emts.len().max(1)) {
        let batch: Vec<Vec<String>> = chunk.iter().map(energy_render).collect();
        sink.emit(&batch)?;
        rendered.extend(batch);
    }
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers: ENERGY_HEADERS.to_vec(),
        rows: rendered,
        data: OutcomeData::Energy(rows),
    })
}

fn run_geometry(
    sc: &Scenario,
    words: &[usize],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    let headers = vec![
        "words",
        "emt",
        "total_pj",
        "data_pj",
        "mask_pj",
        "codec_pj",
        "leak_pj",
        "leak_share",
        "overhead_vs_none",
    ];
    let app = sc.apps[0].instantiate(sc.window);
    // Footprint needs the instantiated app, so this spec check lives here
    // rather than in `validate` — but still before the sink opens, so a
    // bad spec cannot leave a truncated artifact behind.
    if let Some(&w) = words.iter().find(|&&w| w < app.memory_words()) {
        return Err(EngineError::Spec(SpecError::value(
            "grid.values",
            format!(
                "memory of {w} words cannot hold the {} footprint of {} words at window {}",
                sc.apps[0],
                app.memory_words(),
                sc.window
            ),
        )));
    }
    sink.begin(&headers)?;
    let record = dream_ecg::Database::record(100, sc.window);
    let bundle = dream_core::EnergyModelBundle::date16();
    // One fault-free characterization per (size, EMT) — access counts are
    // geometry-independent but cycle counts are not priced per word, so
    // each size re-runs to stay honest about the platform model.
    struct Price {
        point: usize,
        emt: usize,
    }
    let trials: Vec<Price> = (0..words.len())
        .flat_map(|point| (0..sc.emts.len()).map(move |emt| Price { point, emt }))
        .collect();
    let runs = exec::run_trials_cancellable(
        &trials,
        || (),
        |(), t, _| {
            let geometry = MemGeometry::new(words[t.point], 16, 16);
            let config = SocConfig {
                geometry,
                ..SocConfig::inyu()
            };
            let mut soc = Soc::new(config, sc.emts[t.emt], None);
            soc.run_app(&*app, &record.samples)
        },
        cancel,
    )?;
    let mut typed = Vec::new();
    let mut rendered = Vec::new();
    for (pi, &w) in words.iter().enumerate() {
        let run_of = |ei: usize| &runs[pi * sc.emts.len() + ei];
        let price = |ei: usize| {
            let run = run_of(ei);
            let config = SocConfig {
                geometry: MemGeometry::new(w, 16, 16),
                ..SocConfig::inyu()
            };
            bundle.run_energy(
                &sc.emts[ei].codec(),
                &run.stats,
                w,
                sc.fixed_voltage,
                config.seconds(run.cycles),
            )
        };
        let none_idx = sc
            .emts
            .iter()
            .position(|&e| e == EmtKind::None)
            .expect("validated: energy sweeps include the unprotected baseline");
        let baseline = price(none_idx);
        let mut batch = Vec::new();
        for (ei, &emt) in sc.emts.iter().enumerate() {
            let energy = price(ei);
            let row = GeometryEnergyRow {
                words: w,
                emt,
                energy,
                overhead_vs_none: energy.overhead_vs(&baseline),
            };
            batch.push(vec![
                row.words.to_string(),
                row.emt.to_string(),
                format!("{:.3}", row.energy.total_pj()),
                format!("{:.3}", row.energy.data_dynamic_pj),
                format!("{:.3}", row.energy.side_dynamic_pj),
                format!("{:.3}", row.energy.codec_pj),
                format!("{:.3}", row.energy.leakage_pj),
                format!("{:.4}", row.energy.leakage_pj / row.energy.total_pj()),
                format!("{:.4}", row.overhead_vs_none),
            ]);
            typed.push(row);
        }
        sink.emit(&batch)?;
        rendered.extend(batch);
    }
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers,
        rows: rendered,
        data: OutcomeData::Geometry(typed),
    })
}

// ---------------------------------------------------------------------------
// §VI-C trade-off and the ablation bundle.
// ---------------------------------------------------------------------------

fn run_tradeoff(
    sc: &Scenario,
    voltages: &[f64],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    let headers = vec!["emt", "min_voltage", "savings"];
    sink.begin(&headers)?;
    let points = voltage_points(sc, voltages, |_| Ok(()), cancel)?;
    ensure_live(cancel)?;
    let energy = run_energy_table(&energy_config(sc, voltages));
    let tolerance = sc.tolerance_db.unwrap_or(1.0);
    let policies = explore(sc.apps[0], tolerance, &points, &energy);
    let rendered: Vec<Vec<String>> = policies
        .iter()
        .map(|p| {
            vec![
                p.emt.to_string(),
                p.min_voltage.map_or(String::new(), |v| format!("{v:.2}")),
                p.savings_vs_nominal
                    .map_or(String::new(), |s| format!("{s:.4}")),
            ]
        })
        .collect();
    sink.emit(&rendered)?;
    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers,
        rows: rendered,
        data: OutcomeData::Tradeoff(policies),
    })
}

/// The ablation bundle honors a spec's `window`, `trials` (scrambler
/// runs; the BER study caps at 8), `ber_slopes`, voltage grid and BER
/// calibration (both feed the slope-sensitivity study). The remaining
/// knobs are fixed by the studies themselves — the scrambler study runs
/// unprotected DWT at 0.55 V with historical seeds, and the mask-supply
/// study prices DREAM over the paper grid — so `apps`/`emts` on an
/// ablation spec are descriptive only.
fn run_ablation(
    sc: &Scenario,
    voltages: &[f64],
    sink: &mut dyn Sink,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutcome, EngineError> {
    /// Operating voltage of the scrambler study: deep in the faulty region.
    const SCRAMBLER_VOLTAGE: f64 = 0.55;
    let headers = vec!["study", "x", "series", "value"];
    sink.begin(&headers)?;
    let mut typed: Vec<AblationRow> = Vec::new();
    let mut rendered: Vec<Vec<String>> = Vec::new();
    let mut push_batch = |sink: &mut dyn Sink, batch: Vec<AblationRow>| -> io::Result<()> {
        let rows: Vec<Vec<String>> = batch
            .iter()
            .map(|r| {
                vec![
                    r.study.to_string(),
                    r.x.clone(),
                    r.series.clone(),
                    r.value.clone(),
                ]
            })
            .collect();
        sink.emit(&rows)?;
        rendered.extend(rows);
        typed.extend(batch);
        Ok(())
    };

    // A1 — DREAM's protected-bits census over the real suite.
    let histogram = ablation::protected_bits_histogram(sc.window);
    let mut batch: Vec<AblationRow> = histogram
        .iter()
        .enumerate()
        .map(|(k, &count)| AblationRow {
            study: "protected_bits",
            x: k.to_string(),
            series: "count".into(),
            value: count.to_string(),
        })
        .collect();
    batch.push(AblationRow {
        study: "protected_bits",
        x: String::new(),
        series: "mean_bits".into(),
        value: format!("{:.4}", ablation::mean_protected_bits(&histogram)),
    });
    push_batch(sink, batch)?;

    // A2 — the §V address scrambler: one die, many runs. (The studies
    // call `run_trials` through the ablation module, so cancellation here
    // is polled at study granularity.)
    ensure_live(cancel)?;
    let scrambler = ablation::scrambler_ablation(sc.window, SCRAMBLER_VOLTAGE, sc.trials);
    let mut batch = Vec::new();
    for (series, snrs) in [
        ("fixed", &scrambler.fixed_mapping_snrs),
        ("scrambled", &scrambler.scrambled_snrs),
    ] {
        for (i, s) in snrs.iter().enumerate() {
            batch.push(AblationRow {
                study: "scrambler",
                x: i.to_string(),
                series: series.into(),
                value: format!("{s:.3}"),
            });
        }
    }
    push_batch(sink, batch)?;

    // A3 — BER-slope sensitivity of the DREAM DWT curve, over the spec's
    // own voltage grid and calibration (slope substituted per curve).
    ensure_live(cancel)?;
    let ber_runs = sc.trials.min(8);
    let points = ablation::ber_sensitivity_grid(
        sc.window,
        ber_runs,
        &sc.ber_slopes,
        voltages,
        &sc.fault.to_model(),
    );
    let batch: Vec<AblationRow> = points
        .iter()
        .map(|p| AblationRow {
            study: "ber_slope",
            x: format!("{:.2}", p.voltage),
            series: format!("{:.1}", p.slope),
            value: format!("{:.3}", p.mean_snr_db),
        })
        .collect();
    push_batch(sink, batch)?;

    // A4 — mask-supply pinning vs tracking (prices the paper grid — the
    // design comparison is grid-independent).
    ensure_live(cancel)?;
    let mut batch = Vec::new();
    for (v, pinned, tracking) in ablation::mask_supply_ablation(sc.window) {
        batch.push(AblationRow {
            study: "mask_supply",
            x: format!("{v:.2}"),
            series: "pinned".into(),
            value: format!("{pinned:.6}"),
        });
        batch.push(AblationRow {
            study: "mask_supply",
            x: format!("{v:.2}"),
            series: "tracking".into(),
            value: format!("{tracking:.6}"),
        });
    }
    push_batch(sink, batch)?;

    sink.finish()?;
    Ok(ScenarioOutcome {
        scenario: sc.clone(),
        headers,
        rows: rendered,
        data: OutcomeData::Ablation(typed),
    })
}

impl ScenarioOutcome {
    /// A short human summary of the outcome (row counts plus the
    /// headline statistic of each family).
    pub fn summary(&self) -> String {
        match &self.data {
            OutcomeData::Injection(rows) => {
                let mut s = format!("{} injection points", rows.len());
                let fig2: Vec<crate::fig2::Fig2Row> = rows
                    .iter()
                    .filter(|r| r.emt == EmtKind::None)
                    .map(|r| crate::fig2::Fig2Row {
                        app: r.app,
                        stuck: r.stuck,
                        bit: r.bit,
                        snr_db: r.snr_db,
                    })
                    .collect();
                if fig2.iter().any(|r| r.app == AppKind::CompressedSensing) {
                    let (sa0, sa1) = crate::fig2::cs_tolerance(&fig2, 35.0);
                    s.push_str(&format!(
                        "; CS tolerates sa0 to bit {}, sa1 to bit {} at 35 dB (paper: 10, 12)",
                        sa0.map_or("-".into(), |b| b.to_string()),
                        sa1.map_or("-".into(), |b| b.to_string())
                    ));
                }
                s
            }
            OutcomeData::Fig4(points) => format!(
                "{} voltage curve points across {} EMTs",
                points.len(),
                self.scenario.emts.len()
            ),
            OutcomeData::Noise(points) => format!(
                "{} noise-scale cells at {:.2} V",
                points.len(),
                self.scenario.fixed_voltage
            ),
            OutcomeData::Energy(rows) => {
                let mut s = format!("{} energy rows", rows.len());
                let dream = crate::energy_table::average_overhead(rows, EmtKind::Dream);
                let ecc = crate::energy_table::average_overhead(rows, EmtKind::EccSecDed);
                if dream.is_finite() && ecc.is_finite() {
                    s.push_str(&format!(
                        "; sweep-averaged overhead DREAM {}, ECC {} (paper: 34%, 55%)",
                        crate::report::pct(dream),
                        crate::report::pct(ecc)
                    ));
                }
                s
            }
            OutcomeData::Geometry(rows) => format!(
                "{} (size, EMT) energy cells at {:.2} V",
                rows.len(),
                self.scenario.fixed_voltage
            ),
            OutcomeData::Tradeoff(policies) => {
                let parts: Vec<String> = policies
                    .iter()
                    .map(|p| {
                        format!(
                            "{}: {} ({})",
                            p.emt,
                            p.min_voltage.map_or("-".into(), |v| format!("{v:.2} V")),
                            p.savings_vs_nominal.map_or("-".into(), crate::report::pct)
                        )
                    })
                    .collect();
                format!("minimum voltages — {}", parts.join(", "))
            }
            OutcomeData::Ablation(rows) => format!("{} ablation rows across 4 studies", rows.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CsvSink, JsonlSink, TableSink};
    use crate::scenario::registry;
    use crate::scenario::runner::CampaignRunner;
    use std::sync::Mutex;

    /// Serializes tests that pin the global thread override.
    static THREAD_LOCK: Mutex<()> = Mutex::new(());

    /// Local stand-ins for the deprecated free functions: every engine
    /// test drives campaigns through the public `CampaignRunner` surface.
    fn run(sc: &Scenario) -> Result<ScenarioOutcome, EngineError> {
        CampaignRunner::new(sc.clone()).run_discarding()
    }

    fn run_with_sink(sc: &Scenario, sink: &mut dyn Sink) -> Result<ScenarioOutcome, EngineError> {
        CampaignRunner::new(sc.clone()).run(sink)
    }

    fn tiny_noise() -> Scenario {
        let mut sc = registry::get("noise-sweep", true).unwrap();
        sc.window = 512;
        sc.records = 1;
        sc.trials = 1;
        sc.apps = vec![AppKind::Dwt];
        sc.grid = Grid::NoiseScale(vec![0.0, 4.0]);
        sc
    }

    #[test]
    fn noise_sweep_runs_end_to_end_through_every_sink() {
        let sc = tiny_noise();
        let outcome = run(&sc).expect("engine runs");
        match &outcome.data {
            OutcomeData::Noise(points) => {
                assert_eq!(points.len(), 2 * sc.emts.len());
                assert!(points.iter().all(|p| p.mean_snr_db.is_finite()));
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // Every sink format consumes the same rows without error.
        let mut csv = CsvSink::new(Vec::new());
        let a = run_with_sink(&sc, &mut csv).unwrap();
        let csv_text = String::from_utf8(csv.into_inner()).unwrap();
        assert!(csv_text.starts_with("noise_scale,emt,app,"));
        assert_eq!(csv_text.lines().count(), 1 + a.rows.len());
        let mut jsonl = JsonlSink::new(Vec::new());
        run_with_sink(&sc, &mut jsonl).unwrap();
        let jsonl_text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert_eq!(jsonl_text.lines().count(), a.rows.len());
        assert!(jsonl_text
            .lines()
            .all(|l| l.starts_with("{\"noise_scale\":")));
        let mut table = TableSink::new(Vec::new());
        run_with_sink(&sc, &mut table).unwrap();
    }

    #[test]
    fn noise_axis_actually_changes_outcomes() {
        // The sweep must be a live axis: clean and heavily-noisy inputs
        // yield different fault sensitivities (the direction depends on
        // competing effects — noise raises reference signal power while
        // eroding the MSB runs DREAM protects — so only inequality is
        // asserted).
        let mut sc = tiny_noise();
        sc.trials = 2;
        sc.grid = Grid::NoiseScale(vec![0.0, 4.0]);
        let outcome = run(&sc).unwrap();
        let OutcomeData::Noise(points) = &outcome.data else {
            panic!("noise payload expected");
        };
        let dream_at = |scale: f64| {
            points
                .iter()
                .find(|p| p.emt == EmtKind::Dream && (p.scale - scale).abs() < 1e-9)
                .expect("cell present")
                .mean_snr_db
        };
        assert_ne!(dream_at(0.0), dream_at(4.0));
    }

    #[test]
    fn geometry_sweep_prices_leakage_growth() {
        let mut sc = registry::get("geometry-sweep", true).unwrap();
        sc.grid = Grid::MemoryWords(vec![4096, 32768]);
        let outcome = run(&sc).unwrap();
        let OutcomeData::Geometry(rows) = &outcome.data else {
            panic!("geometry payload expected");
        };
        assert_eq!(rows.len(), 2 * sc.emts.len());
        let total_at = |words: usize, emt: EmtKind| {
            rows.iter()
                .find(|r| r.words == words && r.emt == emt)
                .unwrap()
                .energy
        };
        for &emt in &sc.emts {
            let small = total_at(4096, emt);
            let big = total_at(32768, emt);
            assert!(
                big.leakage_pj > small.leakage_pj,
                "{emt}: leakage must grow with array size"
            );
            assert_eq!(
                small.data_dynamic_pj, big.data_dynamic_pj,
                "{emt}: dynamic energy is access-count-bound, not size-bound"
            );
        }
    }

    #[test]
    fn engine_output_is_thread_count_invariant() {
        let _guard = THREAD_LOCK.lock().unwrap();
        let sc = tiny_noise();
        exec::set_thread_override(Some(1));
        let serial = run(&sc).unwrap();
        exec::set_thread_override(Some(4));
        let parallel = run(&sc).unwrap();
        exec::set_thread_override(None);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.data, parallel.data);
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_work() {
        let mut sc = tiny_noise();
        sc.apps.clear();
        assert!(matches!(run(&sc), Err(EngineError::Spec(_))));
    }

    #[test]
    fn undersized_geometry_is_a_spec_error_not_a_panic() {
        let mut sc = registry::get("geometry-sweep", true).unwrap();
        sc.grid = Grid::MemoryWords(vec![16]); // valid multiple of 16, far below any footprint
        match run(&sc) {
            Err(EngineError::Spec(e)) => {
                assert!(e.to_string().contains("footprint"), "{e}");
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn ablation_honors_the_spec_grid_for_the_slope_study() {
        let mut sc = registry::get("ablation", true).unwrap();
        sc.trials = 1;
        sc.ber_slopes = vec![13.0];
        sc.grid = Grid::Voltage(vec![0.6, 0.9]);
        let outcome = run(&sc).unwrap();
        let OutcomeData::Ablation(rows) = &outcome.data else {
            panic!("ablation payload expected");
        };
        let slope_xs: Vec<&str> = rows
            .iter()
            .filter(|r| r.study == "ber_slope")
            .map(|r| r.x.as_str())
            .collect();
        assert_eq!(slope_xs, vec!["0.60", "0.90"]);
    }

    #[test]
    fn scrambled_voltage_sweep_diversifies_outcomes() {
        let mut sc = registry::get("fig4", true).unwrap();
        sc.window = 512;
        sc.records = 1;
        sc.trials = 2;
        sc.apps = vec![AppKind::Dwt];
        sc.emts = vec![EmtKind::None];
        sc.grid = Grid::Voltage(vec![0.55]);
        let plain = run(&sc).unwrap();
        sc.scrambler_key = Some(0xA5A5);
        let scrambled = run(&sc).unwrap();
        // Different logical mappings almost surely shift the outcome at a
        // faulty voltage; equality would mean the knob is dead.
        assert_ne!(plain.rows, scrambled.rows);
    }
}
