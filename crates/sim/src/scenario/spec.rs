//! The declarative scenario spec: one serializable description of a full
//! campaign — sweep axes, fault-model knobs, and sink options — that the
//! engine compiles into flattened trial descriptors.

use dream_core::EmtKind;
use dream_dsp::AppKind;
use dream_mem::{BerModel, FaultModel, StuckAt};

use super::json::Json;

/// What a scenario measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Output-SNR Monte-Carlo sweep (Fig. 2, Fig. 4, noise sweeps).
    SnrSweep,
    /// Energy pricing of fault-free characterization runs (§VI-B,
    /// geometry sweeps).
    EnergySweep,
    /// SNR sweep + energy table + the §VI-C minimum-voltage policy.
    Tradeoff,
    /// The fixed four-study ablation bundle (protected bits, scrambler,
    /// BER slope, mask supply).
    Ablation,
}

impl Kind {
    /// The spec-file token.
    pub fn token(self) -> &'static str {
        match self {
            Kind::SnrSweep => "snr-sweep",
            Kind::EnergySweep => "energy-sweep",
            Kind::Tradeoff => "tradeoff",
            Kind::Ablation => "ablation",
        }
    }

    /// Parses a spec-file token.
    pub fn from_token(token: &str) -> Option<Kind> {
        Some(match token {
            "snr-sweep" => Kind::SnrSweep,
            "energy-sweep" => Kind::EnergySweep,
            "tradeoff" => Kind::Tradeoff,
            "ablation" => Kind::Ablation,
            _ => return None,
        })
    }
}

/// The swept axis of a scenario grid.
#[derive(Clone, Debug, PartialEq)]
pub enum Grid {
    /// Memory supply voltages (V), the Fig. 4 x-axis.
    Voltage(Vec<f64>),
    /// Stuck-at bit positions (both polarities), the Fig. 2 x-axis.
    BitPosition(Vec<u32>),
    /// Input-noise amplitude multipliers (1.0 = the standard suite),
    /// evaluated at [`Scenario::fixed_voltage`].
    NoiseScale(Vec<f64>),
    /// Data-memory sizes in words (16 banks), priced at
    /// [`Scenario::fixed_voltage`].
    MemoryWords(Vec<usize>),
}

impl Grid {
    /// The spec-file token of this axis.
    pub fn axis_token(&self) -> &'static str {
        match self {
            Grid::Voltage(_) => "voltage",
            Grid::BitPosition(_) => "bit",
            Grid::NoiseScale(_) => "noise",
            Grid::MemoryWords(_) => "words",
        }
    }

    /// Number of grid points (bit-position grids count both polarities).
    pub fn len(&self) -> usize {
        match self {
            Grid::Voltage(v) => v.len(),
            Grid::BitPosition(b) => 2 * b.len(),
            Grid::NoiseScale(n) => n.len(),
            Grid::MemoryWords(w) => w.len(),
        }
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The spatial fault distribution of a scenario, in voltage-parametric
/// spec form: the grid supplies the operating voltage per point, and
/// [`FaultModelSpec::resolve`] maps it (through the scenario's
/// [`BerModel`] calibration) to a concrete [`dream_mem::FaultModel`].
#[derive(Clone, Debug, PartialEq, Default)]
pub enum FaultModelSpec {
    /// Independent per-cell failures at the voltage-derived BER — the
    /// paper's §V model, bit-identical to the historical
    /// `FaultMap::regenerate` path.
    #[default]
    Iid,
    /// Geometric run-length clusters along physical word order.
    Burst {
        /// Mean burst length in cells (`>= 1`).
        mean_run_len: f64,
    },
    /// Weak columns: one bit lane per bank carries `column_weight` of the
    /// fault budget, shared across every word the bank serves.
    ColumnCorrelated {
        /// Fraction of the fault budget on the weak columns (`[0, 1]`).
        column_weight: f64,
    },
    /// Per-bank voltage domains: bank `b` drifts `bank_offsets[b % len]`
    /// volts from the grid voltage, and its BER follows the calibration.
    PerBankVoltage {
        /// Per-bank voltage offsets (V), cycled over the bank index.
        bank_offsets: Vec<f64>,
    },
}

impl FaultModelSpec {
    /// The spec-file / CLI token of this model kind.
    pub fn kind_token(&self) -> &'static str {
        match self {
            FaultModelSpec::Iid => "iid",
            FaultModelSpec::Burst { .. } => "burst",
            FaultModelSpec::ColumnCorrelated { .. } => "column",
            FaultModelSpec::PerBankVoltage { .. } => "bank-voltage",
        }
    }

    /// A symmetric per-bank voltage ramp of the given amplitude (V): the
    /// four-step cycle `[-a, -a/3, +a/3, +a]`, tiling any bank count.
    /// The registry's `bank-voltage` preset and the CLI's
    /// `--fault-model bank-voltage[:amplitude]` both use this shape.
    pub fn bank_ramp(amplitude: f64) -> Vec<f64> {
        vec![-amplitude, -amplitude / 3.0, amplitude / 3.0, amplitude]
    }

    /// Resolves this spec at one grid point: `voltage` is the operating
    /// voltage of the point, `ber_model` the scenario's calibration.
    pub fn resolve(&self, ber_model: &BerModel, voltage: f64) -> FaultModel {
        match self {
            FaultModelSpec::Iid => FaultModel::Iid {
                ber: ber_model.ber(voltage),
            },
            FaultModelSpec::Burst { mean_run_len } => FaultModel::Burst {
                ber: ber_model.ber(voltage),
                mean_run_len: *mean_run_len,
            },
            FaultModelSpec::ColumnCorrelated { column_weight } => FaultModel::ColumnCorrelated {
                ber: ber_model.ber(voltage),
                column_weight: *column_weight,
            },
            FaultModelSpec::PerBankVoltage { bank_offsets } => FaultModel::PerBankVoltage {
                nominal_v: voltage,
                bank_offsets: bank_offsets.clone(),
            },
        }
    }

    /// Parameter validation (delegates to the resolved model's checks at
    /// a representative voltage).
    fn validate(&self) -> Result<(), SpecError> {
        self.resolve(&BerModel::date16(), BerModel::NOMINAL_VOLTAGE)
            .validate()
            .map_err(|e| SpecError::value("fault.model", e))
    }

    fn to_json_value(&self) -> Json {
        let mut fields = vec![("kind".into(), Json::Str(self.kind_token().into()))];
        match self {
            FaultModelSpec::Iid => {}
            FaultModelSpec::Burst { mean_run_len } => {
                fields.push(("mean_run_len".into(), Json::Num(*mean_run_len)));
            }
            FaultModelSpec::ColumnCorrelated { column_weight } => {
                fields.push(("column_weight".into(), Json::Num(*column_weight)));
            }
            FaultModelSpec::PerBankVoltage { bank_offsets } => {
                fields.push((
                    "bank_offsets".into(),
                    Json::Arr(bank_offsets.iter().map(|&o| Json::Num(o)).collect()),
                ));
            }
        }
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Result<FaultModelSpec, SpecError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::field("fault.model.kind", "a string model kind"))?;
        let num = |key: &str| {
            value.get(key).and_then(Json::as_f64).ok_or_else(|| {
                SpecError::field(
                    format!("fault.model.{key}"),
                    format!("a number (required by model {kind:?})"),
                )
            })
        };
        Ok(match kind {
            "iid" => FaultModelSpec::Iid,
            "burst" => FaultModelSpec::Burst {
                mean_run_len: num("mean_run_len")?,
            },
            "column" => FaultModelSpec::ColumnCorrelated {
                column_weight: num("column_weight")?,
            },
            "bank-voltage" => FaultModelSpec::PerBankVoltage {
                bank_offsets: value
                    .get("bank_offsets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        SpecError::field("fault.model.bank_offsets", "an array of numbers")
                    })?
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            SpecError::value("fault.model.bank_offsets", "entries must be numbers")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            other => {
                return Err(SpecError::value(
                    "fault.model.kind",
                    format!("unknown fault model kind {other:?}"),
                ))
            }
        })
    }
}

/// The fault layer of a scenario: the BER-vs-voltage calibration
/// ([`BerModel`] in spec form) plus the spatial [`FaultModelSpec`] that
/// decides *where* the voltage-derived fault budget lands.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Nominal supply voltage (V).
    pub nominal_v: f64,
    /// `log10` BER at nominal.
    pub log10_ber_at_nominal: f64,
    /// Decades of BER per volt of down-scaling.
    pub log10_slope_per_volt: f64,
    /// Spatial fault distribution (defaults to [`FaultModelSpec::Iid`],
    /// the paper's model).
    pub model: FaultModelSpec,
}

impl FaultSpec {
    /// The calibration every paper experiment uses.
    pub fn date16() -> Self {
        Self::from_model(&BerModel::date16())
    }

    /// Captures an existing calibration (with the default i.i.d. model).
    pub fn from_model(model: &BerModel) -> Self {
        FaultSpec {
            nominal_v: model.nominal_v(),
            log10_ber_at_nominal: model.log10_ber_at_nominal(),
            log10_slope_per_volt: model.log10_slope_per_volt(),
            model: FaultModelSpec::Iid,
        }
    }

    /// Instantiates the calibration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid calibration (see [`BerModel::new`]).
    pub fn to_model(&self) -> BerModel {
        BerModel::new(
            self.nominal_v,
            self.log10_ber_at_nominal,
            self.log10_slope_per_volt,
        )
    }
}

/// Output format of a sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SinkFormat {
    /// Aligned ASCII table.
    #[default]
    Table,
    /// RFC-4180 CSV.
    Csv,
    /// JSON Lines.
    Jsonl,
}

impl SinkFormat {
    /// The spec-file / CLI token.
    pub fn token(self) -> &'static str {
        match self {
            SinkFormat::Table => "table",
            SinkFormat::Csv => "csv",
            SinkFormat::Jsonl => "jsonl",
        }
    }

    /// Parses a spec-file / CLI token.
    pub fn from_token(token: &str) -> Option<SinkFormat> {
        Some(match token {
            "table" => SinkFormat::Table,
            "csv" => SinkFormat::Csv,
            "jsonl" => SinkFormat::Jsonl,
            _ => return None,
        })
    }

    /// File extension for `--out` artifacts.
    pub fn extension(self) -> &'static str {
        match self {
            SinkFormat::Table => "txt",
            SinkFormat::Csv => "csv",
            SinkFormat::Jsonl => "jsonl",
        }
    }
}

/// Default sink options baked into a spec (the CLI can override all).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SinkSpec {
    /// Row format.
    pub format: SinkFormat,
    /// Output directory (`None` = stdout).
    pub out: Option<String>,
    /// Append to the output artifact instead of truncating it —
    /// resumable long campaigns. Requires the header-free
    /// [`SinkFormat::Jsonl`] format and an `out` directory.
    pub append: bool,
}

impl SinkSpec {
    /// Parses the consolidated sink grammar shared by the CLI's `--sink`
    /// flag and the campaign service's sink negotiation:
    ///
    /// ```text
    /// table | csv:DIR | jsonl:DIR | jsonl:DIR,append
    /// ```
    ///
    /// i.e. `FORMAT[:DIR][,append]`, where `,append` demands the
    /// header-free `jsonl` format and a directory.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] at path `"sink"` for an unknown format
    /// token, an empty directory, or an inconsistent `,append`.
    pub fn parse(token: &str) -> Result<SinkSpec, SpecError> {
        let (head, append) = match token.strip_suffix(",append") {
            Some(head) => (head, true),
            None => (token, false),
        };
        let (format_token, out) = match head.split_once(':') {
            Some((_, "")) => {
                return Err(SpecError::value(
                    "sink",
                    format!("empty output directory in {token:?}"),
                ))
            }
            Some((fmt, dir)) => (fmt, Some(dir.to_string())),
            None => (head, None),
        };
        let format = SinkFormat::from_token(format_token).ok_or_else(|| {
            SpecError::value(
                "sink",
                format!("unknown sink format {format_token:?} (table|csv|jsonl)"),
            )
        })?;
        if append && (format != SinkFormat::Jsonl || out.is_none()) {
            return Err(SpecError::value(
                "sink",
                format!("\",append\" requires \"jsonl:DIR\", got {token:?}"),
            ));
        }
        Ok(SinkSpec {
            format,
            out,
            append,
        })
    }

    /// The inverse of [`SinkSpec::parse`] — round-trips exactly.
    pub fn token(&self) -> String {
        let mut s = self.format.token().to_string();
        if let Some(out) = &self.out {
            s.push(':');
            s.push_str(out);
        }
        if self.append {
            s.push_str(",append");
        }
        s
    }
}

/// A declarative campaign: every sweep of the paper — and every new
/// workload — is one of these.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Registry name / artifact stem (`fig4`, `noise-sweep`, …).
    pub name: String,
    /// One-line description for `dream list`.
    pub title: String,
    /// What the campaign measures.
    pub kind: Kind,
    /// Input window length in samples.
    pub window: usize,
    /// Records of the evaluation suite to average over (capped at the
    /// suite size).
    pub records: usize,
    /// Monte-Carlo runs per grid point (fault-map draws, or fault
    /// locations per record for bit-position grids).
    pub trials: usize,
    /// Applications under test.
    pub apps: Vec<AppKind>,
    /// Protection techniques under test.
    pub emts: Vec<EmtKind>,
    /// The swept axis.
    pub grid: Grid,
    /// BER-vs-voltage calibration.
    pub fault: FaultSpec,
    /// Operating voltage for grids that don't sweep voltage (noise,
    /// memory-words).
    pub fixed_voltage: f64,
    /// Input-noise multiplier applied to the record suite (1.0 = the
    /// standard date16 noise; [`Grid::NoiseScale`] sweeps override this
    /// per point).
    pub noise_scale: f64,
    /// When set, re-scrambles logical→physical address mapping per run
    /// with keys derived from this base (the §V "small logic to randomize
    /// the mapping").
    pub scrambler_key: Option<u64>,
    /// Output-degradation tolerance (dB) for the §VI-C policy extraction
    /// ([`Kind::Tradeoff`] only).
    pub tolerance_db: Option<f64>,
    /// BER-slope grid of the ablation bundle's sensitivity study
    /// ([`Kind::Ablation`] only).
    pub ber_slopes: Vec<f64>,
    /// Base seed all per-trial fault seeds derive from.
    pub seed: u64,
    /// Default sink options.
    pub sink: SinkSpec,
    /// Global index of this spec's first grid point within the parent
    /// campaign it was sharded from (0 for unsharded specs). Grid-range
    /// shards of draw families carry their parent-relative offset here so
    /// per-point seeds — `fault_seed(seed, point, run)` — match what the
    /// serial run would have drawn at the same absolute point.
    pub point_offset: usize,
}

/// A spec-level failure: the document (or CLI flag) describing a campaign
/// is wrong, as opposed to the campaign itself failing.
///
/// Every variant is user error — the campaign service maps any
/// `SpecError` to an HTTP 400, never a 500 — and carries enough context
/// (the dotted field path where one exists) to point at the offending
/// part of the document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The document is not syntactically valid JSON.
    Parse {
        /// The underlying parser message (position included).
        message: String,
    },
    /// A required field is missing or has the wrong JSON type.
    Field {
        /// Dotted path of the field (`"fault.model.kind"`).
        path: String,
        /// What the field must hold.
        expected: String,
    },
    /// A field is present and well-typed but holds a rejected value
    /// (unknown token, out-of-range number).
    Value {
        /// Dotted path of the field.
        path: String,
        /// Why the value is rejected.
        message: String,
    },
    /// A registry lookup — CLI target, service preset, or `extends`
    /// clause — named no preset.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
    },
    /// A cross-field consistency rule failed (see [`Scenario::validate`]).
    Constraint {
        /// The violated rule.
        message: String,
    },
}

impl SpecError {
    /// A missing/mistyped-field error at `path`.
    pub fn field(path: impl Into<String>, expected: impl Into<String>) -> SpecError {
        SpecError::Field {
            path: path.into(),
            expected: expected.into(),
        }
    }

    /// A rejected-value error at `path`.
    pub fn value(path: impl Into<String>, message: impl Into<String>) -> SpecError {
        SpecError::Value {
            path: path.into(),
            message: message.into(),
        }
    }

    /// A cross-field constraint violation.
    pub fn constraint(message: impl Into<String>) -> SpecError {
        SpecError::Constraint {
            message: message.into(),
        }
    }

    /// The dotted field path this error points at, when it has one.
    pub fn path(&self) -> Option<&str> {
        match self {
            SpecError::Field { path, .. } | SpecError::Value { path, .. } => Some(path),
            _ => None,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { message } => write!(f, "invalid scenario: {message}"),
            SpecError::Field { path, expected } => {
                write!(f, "invalid scenario: field \"{path}\" needs {expected}")
            }
            SpecError::Value { path, message } => {
                write!(f, "invalid scenario: field \"{path}\": {message}")
            }
            SpecError::UnknownScenario { name } => {
                write!(f, "unknown scenario {name:?} (see `dream list`)")
            }
            SpecError::Constraint { message } => write!(f, "invalid scenario: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One flattened trial descriptor — the unit of work the engine hands to
/// [`crate::exec::run_trials`]. Compiling a spec to this list is pure, so
/// round-tripping a scenario through JSON must reproduce it exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatTrial {
    /// One single-cell stuck-at injection run (bit-position grids).
    Injection {
        /// Index into [`Scenario::apps`].
        app: usize,
        /// Index into [`Scenario::emts`].
        emt: usize,
        /// Fault polarity.
        stuck: StuckAt,
        /// Stuck bit position.
        bit: u32,
        /// Index into the record suite.
        record: usize,
        /// Fault-location trial within the record.
        trial: usize,
    },
    /// One Monte-Carlo fault-map draw, shared across every EMT and app
    /// (voltage and noise grids; also the dominant ablation campaign).
    Draw {
        /// Grid-point index.
        point: usize,
        /// Run within the point.
        run: usize,
    },
    /// One fault-free characterization run to be priced by the energy
    /// model (energy and memory-words grids).
    Price {
        /// Grid-point index (0 for voltage grids, which share one
        /// characterization per EMT).
        point: usize,
        /// Index into [`Scenario::emts`].
        emt: usize,
    },
}

impl Scenario {
    /// Checks the spec for internal consistency; every entry point of the
    /// engine calls this first.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first problem found.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |m: String| Err(SpecError::constraint(m));
        if self.name.is_empty() {
            return err("name must not be empty".into());
        }
        if self.window < 256 {
            return err(format!(
                "window {} is below the app minimum of 256",
                self.window
            ));
        }
        if self.records == 0 || self.trials == 0 {
            return err("records and trials must be at least 1".into());
        }
        if self.apps.is_empty() {
            return err("at least one app is required".into());
        }
        if self.emts.is_empty() {
            return err("at least one EMT is required".into());
        }
        if self.grid.is_empty() {
            return err("the grid must have at least one point".into());
        }
        if !(self.noise_scale.is_finite() && self.noise_scale >= 0.0) {
            return err(format!(
                "noise_scale {} must be non-negative",
                self.noise_scale
            ));
        }
        self.fault.model.validate()?;
        if self.fault.model != FaultModelSpec::Iid {
            // Only the Monte-Carlo draw families actually sample a fault
            // distribution; rejecting the rest keeps a non-default model
            // from silently doing nothing.
            let draws = matches!(
                (&self.kind, &self.grid),
                (Kind::SnrSweep | Kind::Tradeoff, Grid::Voltage(_))
                    | (Kind::SnrSweep, Grid::NoiseScale(_))
            );
            if !draws {
                return err(format!(
                    "fault model {:?} only applies to Monte-Carlo draw campaigns \
                     (snr-sweep/tradeoff over voltage, snr-sweep over noise); {} over {} \
                     does not draw fault maps",
                    self.fault.model.kind_token(),
                    self.kind.token(),
                    self.grid.axis_token()
                ));
            }
        }
        if self.sink.append {
            if self.sink.format != SinkFormat::Jsonl {
                return err(format!(
                    "append sinks require the header-free jsonl format, got {}",
                    self.sink.format.token()
                ));
            }
            if self.sink.out.is_none() {
                return err("append sinks require an output directory (\"out\")".into());
            }
        }
        match &self.grid {
            Grid::Voltage(vs) => {
                if vs.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                    return err("voltages must be positive and finite".into());
                }
            }
            Grid::BitPosition(bits) => {
                // Unprotected sweeps inject into the 16-bit data word;
                // protected ones into the shared 22-bit codeword space.
                // The engine sizes its fault maps accordingly, so the
                // admissible bit range depends on the technique set.
                let width = if self.emts.contains(&EmtKind::None) {
                    16
                } else {
                    22
                };
                if let Some(&bad) = bits.iter().find(|&&b| b >= width) {
                    return err(format!(
                        "bit position {bad} is outside the {width}-bit injection space of this technique set"
                    ));
                }
            }
            Grid::NoiseScale(scales) => {
                if scales.iter().any(|s| !(s.is_finite() && *s >= 0.0)) {
                    return err("noise scales must be non-negative and finite".into());
                }
            }
            Grid::MemoryWords(words) => {
                if words.iter().any(|&w| w == 0 || w % 16 != 0) {
                    return err("memory sizes must be positive multiples of 16 words".into());
                }
            }
        }
        let needs_fixed_voltage = matches!(self.grid, Grid::NoiseScale(_) | Grid::MemoryWords(_));
        if needs_fixed_voltage && !(self.fixed_voltage.is_finite() && self.fixed_voltage > 0.0) {
            return err(format!(
                "fixed_voltage {} must be positive for {} grids",
                self.fixed_voltage,
                self.grid.axis_token()
            ));
        }
        match self.kind {
            Kind::SnrSweep => {
                if matches!(self.grid, Grid::MemoryWords(_)) {
                    return err("snr-sweep does not support the words axis (no fault model ties faults to array size)".into());
                }
            }
            Kind::EnergySweep => {
                if matches!(self.grid, Grid::BitPosition(_) | Grid::NoiseScale(_)) {
                    return err(format!(
                        "energy-sweep requires a voltage or words grid, got {}",
                        self.grid.axis_token()
                    ));
                }
                if !self.emts.contains(&EmtKind::None) {
                    return err("energy sweeps need the unprotected baseline (emt \"none\") to price overheads".into());
                }
                if self.apps.len() != 1 {
                    return err(
                        "energy sweeps price one application at a time (its access pattern sets the table)".into(),
                    );
                }
            }
            Kind::Tradeoff => {
                if !matches!(self.grid, Grid::Voltage(_)) {
                    return err("tradeoff requires a voltage grid".into());
                }
                if self.apps.len() != 1 {
                    return err("tradeoff explores one application at a time".into());
                }
                if !self.emts.contains(&EmtKind::None) {
                    return err("tradeoff needs the unprotected baseline (emt \"none\")".into());
                }
                if let Grid::Voltage(vs) = &self.grid {
                    if !vs.iter().any(|v| (v - self.fault.nominal_v).abs() < 1e-9) {
                        return err(format!(
                            "tradeoff grid must include the nominal voltage {} V (the savings baseline)",
                            self.fault.nominal_v
                        ));
                    }
                }
            }
            Kind::Ablation => {
                if !matches!(self.grid, Grid::Voltage(_)) {
                    return err(
                        "ablation requires a voltage grid (the BER-slope study sweeps it)".into(),
                    );
                }
                if self.ber_slopes.is_empty() {
                    return err("ablation needs at least one BER slope".into());
                }
            }
        }
        Ok(())
    }

    /// The record-suite size this scenario actually averages over.
    pub fn effective_records(&self) -> usize {
        self.records.min(dream_ecg::Database::SUITE_SIZE)
    }

    /// Compiles the spec to its flattened trial descriptors, in execution
    /// order. This is the engine's exact work list: `flatten().len()`
    /// trials run through [`crate::exec::run_trials`].
    pub fn flatten(&self) -> Vec<FlatTrial> {
        let records = self.effective_records();
        let mut trials = Vec::new();
        match (&self.kind, &self.grid) {
            (Kind::SnrSweep, Grid::BitPosition(bits)) => {
                for app in 0..self.apps.len() {
                    for emt in 0..self.emts.len() {
                        for stuck in [StuckAt::Zero, StuckAt::One] {
                            for &bit in bits {
                                for record in 0..records {
                                    for trial in 0..self.trials {
                                        trials.push(FlatTrial::Injection {
                                            app,
                                            emt,
                                            stuck,
                                            bit,
                                            record,
                                            trial,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (Kind::SnrSweep | Kind::Tradeoff, Grid::Voltage(vs)) => {
                for point in 0..vs.len() {
                    for run in 0..self.trials {
                        trials.push(FlatTrial::Draw { point, run });
                    }
                }
                if self.kind == Kind::Tradeoff {
                    // The policy also needs the energy table's fault-free
                    // characterizations.
                    for emt in 0..self.emts.len() {
                        trials.push(FlatTrial::Price { point: 0, emt });
                    }
                }
            }
            (Kind::SnrSweep, Grid::NoiseScale(scales)) => {
                for point in 0..scales.len() {
                    for run in 0..self.trials {
                        trials.push(FlatTrial::Draw { point, run });
                    }
                }
            }
            (Kind::EnergySweep, Grid::Voltage(_)) => {
                // Access/cycle counts are voltage-independent: one
                // characterization per EMT prices the whole grid.
                for emt in 0..self.emts.len() {
                    trials.push(FlatTrial::Price { point: 0, emt });
                }
            }
            (Kind::EnergySweep, Grid::MemoryWords(words)) => {
                for point in 0..words.len() {
                    for emt in 0..self.emts.len() {
                        trials.push(FlatTrial::Price { point, emt });
                    }
                }
            }
            (Kind::Ablation, Grid::Voltage(vs)) => {
                // The ablation bundle's dominant campaigns: the scrambler
                // study (fixed + re-scrambled runs) then the BER-slope
                // sensitivity grid.
                for run in 0..2 * self.trials {
                    trials.push(FlatTrial::Draw { point: 0, run });
                }
                let ber_runs = self.trials.min(8);
                for (si, _) in self.ber_slopes.iter().enumerate() {
                    for (vi, _) in vs.iter().enumerate() {
                        for run in 0..ber_runs {
                            trials.push(FlatTrial::Draw {
                                point: 1 + si * vs.len() + vi,
                                run,
                            });
                        }
                    }
                }
            }
            // Every other combination is rejected by `validate`.
            _ => {}
        }
        trials
    }

    /// Serializes to the canonical pretty-printed spec document.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    fn to_json_value(&self) -> Json {
        let grid_values = match &self.grid {
            Grid::Voltage(v) => v.iter().map(|&x| Json::Num(x)).collect(),
            Grid::BitPosition(b) => b.iter().map(|&x| Json::Num(f64::from(x))).collect(),
            Grid::NoiseScale(n) => n.iter().map(|&x| Json::Num(x)).collect(),
            Grid::MemoryWords(w) => w.iter().map(|&x| Json::Num(x as f64)).collect(),
        };
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("kind".into(), Json::Str(self.kind.token().into())),
            ("window".into(), Json::Num(self.window as f64)),
            ("records".into(), Json::Num(self.records as f64)),
            ("trials".into(), Json::Num(self.trials as f64)),
            (
                "apps".into(),
                Json::Arr(
                    self.apps
                        .iter()
                        .map(|&a| Json::Str(app_token(a).into()))
                        .collect(),
                ),
            ),
            (
                "emts".into(),
                Json::Arr(
                    self.emts
                        .iter()
                        .map(|&e| Json::Str(emt_token(e).into()))
                        .collect(),
                ),
            ),
            (
                "grid".into(),
                Json::Obj(vec![
                    ("axis".into(), Json::Str(self.grid.axis_token().into())),
                    ("values".into(), Json::Arr(grid_values)),
                ]),
            ),
            (
                "fault".into(),
                Json::Obj(vec![
                    ("nominal_v".into(), Json::Num(self.fault.nominal_v)),
                    (
                        "log10_ber_at_nominal".into(),
                        Json::Num(self.fault.log10_ber_at_nominal),
                    ),
                    (
                        "log10_slope_per_volt".into(),
                        Json::Num(self.fault.log10_slope_per_volt),
                    ),
                    ("model".into(), self.fault.model.to_json_value()),
                ]),
            ),
            ("fixed_voltage".into(), Json::Num(self.fixed_voltage)),
            ("noise_scale".into(), Json::Num(self.noise_scale)),
            (
                "scrambler_key".into(),
                self.scrambler_key.map_or(Json::Null, u64_json),
            ),
            (
                "tolerance_db".into(),
                self.tolerance_db.map_or(Json::Null, Json::Num),
            ),
            (
                "ber_slopes".into(),
                Json::Arr(self.ber_slopes.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("seed".into(), u64_json(self.seed)),
            (
                "sink".into(),
                Json::Obj(vec![
                    ("format".into(), Json::Str(self.sink.format.token().into())),
                    (
                        "out".into(),
                        self.sink
                            .out
                            .as_ref()
                            .map_or(Json::Null, |o| Json::Str(o.clone())),
                    ),
                    ("append".into(), Json::Bool(self.sink.append)),
                ]),
            ),
        ];
        // Emitted only when nonzero so unsharded specs — every document
        // written before sharding existed — keep byte-identical JSON and
        // therefore byte-identical store hashes.
        if self.point_offset != 0 {
            fields.push(("point_offset".into(), Json::Num(self.point_offset as f64)));
        }
        Json::Obj(fields)
    }

    /// Parses and validates a spec document.
    ///
    /// A document may open with `"extends": "<preset>"` to inherit every
    /// field from the registry's full-scale preset of that name and
    /// override only what it restates — fault-model variants of `fig4`
    /// need not repeat the whole spec. Without `extends`, the structural
    /// fields (`name`, `kind`, `window`, `records`, `trials`, `apps`,
    /// `emts`, `grid`, `seed`) are required, as before.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first malformed or missing
    /// field (JSON syntax errors included).
    pub fn from_json(text: &str) -> Result<Scenario, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError::Parse {
            message: e.to_string(),
        })?;

        let base: Option<Scenario> = match doc.get("extends") {
            None => None,
            Some(v) => {
                let preset = v
                    .as_str()
                    .ok_or_else(|| SpecError::field("extends", "the name of a registry preset"))?;
                Some(super::registry::get(preset, false)?)
            }
        };
        // A variant that overrides anything must name itself: artifacts
        // are keyed by name, and a burst variant silently inheriting
        // "fig4" would overwrite the genuine fig4 rows. A bare
        // `{"extends": ...}` (no overrides) is the preset itself, so the
        // inherited name is correct there.
        if base.is_some() && doc.get("name").is_none() {
            if let Json::Obj(fields) = &doc {
                if fields.iter().any(|(k, _)| k != "extends") {
                    return Err(SpecError::constraint(
                        "spec documents that extend a preset and override fields must set \
                         their own \"name\" (artifacts are keyed by it)",
                    ));
                }
            }
        }

        let name = match doc.get("name").and_then(Json::as_str) {
            Some(s) => s.to_string(),
            None => base
                .as_ref()
                .map(|b| b.name.clone())
                .ok_or_else(|| SpecError::field("name", "a string"))?,
        };
        let title = match doc.get("title").and_then(Json::as_str) {
            Some(s) => s.to_string(),
            None => base.as_ref().map(|b| b.title.clone()).unwrap_or_default(),
        };
        let kind = match doc.get("kind").and_then(Json::as_str) {
            Some(token) => Kind::from_token(token)
                .ok_or_else(|| SpecError::value("kind", format!("unknown kind {token:?}")))?,
            None => base
                .as_ref()
                .map(|b| b.kind)
                .ok_or_else(|| SpecError::field("kind", "a string campaign kind"))?,
        };
        let usize_field = |key: &str, inherited: Option<usize>| -> Result<usize, SpecError> {
            match doc.get(key) {
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| SpecError::field(key, "a non-negative integer")),
                None => inherited.ok_or_else(|| SpecError::field(key, "a non-negative integer")),
            }
        };
        let window = usize_field("window", base.as_ref().map(|b| b.window))?;
        let records = usize_field("records", base.as_ref().map(|b| b.records))?;
        let trials = usize_field("trials", base.as_ref().map(|b| b.trials))?;

        let apps = match doc.get("apps") {
            None => base
                .as_ref()
                .map(|b| b.apps.clone())
                .ok_or_else(|| SpecError::field("apps", "an array of app tokens"))?,
            Some(v) => v
                .as_arr()
                .ok_or_else(|| SpecError::field("apps", "an array of app tokens"))?
                .iter()
                .map(|v| {
                    let token = v
                        .as_str()
                        .ok_or_else(|| SpecError::value("apps", "entries must be strings"))?;
                    app_from_token(token)
                        .ok_or_else(|| SpecError::value("apps", format!("unknown app {token:?}")))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let emts = match doc.get("emts") {
            None => base
                .as_ref()
                .map(|b| b.emts.clone())
                .ok_or_else(|| SpecError::field("emts", "an array of EMT tokens"))?,
            Some(v) => v
                .as_arr()
                .ok_or_else(|| SpecError::field("emts", "an array of EMT tokens"))?
                .iter()
                .map(|v| {
                    let token = v
                        .as_str()
                        .ok_or_else(|| SpecError::value("emts", "entries must be strings"))?;
                    emt_from_token(token)
                        .ok_or_else(|| SpecError::value("emts", format!("unknown emt {token:?}")))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let grid = match doc.get("grid") {
            None => base
                .as_ref()
                .map(|b| b.grid.clone())
                .ok_or_else(|| SpecError::field("grid", "an object with \"axis\"/\"values\""))?,
            Some(grid_obj) => {
                let axis = grid_obj
                    .get("axis")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SpecError::field("grid.axis", "a string axis token"))?;
                let values = grid_obj
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| SpecError::field("grid.values", "an array of numbers"))?;
                let nums = values
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| SpecError::value("grid.values", "must be numbers"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                match axis {
                    "voltage" => Grid::Voltage(nums),
                    "noise" => Grid::NoiseScale(nums),
                    "bit" => Grid::BitPosition(
                        nums.iter()
                            .map(|&n| {
                                if n >= 0.0 && n.fract() == 0.0 && n < 32.0 {
                                    Ok(n as u32)
                                } else {
                                    Err(SpecError::value(
                                        "grid.values",
                                        format!("bit position {n} must be a small integer"),
                                    ))
                                }
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    "words" => Grid::MemoryWords(
                        nums.iter()
                            .map(|&n| {
                                if n >= 1.0 && n.fract() == 0.0 {
                                    Ok(n as usize)
                                } else {
                                    Err(SpecError::value(
                                        "grid.values",
                                        format!("memory size {n} must be a positive integer"),
                                    ))
                                }
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    other => {
                        return Err(SpecError::value(
                            "grid.axis",
                            format!("unknown grid axis {other:?}"),
                        ))
                    }
                }
            }
        };

        let fault = match doc.get("fault") {
            None => base
                .as_ref()
                .map(|b| b.fault.clone())
                .unwrap_or_else(FaultSpec::date16),
            Some(obj) => {
                let inherited = base.as_ref().map(|b| b.fault.clone());
                let num = |key: &str, inherited: Option<f64>| -> Result<f64, SpecError> {
                    let missing = || SpecError::field(format!("fault.{key}"), "a number");
                    match obj.get(key) {
                        Some(v) => v.as_f64().ok_or_else(missing),
                        None => inherited.ok_or_else(missing),
                    }
                };
                FaultSpec {
                    nominal_v: num("nominal_v", inherited.as_ref().map(|f| f.nominal_v))?,
                    log10_ber_at_nominal: num(
                        "log10_ber_at_nominal",
                        inherited.as_ref().map(|f| f.log10_ber_at_nominal),
                    )?,
                    log10_slope_per_volt: num(
                        "log10_slope_per_volt",
                        inherited.as_ref().map(|f| f.log10_slope_per_volt),
                    )?,
                    model: match obj.get("model") {
                        Some(m) => FaultModelSpec::from_json(m)?,
                        None => inherited.map(|f| f.model).unwrap_or_default(),
                    },
                }
            }
        };
        let sink = match doc.get("sink") {
            None => base.as_ref().map(|b| b.sink.clone()).unwrap_or_default(),
            Some(obj) => {
                let inherited = base.as_ref().map(|b| b.sink.clone()).unwrap_or_default();
                let format = match obj.get("format").and_then(Json::as_str) {
                    Some(token) => SinkFormat::from_token(token).ok_or_else(|| {
                        SpecError::value("sink.format", format!("unknown sink format {token:?}"))
                    })?,
                    None => inherited.format,
                };
                let out = match obj.get("out") {
                    None => inherited.out,
                    Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| SpecError::field("sink.out", "a string or null"))?
                            .to_string(),
                    ),
                };
                let append = match obj.get("append") {
                    None => inherited.append,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| SpecError::field("sink.append", "a boolean"))?,
                };
                SinkSpec {
                    format,
                    out,
                    append,
                }
            }
        };

        let scenario = Scenario {
            name,
            title,
            kind,
            window,
            records,
            trials,
            apps,
            emts,
            grid,
            fault,
            fixed_voltage: match doc.get("fixed_voltage").and_then(Json::as_f64) {
                Some(v) => v,
                None => base
                    .as_ref()
                    .map_or(BerModel::NOMINAL_VOLTAGE, |b| b.fixed_voltage),
            },
            noise_scale: match doc.get("noise_scale").and_then(Json::as_f64) {
                Some(v) => v,
                None => base.as_ref().map_or(1.0, |b| b.noise_scale),
            },
            scrambler_key: match doc.get("scrambler_key") {
                None => base.as_ref().and_then(|b| b.scrambler_key),
                Some(Json::Null) => None,
                Some(v) => Some(json_u64(v).ok_or_else(|| {
                    SpecError::field("scrambler_key", "an unsigned 64-bit integer or null")
                })?),
            },
            tolerance_db: match doc.get("tolerance_db") {
                None => base.as_ref().and_then(|b| b.tolerance_db),
                Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| SpecError::field("tolerance_db", "a number or null"))?,
                ),
            },
            ber_slopes: match doc.get("ber_slopes").and_then(Json::as_arr) {
                None => base
                    .as_ref()
                    .map(|b| b.ber_slopes.clone())
                    .unwrap_or_default(),
                Some(items) => items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| SpecError::value("ber_slopes", "must be numbers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            seed: match doc.get("seed") {
                Some(v) => json_u64(v)
                    .ok_or_else(|| SpecError::field("seed", "an unsigned 64-bit integer"))?,
                None => base
                    .as_ref()
                    .map(|b| b.seed)
                    .ok_or_else(|| SpecError::field("seed", "an unsigned 64-bit integer"))?,
            },
            sink,
            point_offset: match doc.get("point_offset") {
                None => base.as_ref().map_or(0, |b| b.point_offset),
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| SpecError::field("point_offset", "a non-negative integer"))?,
            },
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

/// Serializes a `u64` losslessly: as a JSON number when `f64` can carry
/// it exactly, as a decimal string otherwise (seeds and scrambler keys
/// routinely use all 64 bits).
fn u64_json(value: u64) -> Json {
    if value <= (1u64 << 53) {
        Json::Num(value as f64)
    } else {
        Json::Str(value.to_string())
    }
}

/// Parses a `u64` from either encoding produced by [`u64_json`].
fn json_u64(value: &Json) -> Option<u64> {
    match value {
        Json::Str(s) => s.parse().ok(),
        other => other.as_u64(),
    }
}

/// Spec-file token of an application.
pub fn app_token(app: AppKind) -> &'static str {
    match app {
        AppKind::Dwt => "dwt",
        AppKind::MatrixFilter => "matfilt",
        AppKind::CompressedSensing => "cs",
        AppKind::MorphologicalFilter => "morpho",
        AppKind::WaveletDelineation => "delineate",
        AppKind::HeartbeatClassifier => "classifier",
    }
}

/// Parses an application token.
pub fn app_from_token(token: &str) -> Option<AppKind> {
    Some(match token {
        "dwt" => AppKind::Dwt,
        "matfilt" => AppKind::MatrixFilter,
        "cs" => AppKind::CompressedSensing,
        "morpho" => AppKind::MorphologicalFilter,
        "delineate" => AppKind::WaveletDelineation,
        "classifier" => AppKind::HeartbeatClassifier,
        _ => return None,
    })
}

/// Spec-file token of a protection technique.
pub fn emt_token(emt: EmtKind) -> &'static str {
    match emt {
        EmtKind::None => "none",
        EmtKind::Parity => "parity",
        EmtKind::Dream => "dream",
        EmtKind::EccSecDed => "ecc",
    }
}

/// Parses a protection-technique token.
pub fn emt_from_token(token: &str) -> Option<EmtKind> {
    Some(match token {
        "none" => EmtKind::None,
        "parity" => EmtKind::Parity,
        "dream" => EmtKind::Dream,
        "ecc" => EmtKind::EccSecDed,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    #[test]
    fn every_preset_round_trips_through_json() {
        for name in registry::names() {
            for smoke in [false, true] {
                let sc = registry::get(name, smoke).expect("preset exists");
                sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
                let parsed =
                    Scenario::from_json(&sc.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(parsed, sc, "{name} smoke={smoke}");
                assert_eq!(parsed.flatten(), sc.flatten(), "{name} smoke={smoke}");
                assert!(!sc.flatten().is_empty(), "{name} compiles to no trials");
            }
        }
    }

    #[test]
    fn app_and_emt_tokens_round_trip() {
        for app in AppKind::extended() {
            assert_eq!(app_from_token(app_token(app)), Some(app));
        }
        for emt in EmtKind::all() {
            assert_eq!(emt_from_token(emt_token(emt)), Some(emt));
        }
        assert_eq!(app_from_token("nope"), None);
        assert_eq!(emt_from_token("nope"), None);
    }

    #[test]
    fn fig2_flatten_matches_historical_nested_loop_order() {
        let sc = registry::get("fig2", true).unwrap();
        let flat = sc.flatten();
        // app × emt × polarity × bit × record × trial, all contiguous.
        assert_eq!(flat.len(), sc.apps.len() * 2 * 16 * 2 * 2);
        assert_eq!(
            flat[0],
            FlatTrial::Injection {
                app: 0,
                emt: 0,
                stuck: StuckAt::Zero,
                bit: 0,
                record: 0,
                trial: 0
            }
        );
        assert_eq!(
            flat[1],
            FlatTrial::Injection {
                app: 0,
                emt: 0,
                stuck: StuckAt::Zero,
                bit: 0,
                record: 0,
                trial: 1
            }
        );
        let per_app = 2 * 16 * 2 * 2;
        match flat[per_app] {
            FlatTrial::Injection { app, .. } => assert_eq!(app, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn large_seeds_and_scrambler_keys_survive_the_json_round_trip() {
        // f64 carries only 53 bits; seeds and scrambler keys use 64.
        let mut sc = registry::get("fig4", true).unwrap();
        sc.seed = 0xDEAD_BEEF_CAFE_F00D;
        sc.scrambler_key = Some(u64::MAX - 12345);
        let parsed = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(parsed.seed, sc.seed);
        assert_eq!(parsed.scrambler_key, sc.scrambler_key);
    }

    #[test]
    fn bit_grid_is_bounded_by_the_technique_injection_space() {
        // Unprotected sweeps inject into the 16-bit data word…
        let mut sc = registry::get("fig2", true).unwrap();
        sc.grid = Grid::BitPosition(vec![16]);
        assert!(
            sc.validate().is_err(),
            "bit 16 must be rejected with emt none"
        );
        // …protected-only sweeps reach the full 22-bit codeword.
        sc.emts = vec![EmtKind::EccSecDed];
        sc.grid = Grid::BitPosition(vec![21]);
        sc.validate().expect("bit 21 is valid for ECC-only sweeps");
        sc.grid = Grid::BitPosition(vec![22]);
        assert!(sc.validate().is_err());
    }

    #[test]
    fn energy_sweeps_take_exactly_one_app() {
        let mut sc = registry::get("energy", true).unwrap();
        sc.apps = vec![AppKind::Dwt, AppKind::CompressedSensing];
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("one application"), "{err}");
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let mut sc = registry::get("fig4", true).unwrap();
        sc.apps.clear();
        assert!(sc.validate().is_err());

        let mut sc = registry::get("fig4", true).unwrap();
        sc.grid = Grid::Voltage(vec![]);
        assert!(sc.validate().is_err());

        let mut sc = registry::get("tradeoff", true).unwrap();
        sc.grid = Grid::BitPosition(vec![0, 1]);
        assert!(sc.validate().is_err());

        let mut sc = registry::get("geometry-sweep", true).unwrap();
        sc.grid = Grid::MemoryWords(vec![100]); // not a multiple of 16
        assert!(sc.validate().is_err());

        let mut sc = registry::get("noise-sweep", true).unwrap();
        sc.fixed_voltage = 0.0;
        assert!(sc.validate().is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_field() {
        let err = Scenario::from_json("{}").unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
        let err = Scenario::from_json("not json").unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
        let mut spec = registry::get("fig4", true).unwrap().to_json();
        spec = spec.replace("\"dwt\"", "\"warp-drive\"");
        let err = Scenario::from_json(&spec).unwrap_err();
        assert!(err.to_string().contains("warp-drive"), "{err}");
    }

    #[test]
    fn fault_spec_reconstructs_the_date16_model() {
        assert_eq!(FaultSpec::date16().to_model(), BerModel::date16());
    }

    #[test]
    fn spec_errors_carry_the_offending_field_path() {
        let err = Scenario::from_json("{}").unwrap_err();
        assert_eq!(err.path(), Some("name"));
        assert!(matches!(err, SpecError::Field { .. }), "{err:?}");

        let err = Scenario::from_json("not json").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }), "{err:?}");
        assert_eq!(err.path(), None);

        let mut spec = registry::get("fig4", true).unwrap().to_json();
        spec = spec.replace("\"dwt\"", "\"warp-drive\"");
        let err = Scenario::from_json(&spec).unwrap_err();
        assert_eq!(err.path(), Some("apps"));
        assert!(matches!(err, SpecError::Value { .. }), "{err:?}");

        let err = Scenario::from_json(r#"{"extends": "fig9"}"#).unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownScenario { name } if name == "fig9"),
            "{err:?}"
        );

        let mut sc = registry::get("fig4", true).unwrap();
        sc.apps.clear();
        let err = sc.validate().unwrap_err();
        assert!(matches!(err, SpecError::Constraint { .. }), "{err:?}");
    }

    #[test]
    fn sink_tokens_parse_and_round_trip() {
        for (token, format, out, append) in [
            ("table", SinkFormat::Table, None, false),
            ("csv:results/x", SinkFormat::Csv, Some("results/x"), false),
            ("jsonl:out", SinkFormat::Jsonl, Some("out"), false),
            ("jsonl:out,append", SinkFormat::Jsonl, Some("out"), true),
        ] {
            let sink = SinkSpec::parse(token).unwrap_or_else(|e| panic!("{token}: {e}"));
            assert_eq!(sink.format, format, "{token}");
            assert_eq!(sink.out.as_deref(), out, "{token}");
            assert_eq!(sink.append, append, "{token}");
            assert_eq!(sink.token(), token, "round trip");
        }
        for bad in ["parquet", "csv:", "csv:x,append", "jsonl,append", ""] {
            let err = SinkSpec::parse(bad).unwrap_err();
            assert_eq!(err.path(), Some("sink"), "{bad}: {err}");
        }
    }
}
