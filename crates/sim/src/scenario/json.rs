//! Minimal JSON support for scenario specs.
//!
//! The workspace is intentionally dependency-free (see `vendor/README.md`),
//! so scenario serialization rides on this ~200-line value type instead of
//! serde. It covers exactly what specs need: objects, arrays, strings,
//! finite numbers, booleans and null — with stable, diff-friendly
//! pretty-printing so spec files and `dream run --out` artifacts are
//! reproducible byte for byte.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object — insertion-ordered (scenario serialization relies on a
    /// stable field order for reproducible spec files).
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if losslessly
    /// representable.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The numeric payload as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical on-disk spec format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => out.push_str(&crate::report::json_string(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays stay on one line (voltage grids read
                // naturally); nested structures get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&"  ".repeat(indent + 1));
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&crate::report::json_string(k));
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Formats a finite number the shortest way that round-trips (integers
/// without a decimal point, everything else via Rust's shortest-repr
/// float formatting, which `parse::<f64>` inverts exactly).
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{n:.0}")
    } else {
        format!("{n}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {token:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected byte {:?}", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.error("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are not expected in spec files;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        let n: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.error("numbers must be finite"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\\"\"").unwrap(),
            Json::Str("a\n\"b\"".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"name": "fig4", "grid": {"axis": "voltage", "values": [0.5, 0.9]}, "apps": ["dwt"]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig4"));
        let grid = v.get("grid").unwrap();
        assert_eq!(grid.get("axis").unwrap().as_str(), Some("voltage"));
        assert_eq!(grid.get("values").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("noise-sweep".into())),
            ("trials".into(), Json::Num(50.0)),
            (
                "scales".into(),
                Json::Arr(vec![Json::Num(0.5), Json::Num(2.0)]),
            ),
            ("out".into(), Json::Null),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Bool(false))]),
            ),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Pretty output is stable (canonical bytes for spec files).
        assert_eq!(Json::parse(&text).unwrap().pretty(), text);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(200.0).pretty(), "200\n");
        assert_eq!(Json::Num(0.55).pretty(), "0.55\n");
        assert_eq!(Json::Num(-7.6).pretty(), "-7.6\n");
    }

    #[test]
    fn unicode_survives_round_trip() {
        let v = Json::Str("µV — émt".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }
}
