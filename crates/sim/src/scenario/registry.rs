//! Named scenario presets: every paper artifact plus the post-paper
//! sweeps, each in a full-scale and a `--smoke` variant.
//!
//! The five paper presets compile to the exact campaigns the historical
//! per-figure runners executed — `tests/scenario_golden.rs` pins their
//! smoke variants byte for byte against pre-refactor output.

use dream_core::EmtKind;
use dream_dsp::AppKind;
use dream_ecg::Database;
use dream_mem::BerModel;

use super::spec::{FaultModelSpec, FaultSpec, Grid, Kind, Scenario, SinkSpec, SpecError};

/// Base seed of the Fig. 2 injection campaign (historical constant).
pub const FIG2_SEED: u64 = 0xF162;
/// Base seed of the Fig. 4 voltage campaigns (historical constant).
pub const FIG4_SEED: u64 = 0xF1641;
/// Base seed of the noise sweep.
pub const NOISE_SEED: u64 = 0x0153E;
/// Base seed of the burst fault-model sweep.
pub const BURST_SEED: u64 = 0xB0257;
/// Base seed of the per-bank voltage-domain sweep.
pub const BANK_SEED: u64 = 0xBA2C5;
/// Operating voltage of the noise and geometry sweeps: deep in the faulty
/// region (Fig. 4 shows ~0.6 V is where protection starts to matter).
pub const SWEEP_VOLTAGE: f64 = 0.6;
/// Amplitude of the `bank-voltage` preset's per-bank ΔV ramp (V).
pub const BANK_RAMP_V: f64 = 0.05;

/// The preset names, in `dream list` order.
pub fn names() -> [&'static str; 9] {
    [
        "fig2",
        "fig4",
        "energy",
        "tradeoff",
        "ablation",
        "noise-sweep",
        "geometry-sweep",
        "burst-sweep",
        "bank-voltage",
    ]
}

fn base(name: &str, title: &str, kind: Kind, grid: Grid) -> Scenario {
    Scenario {
        name: name.to_string(),
        title: title.to_string(),
        kind,
        window: 1024,
        records: Database::SUITE_SIZE,
        trials: 1,
        apps: AppKind::all().to_vec(),
        emts: EmtKind::paper_set().to_vec(),
        grid,
        fault: FaultSpec::date16(),
        fixed_voltage: BerModel::NOMINAL_VOLTAGE,
        noise_scale: 1.0,
        scrambler_key: None,
        tolerance_db: None,
        ber_slopes: Vec::new(),
        seed: 0,
        sink: SinkSpec::default(),
        point_offset: 0,
    }
}

/// Builds preset `name` (`smoke` = the reduced CI-scale variant).
///
/// # Errors
///
/// Returns [`SpecError::UnknownScenario`] for names outside [`names`] —
/// callers (the CLI, `extends` resolution, the campaign service) surface
/// it as user error, not a panic.
pub fn get(name: &str, smoke: bool) -> Result<Scenario, SpecError> {
    let sc = match name {
        "fig2" => {
            let mut sc = base(
                "fig2",
                "Fig. 2 — SNR vs stuck-at bit position, unprotected buffers",
                Kind::SnrSweep,
                Grid::BitPosition((0..16).collect()),
            );
            sc.emts = vec![EmtKind::None];
            sc.trials = 8;
            sc.seed = FIG2_SEED;
            if smoke {
                sc.window = 512;
                sc.records = 2;
                sc.trials = 2;
            }
            sc
        }
        "fig4" => {
            let mut sc = base(
                "fig4",
                "Fig. 4 — SNR vs supply voltage under none/DREAM/ECC",
                Kind::SnrSweep,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.trials = 200;
            sc.seed = FIG4_SEED;
            if smoke {
                sc.window = 512;
                sc.trials = 4;
                sc.grid = Grid::Voltage(vec![0.5, 0.6, 0.7, 0.8, 0.9]);
            }
            sc
        }
        "energy" => {
            let mut sc = base(
                "energy",
                "§VI-B — per-voltage energy of one run under each EMT",
                Kind::EnergySweep,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.apps = vec![AppKind::Dwt];
            if smoke {
                sc.window = 512;
            }
            sc
        }
        "tradeoff" => {
            let mut sc = base(
                "tradeoff",
                "§VI-C — minimum voltage and energy savings per EMT (DWT, -1 dB)",
                Kind::Tradeoff,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.apps = vec![AppKind::Dwt];
            sc.trials = 100;
            sc.tolerance_db = Some(1.0);
            sc.seed = FIG4_SEED;
            if smoke {
                sc.window = 512;
                sc.trials = 4;
            }
            sc
        }
        "ablation" => {
            let mut sc = base(
                "ablation",
                "Design-choice ablations: protected bits, scrambler, BER slope, mask rail",
                Kind::Ablation,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.apps = vec![AppKind::Dwt];
            sc.emts = vec![EmtKind::Dream];
            sc.trials = 12;
            sc.ber_slopes = vec![10.0, 13.0, 16.0];
            if smoke {
                sc.window = 512;
                sc.trials = 4;
                sc.ber_slopes = vec![10.0, 16.0];
            }
            sc
        }
        "noise-sweep" => {
            let mut sc = base(
                "noise-sweep",
                "SNR vs input-noise floor at 0.6 V — how signal quality shifts each EMT",
                Kind::SnrSweep,
                Grid::NoiseScale(vec![0.0, 0.5, 1.0, 2.0, 4.0]),
            );
            sc.trials = 50;
            sc.fixed_voltage = SWEEP_VOLTAGE;
            sc.seed = NOISE_SEED;
            if smoke {
                sc.window = 512;
                sc.trials = 2;
                sc.grid = Grid::NoiseScale(vec![0.0, 1.0, 4.0]);
            }
            sc
        }
        "geometry-sweep" => {
            let mut sc = base(
                "geometry-sweep",
                "Energy vs data-memory size at 0.6 V — leakage cost of over-provisioned SRAM",
                Kind::EnergySweep,
                // The DWT footprint at the 1024-sample window is 8192
                // words; the grid sweeps from exactly-fits to the 4x
                // over-provisioned INYU-class array and beyond.
                Grid::MemoryWords(vec![8192, 16384, 32768, 65536]),
            );
            sc.apps = vec![AppKind::Dwt];
            sc.fixed_voltage = SWEEP_VOLTAGE;
            if smoke {
                sc.window = 512;
                sc.grid = Grid::MemoryWords(vec![4096, 16384, 65536]);
            }
            sc
        }
        "burst-sweep" => {
            let mut sc = base(
                "burst-sweep",
                "Fig. 4 sweep under burst faults — geometric run-length clusters (mean 8)",
                Kind::SnrSweep,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.fault.model = FaultModelSpec::Burst { mean_run_len: 8.0 };
            sc.trials = 100;
            sc.seed = BURST_SEED;
            if smoke {
                sc.window = 512;
                sc.trials = 4;
                sc.grid = Grid::Voltage(vec![0.5, 0.6, 0.7, 0.8, 0.9]);
            }
            sc
        }
        "bank-voltage" => {
            let mut sc = base(
                "bank-voltage",
                "Fig. 4 sweep under per-bank voltage-domain drift (±50 mV ramp)",
                Kind::SnrSweep,
                Grid::Voltage(BerModel::paper_voltages()),
            );
            sc.fault.model = FaultModelSpec::PerBankVoltage {
                bank_offsets: FaultModelSpec::bank_ramp(BANK_RAMP_V),
            };
            sc.trials = 100;
            sc.seed = BANK_SEED;
            if smoke {
                sc.window = 512;
                sc.trials = 4;
                sc.grid = Grid::Voltage(vec![0.5, 0.6, 0.7, 0.8, 0.9]);
            }
            sc
        }
        _ => {
            return Err(SpecError::UnknownScenario {
                name: name.to_string(),
            })
        }
    };
    Ok(sc)
}

/// `(name, kind, axis, points, title)` for every preset — the rows behind
/// `dream list`.
pub fn catalog() -> Vec<(String, &'static str, &'static str, usize, String)> {
    names()
        .iter()
        .map(|&name| {
            let sc = get(name, false).expect("registry names are exhaustive");
            (
                sc.name.clone(),
                sc.kind.token(),
                sc.grid.axis_token(),
                sc.grid.len(),
                sc.title.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in names() {
            for smoke in [false, true] {
                let sc = get(name, smoke).expect("preset exists");
                assert_eq!(sc.name, name);
                sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
        let err = get("nope", false).unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownScenario { name } if name == "nope"),
            "{err}"
        );
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn paper_presets_match_historical_configs() {
        let fig2 = get("fig2", false).unwrap();
        assert_eq!(fig2.seed, FIG2_SEED);
        assert_eq!(fig2.emts, vec![EmtKind::None]);
        assert_eq!(fig2.grid.len(), 32); // 16 bits × 2 polarities
        let fig4 = get("fig4", false).unwrap();
        assert_eq!(fig4.seed, FIG4_SEED);
        assert_eq!(fig4.trials, 200);
        assert_eq!(fig4.grid, Grid::Voltage(BerModel::paper_voltages()));
        let tradeoff = get("tradeoff", false).unwrap();
        assert_eq!(tradeoff.tolerance_db, Some(1.0));
        assert_eq!(tradeoff.apps, vec![AppKind::Dwt]);
    }

    #[test]
    fn catalog_lists_every_preset_once() {
        let cat = catalog();
        assert_eq!(cat.len(), names().len());
        let mut seen: Vec<&str> = cat.iter().map(|(n, ..)| n.as_str()).collect();
        seen.dedup();
        assert_eq!(seen.len(), cat.len());
    }

    #[test]
    fn smoke_variants_are_strictly_smaller() {
        for name in names() {
            let full = get(name, false).unwrap();
            let smoke = get(name, true).unwrap();
            assert!(
                smoke.flatten().len() <= full.flatten().len(),
                "{name}: smoke must not out-scale the full preset"
            );
            assert!(smoke.window <= full.window, "{name}");
        }
    }
}
