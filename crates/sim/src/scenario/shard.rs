//! Deterministic grid partitioning: split one validated [`Scenario`]
//! into K contiguous shards whose outputs concatenate **byte-identically**
//! to the serial artifact.
//!
//! Each campaign family has one natural shard axis along which rows are
//! emitted contiguously and per-trial seeds do not depend on position:
//!
//! * **Injection sweeps** (`snr-sweep` over bit positions, fig2) shard
//!   along the *application* axis — rows are emitted app-major and every
//!   fault seed derives from `(record, trial)` only, so an apps-subset
//!   spec reproduces exactly its slice of the serial row stream.
//! * **Draw families** (`snr-sweep` over voltage or noise scale, fig4 /
//!   noise-sweep) shard along contiguous *grid-point ranges*; the derived
//!   spec carries [`Scenario::point_offset`] so per-point fault and
//!   scrambler seeds — `fault_seed(seed, point, run)` — match the absolute
//!   point index the serial run would have used.
//! * **Geometry sweeps** (`energy-sweep` over memory words) shard along
//!   grid-point ranges; their pricing trials draw no fault seeds, so the
//!   slice alone suffices.
//! * Everything else (`tradeoff`, `ablation`, `energy-sweep` over
//!   voltage) emits a single interdependent artifact and collapses to one
//!   shard — sharding degrades gracefully to the serial run.
//!
//! The plan is pure data: each [`Shard`] holds a derived spec plus the
//! half-open row window it produces, so a coordinator can fan shards out,
//! cache their sub-artifacts independently, and reassemble in index order
//! while resuming mid-shard via [`ShardPlan::locate_row`].

use super::spec::{Grid, Kind, Scenario, SinkSpec, SpecError};

/// One contiguous slice of a sharded campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct Shard {
    /// Position of this shard in the plan (reassembly order).
    pub index: usize,
    /// The derived spec a worker executes to produce exactly this
    /// shard's rows. For single-shard plans this is the parent spec
    /// unchanged (same canonical hash, same store id).
    pub spec: Scenario,
    /// Index of this shard's first row within the serial artifact.
    pub row_offset: usize,
    /// Number of rows this shard emits, when the family's row count is
    /// statically known (`None` only for opaque single-shard plans).
    pub rows: Option<usize>,
}

/// A deterministic partition of one campaign into contiguous shards.
///
/// Invariant (enforced by `tests/shard_equivalence.rs` the same way PR 8
/// enforced batch≡scalar): concatenating every shard's row stream in
/// `index` order is byte-identical to the serial artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    total_rows: Option<usize>,
}

impl ShardPlan {
    /// Partitions `sc` into at most `shards` contiguous shards.
    ///
    /// The request is clamped to the number of available units along the
    /// family's shard axis (asking for more shards than grid points is
    /// fine), and floors at one. Families without a safe shard axis
    /// return a single-shard plan — callers need no special cases.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SpecError`] when `sc` itself fails
    /// validation; every derived shard spec of a valid parent is valid.
    pub fn new(sc: &Scenario, shards: usize) -> Result<ShardPlan, SpecError> {
        sc.validate()?;
        let requested = shards.max(1);
        let (units, rows_per_unit) = match (sc.kind, &sc.grid) {
            (Kind::SnrSweep, Grid::BitPosition(bits)) => {
                (sc.apps.len(), sc.emts.len() * 2 * bits.len())
            }
            (Kind::SnrSweep, Grid::Voltage(v)) => (v.len(), sc.emts.len() * sc.apps.len()),
            (Kind::SnrSweep, Grid::NoiseScale(n)) => (n.len(), sc.emts.len() * sc.apps.len()),
            (Kind::EnergySweep, Grid::MemoryWords(w)) => (w.len(), sc.emts.len()),
            // Tradeoff / ablation / voltage-energy artifacts are
            // interdependent across the whole grid: serial only.
            _ => (1, 0),
        };
        let k = requested.min(units).max(1);
        if k <= 1 {
            let rows = if rows_per_unit == 0 {
                None
            } else {
                Some(units * rows_per_unit)
            };
            return Ok(ShardPlan {
                shards: vec![Shard {
                    index: 0,
                    spec: sc.clone(),
                    row_offset: 0,
                    rows,
                }],
                total_rows: rows,
            });
        }

        let base = units / k;
        let extra = units % k;
        let mut shards_out = Vec::with_capacity(k);
        let mut unit_start = 0usize;
        for index in 0..k {
            let size = base + usize::from(index < extra);
            let range = unit_start..unit_start + size;
            let mut spec = sc.clone();
            spec.name = format!("{}.shard{}of{}", sc.name, index + 1, k);
            spec.sink = SinkSpec::default();
            match (sc.kind, &sc.grid) {
                (Kind::SnrSweep, Grid::BitPosition(_)) => {
                    spec.apps = sc.apps[range.clone()].to_vec();
                }
                _ => {
                    spec.grid = slice_grid(&sc.grid, range.clone());
                    spec.point_offset = sc.point_offset + range.start;
                }
            }
            debug_assert!(spec.validate().is_ok());
            shards_out.push(Shard {
                index,
                spec,
                row_offset: unit_start * rows_per_unit,
                rows: Some(size * rows_per_unit),
            });
            unit_start += size;
        }
        Ok(ShardPlan {
            shards: shards_out,
            total_rows: Some(units * rows_per_unit),
        })
    }

    /// The shards in reassembly order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards in the plan (always ≥ 1).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Never true — a plan always holds at least one shard. Present for
    /// the `len`/`is_empty` idiom clippy expects.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// True when the plan degenerated to a single shard (serial run).
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }

    /// Total rows across every shard, when statically known.
    pub fn total_rows(&self) -> Option<usize> {
        self.total_rows
    }

    /// Locates the shard containing serial row index `row`, returning
    /// `(shard index, row offset local to that shard)`.
    ///
    /// Used for skip-rows resume landing mid-shard: a partial parent
    /// artifact of `row` rows continues inside shard `i` at local offset
    /// `local`. Returns `None` when `row` is at or past the end of a
    /// plan whose size is known (nothing left to run).
    pub fn locate_row(&self, row: usize) -> Option<(usize, usize)> {
        match self.total_rows {
            None => Some((0, row)),
            Some(total) if row >= total => None,
            Some(_) => {
                let shard = self
                    .shards
                    .iter()
                    .rfind(|s| s.row_offset <= row)
                    .expect("first shard starts at row 0");
                Some((shard.index, row - shard.row_offset))
            }
        }
    }
}

fn slice_grid(grid: &Grid, range: std::ops::Range<usize>) -> Grid {
    match grid {
        Grid::Voltage(v) => Grid::Voltage(v[range].to_vec()),
        Grid::BitPosition(b) => Grid::BitPosition(b[range].to_vec()),
        Grid::NoiseScale(n) => Grid::NoiseScale(n[range].to_vec()),
        Grid::MemoryWords(w) => Grid::MemoryWords(w[range].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    fn fig4() -> Scenario {
        registry::get("fig4", true).expect("preset exists")
    }

    fn fig2() -> Scenario {
        registry::get("fig2", true).expect("preset exists")
    }

    #[test]
    fn k1_is_the_identity() {
        let sc = fig4();
        let plan = ShardPlan::new(&sc, 1).unwrap();
        assert!(plan.is_trivial());
        assert_eq!(plan.shards()[0].spec, sc);
        assert_eq!(plan.shards()[0].row_offset, 0);
    }

    #[test]
    fn voltage_grid_shards_carry_point_offsets() {
        let sc = fig4();
        let points = sc.grid.len();
        let plan = ShardPlan::new(&sc, 2).unwrap();
        assert_eq!(plan.len(), 2);
        let rows_per_point = sc.emts.len() * sc.apps.len();
        let first = &plan.shards()[0];
        let second = &plan.shards()[1];
        assert_eq!(first.spec.point_offset, 0);
        assert_eq!(
            second.spec.point_offset,
            first.spec.grid.len(),
            "second shard's seeds start where the first ends"
        );
        assert_eq!(first.spec.grid.len() + second.spec.grid.len(), points);
        assert_eq!(second.row_offset, first.rows.unwrap());
        assert_eq!(
            plan.total_rows(),
            Some(points * rows_per_point),
            "row windows tile the serial artifact"
        );
    }

    #[test]
    fn injection_shards_split_the_apps_axis() {
        let sc = fig2();
        let plan = ShardPlan::new(&sc, 2).unwrap();
        assert_eq!(plan.len(), 2.min(sc.apps.len()));
        let mut apps = Vec::new();
        for shard in plan.shards() {
            assert_eq!(shard.spec.grid, sc.grid, "bit grid untouched");
            assert_eq!(shard.spec.point_offset, 0, "injection seeds ignore points");
            apps.extend(shard.spec.apps.iter().copied());
        }
        assert_eq!(apps, sc.apps, "apps partition contiguously in order");
    }

    #[test]
    fn oversubscription_clamps_to_unit_count() {
        let mut sc = fig4();
        if let Grid::Voltage(v) = &mut sc.grid {
            v.truncate(3);
        }
        let plan = ShardPlan::new(&sc, 64).unwrap();
        assert_eq!(plan.len(), 3, "K > grid points clamps to grid points");
        for shard in plan.shards() {
            assert_eq!(shard.spec.grid.len(), 1);
        }
    }

    #[test]
    fn uneven_splits_give_earlier_shards_the_remainder() {
        let mut sc = fig4();
        if let Grid::Voltage(v) = &mut sc.grid {
            assert!(v.len() >= 5, "smoke fig4 sweeps at least five voltages");
            v.truncate(5);
        }
        let plan = ShardPlan::new(&sc, 3).unwrap();
        let sizes: Vec<usize> = plan.shards().iter().map(|s| s.spec.grid.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        let offsets: Vec<usize> = plan.shards().iter().map(|s| s.spec.point_offset).collect();
        assert_eq!(offsets, vec![0, 2, 4]);
    }

    #[test]
    fn unshardable_families_collapse_to_one_shard() {
        for preset in ["tradeoff", "ablation", "energy"] {
            let sc = registry::get(preset, true).expect("preset exists");
            let plan = ShardPlan::new(&sc, 8).unwrap();
            assert!(plan.is_trivial(), "{preset} must stay serial");
            assert_eq!(plan.shards()[0].spec, sc);
        }
    }

    #[test]
    fn locate_row_walks_the_shard_windows() {
        let sc = fig4();
        let plan = ShardPlan::new(&sc, 4).unwrap();
        let rows_per_point = sc.emts.len() * sc.apps.len();
        let total = plan.total_rows().unwrap();
        // Row 0 is the first shard's first row.
        assert_eq!(plan.locate_row(0), Some((0, 0)));
        // A row in the middle of shard 1 resolves with a local offset.
        let s1 = &plan.shards()[1];
        let mid = s1.row_offset + rows_per_point / 2;
        assert_eq!(plan.locate_row(mid), Some((1, rows_per_point / 2)));
        // The boundary row belongs to the next shard.
        assert_eq!(plan.locate_row(s1.row_offset), Some((1, 0)));
        // Past the end: nothing to resume.
        assert_eq!(plan.locate_row(total), None);
    }

    #[test]
    fn derived_specs_validate_and_round_trip_via_json() {
        let sc = fig4();
        let plan = ShardPlan::new(&sc, 2).unwrap();
        for shard in plan.shards() {
            shard.spec.validate().expect("derived shard spec is valid");
            let text = shard.spec.to_json();
            let parsed = Scenario::from_json(&text).expect("round-trips");
            assert_eq!(parsed, shard.spec);
        }
    }
}
