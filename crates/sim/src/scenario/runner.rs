//! [`CampaignRunner`]: the one surface every campaign driver goes
//! through — the CLI, the campaign service, and tests alike.
//!
//! The engine's free functions grew knobs in incompatible places: thread
//! counts lived in a process-global override, there was no way to observe
//! a long campaign mid-flight, and nothing could stop one. The builder
//! carries all three per campaign:
//!
//! ```
//! use dream_sim::report::NullSink;
//! use dream_sim::scenario::{registry, CampaignRunner};
//!
//! let sc = registry::get("fig2", true).expect("preset exists");
//! let outcome = CampaignRunner::new(sc)
//!     .threads(2)
//!     .on_progress(|p| eprintln!("{}/{} trials dispatched", p.rows, p.trials_total))
//!     .run(&mut NullSink)
//!     .expect("campaign runs");
//! assert!(!outcome.rows.is_empty());
//! ```
//!
//! Determinism is untouched: the runner only wraps the sink (to count and
//! optionally skip rows) and scopes the thread count to the driving
//! thread, so output stays bit-identical to the engine's at any thread
//! count. `skip_rows` + [`crate::report::JsonlSink::append`] is the
//! resume story — re-run the (deterministic) campaign and drop the prefix
//! already on disk.

use std::io;

use crate::exec::{self, CancelToken};
use crate::report::{NullSink, Sink};

use super::engine::{self, EngineError, ScenarioOutcome};
use super::spec::Scenario;

/// A progress snapshot, delivered to [`CampaignRunner::on_progress`]
/// after every batch the engine emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Batches emitted so far (one per grid point / engine family step).
    pub batches: usize,
    /// Rows produced so far — skipped resume rows included, so during a
    /// resume this equals the row count of the artifact being completed.
    pub rows: usize,
    /// Total flattened trials of the campaign (`Scenario::flatten` — the
    /// engine's exact work list, fixed up front).
    pub trials_total: usize,
}

type ProgressFn = dyn Fn(Progress) + Send + Sync;

/// Builder for one campaign execution: spec in, rows out, with per-run
/// thread pinning, progress events, cooperative cancellation, and
/// resume-by-skipping.
pub struct CampaignRunner {
    spec: Scenario,
    threads: Option<usize>,
    batch: Option<bool>,
    bailout: Option<f64>,
    cancel: Option<CancelToken>,
    on_progress: Option<Box<ProgressFn>>,
    skip_rows: usize,
}

impl CampaignRunner {
    /// A runner for `spec` with default settings: inherited thread
    /// resolution, no progress callback, not cancellable, no skipping.
    pub fn new(spec: Scenario) -> CampaignRunner {
        CampaignRunner {
            spec,
            threads: None,
            batch: None,
            bailout: None,
            cancel: None,
            on_progress: None,
            skip_rows: 0,
        }
    }

    /// Pins the worker count for this campaign only (scoped to the
    /// driving thread — concurrent campaigns don't race).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn threads(mut self, n: usize) -> CampaignRunner {
        assert!(n > 0, "thread count must be at least 1");
        self.threads = Some(n);
        self
    }

    /// Pins bit-sliced trial batching on or off for this campaign only
    /// (scoped to the driving thread, like [`CampaignRunner::threads`]),
    /// overriding the `DREAM_BATCH` environment default. Batching changes
    /// scheduling, never values: output is bit-identical either way.
    #[must_use]
    pub fn batch(mut self, enabled: bool) -> CampaignRunner {
        self.batch = Some(enabled);
        self
    }

    /// Pins the batched executor's adaptive bail-out fraction for this
    /// campaign only (scoped to the driving thread), overriding the
    /// `DREAM_BATCH_BAILOUT` environment default. Like batching itself,
    /// the fraction changes scheduling, never values — output is
    /// bit-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `0.0..=1.0`.
    #[must_use]
    pub fn bailout(mut self, fraction: f64) -> CampaignRunner {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "bail-out fraction must be in 0.0..=1.0, got {fraction}"
        );
        self.bailout = Some(fraction);
        self
    }

    /// Attaches a cancellation token; firing it makes [`run`] return
    /// [`EngineError::Cancelled`] at the next cooperative check.
    ///
    /// [`run`]: CampaignRunner::run
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> CampaignRunner {
        self.cancel = Some(token);
        self
    }

    /// Registers a callback invoked after every emitted batch with a
    /// [`Progress`] snapshot. Called on the driving thread.
    #[must_use]
    pub fn on_progress(
        mut self,
        callback: impl Fn(Progress) + Send + Sync + 'static,
    ) -> CampaignRunner {
        self.on_progress = Some(Box::new(callback));
        self
    }

    /// Suppresses the first `rows` output rows — the resume path for an
    /// interrupted append-mode artifact: the engine deterministically
    /// recomputes the prefix, and the sink only sees what is missing.
    #[must_use]
    pub fn skip_rows(mut self, rows: usize) -> CampaignRunner {
        self.skip_rows = rows;
        self
    }

    /// The spec this runner will execute.
    pub fn spec(&self) -> &Scenario {
        &self.spec
    }

    /// Runs the campaign, streaming rows to `sink`.
    ///
    /// A cancelled run still flushes the sink (best-effort `finish`)
    /// before returning, so the deterministic prefix streamed up to the
    /// cancellation point is durable — that prefix is exactly what
    /// `skip_rows` resumes from after a drain.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] for invalid specs, [`EngineError::Io`] for
    /// sink failures, [`EngineError::Cancelled`] when the token fired.
    pub fn run(&self, sink: &mut dyn Sink) -> Result<ScenarioOutcome, EngineError> {
        self.spec.validate()?;
        let mut instrumented = InstrumentedSink {
            inner: sink,
            skip_remaining: self.skip_rows,
            progress: Progress {
                batches: 0,
                rows: 0,
                trials_total: self.spec.flatten().len(),
            },
            on_progress: self.on_progress.as_deref(),
        };
        let result = exec::with_ambient_bailout(self.bailout, || {
            exec::with_ambient_batch(self.batch, || {
                exec::with_ambient_threads(self.threads, || {
                    engine::run_campaign(&self.spec, &mut instrumented, self.cancel.as_ref())
                })
            })
        });
        if matches!(result, Err(EngineError::Cancelled)) {
            let _ = instrumented.inner.finish();
        }
        result
    }

    /// Runs the campaign, discarding streamed rows (callers that only
    /// want the typed [`ScenarioOutcome`]).
    ///
    /// # Errors
    ///
    /// As for [`CampaignRunner::run`].
    pub fn run_discarding(&self) -> Result<ScenarioOutcome, EngineError> {
        self.run(&mut NullSink)
    }
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("spec", &self.spec.name)
            .field("threads", &self.threads)
            .field("batch", &self.batch)
            .field("bailout", &self.bailout)
            .field("cancellable", &self.cancel.is_some())
            .field("skip_rows", &self.skip_rows)
            .finish()
    }
}

/// Wraps the caller's sink to count rows, fire progress callbacks, and
/// drop the resume prefix. The engine sees one `dyn Sink`; determinism is
/// unaffected because rows are only counted or suppressed, never altered.
struct InstrumentedSink<'a> {
    inner: &'a mut dyn Sink,
    skip_remaining: usize,
    progress: Progress,
    on_progress: Option<&'a ProgressFn>,
}

impl Sink for InstrumentedSink<'_> {
    fn begin(&mut self, headers: &[&str]) -> io::Result<()> {
        self.inner.begin(headers)
    }

    fn emit(&mut self, rows: &[Vec<String>]) -> io::Result<()> {
        self.progress.batches += 1;
        self.progress.rows += rows.len();
        let skipped = self.skip_remaining.min(rows.len());
        self.skip_remaining -= skipped;
        if skipped < rows.len() {
            self.inner.emit(&rows[skipped..])?;
        }
        if let Some(callback) = self.on_progress {
            callback(self.progress);
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CsvSink, JsonlSink};
    use crate::scenario::registry;
    use crate::scenario::spec::Grid;
    use dream_dsp::AppKind;

    fn tiny_fig4() -> Scenario {
        let mut sc = registry::get("fig4", true).unwrap();
        sc.window = 512;
        sc.records = 1;
        sc.trials = 1;
        sc.apps = vec![AppKind::Dwt];
        sc.grid = Grid::Voltage(vec![0.55, 0.9]);
        sc
    }

    fn jsonl_of(sc: &Scenario, runner: CampaignRunner) -> String {
        let mut sink = JsonlSink::new(Vec::new());
        runner
            .run(&mut sink)
            .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        String::from_utf8(sink.into_inner()).unwrap()
    }

    #[test]
    fn runner_matches_the_engine_at_pinned_thread_counts() {
        let sc = tiny_fig4();
        let one = jsonl_of(&sc, CampaignRunner::new(sc.clone()).threads(1));
        let four = jsonl_of(&sc, CampaignRunner::new(sc.clone()).threads(4));
        assert_eq!(one, four, "thread count must not change output bytes");
        assert!(!one.is_empty());
    }

    #[test]
    fn batched_execution_is_bit_identical_to_scalar() {
        let mut fig2 = registry::get("fig2", true).unwrap();
        fig2.window = 512;
        fig2.records = 1;
        fig2.trials = 1;
        fig2.apps = vec![AppKind::Dwt];
        fig2.grid = Grid::BitPosition(vec![0, 12, 15]);
        for sc in [fig2, tiny_fig4()] {
            let scalar = jsonl_of(&sc, CampaignRunner::new(sc.clone()).batch(false));
            let batched = jsonl_of(&sc, CampaignRunner::new(sc.clone()).batch(true));
            assert_eq!(
                scalar, batched,
                "{}: batching must not change bytes",
                sc.name
            );
            assert!(!scalar.is_empty());
        }
    }

    #[test]
    fn progress_reports_every_batch_and_the_full_trial_count() {
        use std::sync::{Arc, Mutex};
        let sc = tiny_fig4();
        let seen: Arc<Mutex<Vec<Progress>>> = Arc::default();
        let sink_rows = {
            let seen = Arc::clone(&seen);
            let mut sink = CsvSink::new(Vec::new());
            CampaignRunner::new(sc.clone())
                .on_progress(move |p| seen.lock().unwrap().push(p))
                .run(&mut sink)
                .unwrap()
                .rows
                .len()
        };
        let seen = seen.lock().unwrap();
        // One event per voltage point; the last one covers every row.
        assert_eq!(seen.len(), 2);
        assert_eq!(seen.last().unwrap().rows, sink_rows);
        assert!(seen.iter().all(|p| p.trials_total == sc.flatten().len()));
        assert!(seen.windows(2).all(|w| w[0].batches < w[1].batches));
    }

    #[test]
    fn cancellation_surfaces_as_engine_cancelled() {
        let sc = tiny_fig4();
        let token = CancelToken::new();
        token.cancel();
        let err = CampaignRunner::new(sc)
            .cancel_token(token)
            .run_discarding()
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err:?}");
    }

    #[test]
    fn cancel_mid_campaign_leaves_a_deterministic_prefix_and_skip_rows_resumes_it() {
        let sc = tiny_fig4();

        // Reference: the full artifact in one clean run.
        let full = jsonl_of(&sc, CampaignRunner::new(sc.clone()));

        // "Killed" run: fire the token from the first progress event, so
        // the second voltage point is never drawn.
        let token = CancelToken::new();
        let trip = token.clone();
        let mut partial_sink = JsonlSink::new(Vec::new());
        let err = CampaignRunner::new(sc.clone())
            .cancel_token(token)
            .on_progress(move |_| trip.cancel())
            .run(&mut partial_sink)
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err:?}");
        let partial = String::from_utf8(partial_sink.into_inner()).unwrap();
        let partial_rows = partial.lines().count();
        assert!(partial_rows > 0, "first batch must have been flushed");
        assert!(partial_rows < full.lines().count(), "must stop early");
        assert!(full.starts_with(&partial), "prefix must be deterministic");

        // Resume: skip what exists; appending the remainder reproduces
        // the clean artifact byte for byte.
        let mut resumed_sink = JsonlSink::new(Vec::new());
        CampaignRunner::new(sc)
            .skip_rows(partial_rows)
            .run(&mut resumed_sink)
            .unwrap();
        let resumed = String::from_utf8(resumed_sink.into_inner()).unwrap();
        assert_eq!(format!("{partial}{resumed}"), full);
    }

    #[test]
    fn cancelled_runs_still_flush_the_sink() {
        struct FinishSpy {
            finished: bool,
        }
        impl crate::report::Sink for FinishSpy {
            fn begin(&mut self, _headers: &[&str]) -> io::Result<()> {
                Ok(())
            }
            fn emit(&mut self, _rows: &[Vec<String>]) -> io::Result<()> {
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                self.finished = true;
                Ok(())
            }
        }

        let sc = tiny_fig4();
        let token = CancelToken::new();
        let trip = token.clone();
        let mut sink = FinishSpy { finished: false };
        let err = CampaignRunner::new(sc)
            .cancel_token(token)
            .on_progress(move |_| trip.cancel())
            .run(&mut sink)
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err:?}");
        assert!(
            sink.finished,
            "a drained campaign must flush its streamed prefix"
        );
    }

    #[test]
    fn skipping_everything_emits_nothing_but_still_returns_the_outcome() {
        let sc = tiny_fig4();
        let mut sink = JsonlSink::new(Vec::new());
        let outcome = CampaignRunner::new(sc)
            .skip_rows(usize::MAX)
            .run(&mut sink)
            .unwrap();
        assert!(!outcome.rows.is_empty());
        assert!(sink.into_inner().is_empty());
    }
}
