//! Experiment E7: the §VI-C quality-vs-energy trade-off exploration.
//!
//! Pure row-typed post-processing: [`explore`] and [`mixed_policy`]
//! consume the Fig. 4 points and energy rows the scenario engine
//! produces (`dream run tradeoff` wires them together).

use dream_core::EmtKind;
use dream_dsp::AppKind;

use crate::energy_table::EnergyRow;
use crate::fig4::{curve, Fig4Point};

/// Energy of the 0.9 V unprotected baseline every §VI-C saving is priced
/// against (pJ) — shared by [`explore`] and [`mixed_policy`], which used
/// to each re-derive it.
///
/// # Panics
///
/// Panics if the energy table lacks the 0.9 V unprotected row.
fn nominal_baseline_pj(energy: &[EnergyRow]) -> f64 {
    energy
        .iter()
        .find(|r| r.emt == EmtKind::None && (r.voltage - 0.9).abs() < 1e-9)
        .expect("energy table must include the 0.9 V unprotected baseline")
        .energy
        .total_pj()
}

/// The operating point §VI-C selects for one EMT: the lowest voltage whose
/// *average* output degradation stays within the tolerance, and the energy
/// saved by running there instead of nominal-unprotected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TradeoffPolicy {
    /// Protection scheme.
    pub emt: EmtKind,
    /// Lowest admissible supply voltage (V); `None` if even nominal fails.
    pub min_voltage: Option<f64>,
    /// Energy savings versus the 0.9 V unprotected baseline (fraction;
    /// `0.30` = 30 % less energy), at `min_voltage`.
    pub savings_vs_nominal: Option<f64>,
}

/// Reproduces the §VI-C exploration for `app`: given the Fig. 4 curves and
/// the energy table, find for each EMT the lowest voltage at which the
/// mean SNR has dropped by at most `tolerance_db` from that EMT's ceiling
/// (its SNR at nominal voltage), then price the energy savings against
/// running unprotected at 0.9 V.
///
/// The paper instantiates this with the DWT application and a −1 dB
/// tolerance, obtaining three regimes: no protection down to ~0.85 V,
/// DREAM down to ~0.65 V, ECC SEC/DED down to ~0.55 V.
///
/// # Panics
///
/// Panics if the inputs do not contain the 0.9 V unprotected baseline.
pub fn explore(
    app: AppKind,
    tolerance_db: f64,
    fig4: &[Fig4Point],
    energy: &[EnergyRow],
) -> Vec<TradeoffPolicy> {
    let baseline_energy = nominal_baseline_pj(energy);
    let emts: Vec<EmtKind> = {
        let mut seen = Vec::new();
        for p in fig4 {
            if p.app == app && !seen.contains(&p.emt) {
                seen.push(p.emt);
            }
        }
        seen
    };
    emts.into_iter()
        .map(|emt| {
            let c = curve(fig4, app, emt);
            assert!(!c.is_empty(), "no Fig. 4 curve for {emt}");
            let ceiling = c.last().expect("non-empty").mean_snr_db;
            // Walk down from nominal; stop before the first failing point.
            let mut min_voltage = None;
            for p in c.iter().rev() {
                if p.mean_snr_db >= ceiling - tolerance_db {
                    min_voltage = Some(p.voltage);
                } else {
                    break;
                }
            }
            let savings_vs_nominal = min_voltage.map(|v| {
                let e = energy
                    .iter()
                    .find(|r| r.emt == emt && (r.voltage - v).abs() < 1e-9)
                    .unwrap_or_else(|| panic!("energy table missing {emt} at {v} V"))
                    .energy
                    .total_pj();
                1.0 - e / baseline_energy
            });
            TradeoffPolicy {
                emt,
                min_voltage,
                savings_vs_nominal,
            }
        })
        .collect()
}

/// One band of the §VI-C mixed-EMT operating policy: at `voltage`, run
/// `best_emt` (the cheapest technique still within tolerance), spending
/// `energy_pj` per application run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyBand {
    /// Supply voltage of this grid point (V).
    pub voltage: f64,
    /// Cheapest EMT meeting the quality tolerance here, if any.
    pub best_emt: Option<EmtKind>,
    /// Energy per run of the chosen EMT (pJ); `None` when nothing passes.
    pub energy_pj: Option<f64>,
    /// Savings versus 0.9 V unprotected when operating here.
    pub savings_vs_nominal: Option<f64>,
}

/// The full §VI-C policy: "combining the two aforementioned techniques and
/// triggering, selectively, one or the other, according to the memory
/// supply voltage and level of protection required".
///
/// For every voltage of the Fig. 4 grid, picks the lowest-energy EMT whose
/// mean SNR stays within `tolerance_db` of its own nominal ceiling. The
/// resulting table is the paper's "three ranges of voltages": unprotected
/// near nominal, DREAM in the middle band, ECC at the bottom — and the last
/// band with any entry is the device's minimum operating point.
///
/// # Panics
///
/// Panics if the energy table lacks the 0.9 V unprotected baseline.
pub fn mixed_policy(
    app: AppKind,
    tolerance_db: f64,
    fig4: &[Fig4Point],
    energy: &[EnergyRow],
) -> Vec<PolicyBand> {
    let baseline = nominal_baseline_pj(energy);
    let policies = explore(app, tolerance_db, fig4, energy);
    let mut voltages: Vec<f64> = fig4
        .iter()
        .filter(|p| p.app == app)
        .map(|p| p.voltage)
        .collect();
    voltages.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    voltages.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    voltages
        .into_iter()
        .map(|v| {
            let mut best: Option<(EmtKind, f64)> = None;
            for policy in &policies {
                let usable = policy.min_voltage.is_some_and(|mv| v >= mv - 1e-9);
                if !usable {
                    continue;
                }
                let e = energy
                    .iter()
                    .find(|r| r.emt == policy.emt && (r.voltage - v).abs() < 1e-9)
                    .map(|r| r.energy.total_pj());
                if let Some(e) = e {
                    if best.is_none_or(|(_, b)| e < b) {
                        best = Some((policy.emt, e));
                    }
                }
            }
            PolicyBand {
                voltage: v,
                best_emt: best.map(|(emt, _)| emt),
                energy_pj: best.map(|(_, e)| e),
                savings_vs_nominal: best.map(|(_, e)| 1.0 - e / baseline),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_energy::EnergyBreakdown;

    fn point(emt: EmtKind, v: f64, snr: f64) -> Fig4Point {
        Fig4Point {
            app: AppKind::Dwt,
            emt,
            voltage: v,
            mean_snr_db: snr,
            min_snr_db: snr,
            uncorrectable_rate: 0.0,
            corrected_rate: 0.0,
        }
    }

    fn energy_row(emt: EmtKind, v: f64, pj: f64) -> EnergyRow {
        let mut e = EnergyBreakdown::new();
        e.data_dynamic_pj = pj;
        EnergyRow {
            emt,
            voltage: v,
            energy: e,
            overhead_vs_none: 0.0,
        }
    }

    fn synthetic_inputs() -> (Vec<Fig4Point>, Vec<EnergyRow>) {
        // None passes at {0.85, 0.9}; DREAM down to 0.65; ECC down to 0.55.
        let grid = [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9];
        let mut fig4 = Vec::new();
        let mut energy = Vec::new();
        for &v in &grid {
            fig4.push(point(EmtKind::None, v, if v >= 0.85 { 80.0 } else { 40.0 }));
            fig4.push(point(
                EmtKind::Dream,
                v,
                if v >= 0.65 { 80.0 } else { 40.0 },
            ));
            fig4.push(point(
                EmtKind::EccSecDed,
                v,
                if v >= 0.55 { 80.0 } else { 40.0 },
            ));
            // Simple quadratic energies with EMT factors 1.0/1.34/1.55.
            let v2 = (v / 0.9) * (v / 0.9);
            energy.push(energy_row(EmtKind::None, v, 100.0 * v2));
            energy.push(energy_row(EmtKind::Dream, v, 134.0 * v2));
            energy.push(energy_row(EmtKind::EccSecDed, v, 155.0 * v2));
        }
        (fig4, energy)
    }

    #[test]
    fn reproduces_three_regimes() {
        let (fig4, energy) = synthetic_inputs();
        let policies = explore(AppKind::Dwt, 1.0, &fig4, &energy);
        let find = |emt: EmtKind| policies.iter().find(|p| p.emt == emt).unwrap();
        assert_eq!(find(EmtKind::None).min_voltage, Some(0.85));
        assert_eq!(find(EmtKind::Dream).min_voltage, Some(0.65));
        assert_eq!(find(EmtKind::EccSecDed).min_voltage, Some(0.55));
    }

    #[test]
    fn savings_match_hand_computation() {
        let (fig4, energy) = synthetic_inputs();
        let policies = explore(AppKind::Dwt, 1.0, &fig4, &energy);
        let none = policies.iter().find(|p| p.emt == EmtKind::None).unwrap();
        // 1 - (0.85/0.9)^2 = 0.1080...
        assert!((none.savings_vs_nominal.unwrap() - 0.108).abs() < 1e-3);
        let dream = policies.iter().find(|p| p.emt == EmtKind::Dream).unwrap();
        // 1 - 1.34*(0.65/0.9)^2 = 0.3010...
        assert!((dream.savings_vs_nominal.unwrap() - 0.301).abs() < 1e-3);
        let ecc = policies
            .iter()
            .find(|p| p.emt == EmtKind::EccSecDed)
            .unwrap();
        // 1 - 1.55*(0.55/0.9)^2 = 0.4212...
        assert!((ecc.savings_vs_nominal.unwrap() - 0.421).abs() < 1e-3);
    }

    #[test]
    fn mixed_policy_selects_cheapest_usable_emt() {
        let (fig4, energy) = synthetic_inputs();
        let bands = mixed_policy(AppKind::Dwt, 1.0, &fig4, &energy);
        let at = |v: f64| {
            bands
                .iter()
                .find(|b| (b.voltage - v).abs() < 1e-9)
                .copied()
                .unwrap()
        };
        // Near nominal everything passes; raw storage is cheapest.
        assert_eq!(at(0.9).best_emt, Some(EmtKind::None));
        assert_eq!(at(0.85).best_emt, Some(EmtKind::None));
        // Middle band: only the protected schemes qualify, DREAM is
        // cheaper than ECC (134 < 155 factor in the synthetic table).
        assert_eq!(at(0.75).best_emt, Some(EmtKind::Dream));
        assert_eq!(at(0.65).best_emt, Some(EmtKind::Dream));
        // Bottom band: ECC alone.
        assert_eq!(at(0.55).best_emt, Some(EmtKind::EccSecDed));
        // Below everything: no usable technique.
        assert_eq!(at(0.5).best_emt, None);
        assert_eq!(at(0.5).savings_vs_nominal, None);
        // Savings grow monotonically down the usable bands.
        let s85 = at(0.85).savings_vs_nominal.unwrap();
        let s65 = at(0.65).savings_vs_nominal.unwrap();
        let s55 = at(0.55).savings_vs_nominal.unwrap();
        assert!(s65 > s85);
        assert!(s55 > s65);
    }

    #[test]
    fn gaps_in_the_curve_stop_the_walk() {
        // A dip at 0.8 V must keep the policy at 0.85 V even if 0.75 V
        // looks fine again (no operating *range* through a bad region).
        let grid = [0.75, 0.8, 0.85, 0.9];
        let snrs = [80.0, 40.0, 80.0, 80.0];
        let fig4: Vec<Fig4Point> = grid
            .iter()
            .zip(&snrs)
            .map(|(&v, &s)| point(EmtKind::None, v, s))
            .collect();
        let energy: Vec<EnergyRow> = grid
            .iter()
            .map(|&v| energy_row(EmtKind::None, v, 100.0 * v * v))
            .collect();
        let policies = explore(AppKind::Dwt, 1.0, &fig4, &energy);
        assert_eq!(policies[0].min_voltage, Some(0.85));
    }
}
