//! Experiments E2–E4: Fig. 4 — SNR versus memory supply voltage under the
//! three protection schemes.

use dream_core::EmtKind;
use dream_dsp::{samples_to_f64, snr_db, AppKind, BiomedicalApp};
use dream_mem::{BerModel, FaultMap};

use crate::campaign::{
    banked_geometry, cap_snr, fault_seed, record_suite, reference_outputs, EmtMemory,
};
use crate::exec;

/// Width of the shared fault maps: covers the widest codeword of the EMT
/// set so one map serves every technique (§V).
const SHARED_MAP_WIDTH: u32 = 22;

/// Configuration of the Fig. 4 voltage sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig4Config {
    /// Input window length in samples.
    pub window: usize,
    /// Fault-map draws per (voltage) point — the paper uses 200 (§V).
    pub runs: usize,
    /// Supply-voltage grid (V).
    pub voltages: Vec<f64>,
    /// Techniques to sweep (Fig. 4a/b/c = None/DREAM/ECC).
    pub emts: Vec<EmtKind>,
    /// Applications to sweep.
    pub apps: Vec<AppKind>,
    /// BER-vs-voltage model.
    pub ber: BerModel,
    /// Base seed of the campaign.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            window: 1024,
            runs: 200,
            voltages: BerModel::paper_voltages(),
            emts: EmtKind::paper_set().to_vec(),
            apps: AppKind::all().to_vec(),
            ber: BerModel::date16(),
            seed: 0xF1641,
        }
    }
}

impl Fig4Config {
    /// A reduced sweep for tests and smoke runs.
    pub fn smoke() -> Self {
        Fig4Config {
            window: 512,
            runs: 8,
            voltages: vec![0.5, 0.6, 0.7, 0.8, 0.9],
            ..Default::default()
        }
    }
}

/// One point of one curve in Fig. 4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig4Point {
    /// Application under test.
    pub app: AppKind,
    /// Protection scheme.
    pub emt: EmtKind,
    /// Data-memory supply voltage (V).
    pub voltage: f64,
    /// Mean output SNR over the runs (dB, averaged in dB as the paper
    /// does).
    pub mean_snr_db: f64,
    /// Worst run (dB).
    pub min_snr_db: f64,
    /// Mean fraction of reads the decoder flagged uncorrectable.
    pub uncorrectable_rate: f64,
    /// Mean fraction of reads the decoder corrected.
    pub corrected_rate: f64,
}

/// Reproduces Fig. 4: for every voltage, draw `runs` random stuck-at maps
/// at the model BER, reuse **the same map** across all EMTs (§V: "all the
/// EMTs are tested reusing the same set of error locations/mappings"), run
/// every application, and average the per-run SNRs in dB.
pub fn run_fig4(cfg: &Fig4Config) -> Vec<Fig4Point> {
    let records = record_suite(cfg.window, usize::MAX);
    let apps: Vec<Box<dyn BiomedicalApp>> = cfg
        .apps
        .iter()
        .map(|&k| k.instantiate(cfg.window))
        .collect();
    // Geometry sized to the largest footprint, shared by all apps so one
    // fault map serves every application in a run.
    let max_words = apps.iter().map(|a| a.memory_words()).max().unwrap();
    let geometry = banked_geometry(max_words);
    // References are input-dependent only: compute once per (app, record),
    // shared read-only by every trial.
    let references: Vec<Vec<Vec<f64>>> = apps
        .iter()
        .map(|app| reference_outputs(&**app, &records))
        .collect();

    // One trial = one (voltage, run) pair: the fault map is drawn once and
    // reused across every EMT and application, exactly the paper's "same
    // set of error locations/mappings" methodology — and a ×(EMTs × apps)
    // saving on map generation over the historical per-cell loop.
    struct Trial {
        voltage_idx: usize,
        run: usize,
    }
    let trials: Vec<Trial> = (0..cfg.voltages.len())
        .flat_map(|voltage_idx| (0..cfg.runs).map(move |run| Trial { voltage_idx, run }))
        .collect();

    /// Per-trial observation of one (EMT, app) cell.
    struct Cell {
        snr_db: f64,
        uncorrectable: f64,
        corrected: f64,
    }
    // Worker arena: per-worker app instances, one reusable protected
    // memory per EMT — monomorphized over its codec via [`EmtMemory`], so
    // the technique dispatch happens once per app run, not once per
    // access — and the shared wide fault-map buffer.
    struct Arena {
        apps: Vec<Box<dyn BiomedicalApp>>,
        mems: Vec<EmtMemory>,
        map: FaultMap,
    }
    let scratch = || Arena {
        apps: cfg
            .apps
            .iter()
            .map(|&k| k.instantiate(cfg.window))
            .collect(),
        mems: cfg
            .emts
            .iter()
            .map(|&emt| EmtMemory::new(emt, geometry))
            .collect(),
        map: FaultMap::empty(geometry.words(), SHARED_MAP_WIDTH),
    };

    let results = exec::run_trials(&trials, scratch, |arena, t, _| {
        let ber = cfg.ber.ber(cfg.voltages[t.voltage_idx]);
        // Same seed across EMTs and apps => same fault map, as in the
        // paper; the wide map covers the widest codeword.
        let seed = fault_seed(cfg.seed, t.voltage_idx, t.run);
        arena.map.regenerate(ber, seed);
        let record = &records[t.run % records.len()];
        let mut cells = Vec::with_capacity(cfg.emts.len() * arena.apps.len());
        for mem in &mut arena.mems {
            for (ai, app) in arena.apps.iter().enumerate() {
                mem.reset_with_fault_map(&arena.map);
                let out = mem.run_app(&**app, &record.samples);
                let snr = cap_snr(snr_db(
                    &references[ai][t.run % records.len()],
                    &samples_to_f64(&out),
                ));
                let stats = mem.stats();
                let (uncorrectable, corrected) = if stats.reads > 0 {
                    (
                        stats.uncorrectable_reads as f64 / stats.reads as f64,
                        stats.corrected_reads as f64 / stats.reads as f64,
                    )
                } else {
                    (0.0, 0.0)
                };
                cells.push(Cell {
                    snr_db: snr,
                    uncorrectable,
                    corrected,
                });
            }
        }
        cells
    });

    // Deterministic merge: aggregate each (voltage, EMT, app) curve point
    // over its runs in ascending run order — the historical reduction
    // order, so the sums are bit-identical to the serial nested loops.
    let mut points = Vec::new();
    for (vi, &voltage) in cfg.voltages.iter().enumerate() {
        for (ei, &emt) in cfg.emts.iter().enumerate() {
            for (ai, &app_kind) in cfg.apps.iter().enumerate() {
                let cell_idx = ei * cfg.apps.len() + ai;
                let mut snr_sum = 0.0;
                let mut snr_min = f64::INFINITY;
                let mut uncorrectable = 0.0;
                let mut corrected = 0.0;
                for run in 0..cfg.runs {
                    let cell = &results[vi * cfg.runs + run][cell_idx];
                    snr_sum += cell.snr_db;
                    snr_min = snr_min.min(cell.snr_db);
                    uncorrectable += cell.uncorrectable;
                    corrected += cell.corrected;
                }
                let n = cfg.runs as f64;
                points.push(Fig4Point {
                    app: app_kind,
                    emt,
                    voltage,
                    mean_snr_db: snr_sum / n,
                    min_snr_db: snr_min,
                    uncorrectable_rate: uncorrectable / n,
                    corrected_rate: corrected / n,
                });
            }
        }
    }
    points
}

/// Looks up the curve of one (app, EMT) pair, sorted by voltage ascending.
pub fn curve(points: &[Fig4Point], app: AppKind, emt: EmtKind) -> Vec<Fig4Point> {
    let mut c: Vec<Fig4Point> = points
        .iter()
        .filter(|p| p.app == app && p.emt == emt)
        .copied()
        .collect();
    c.sort_by(|a, b| a.voltage.partial_cmp(&b.voltage).expect("finite voltages"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Config {
        Fig4Config {
            window: 512,
            runs: 4,
            voltages: vec![0.5, 0.7, 0.9],
            emts: EmtKind::paper_set().to_vec(),
            apps: vec![AppKind::Dwt],
            ber: BerModel::date16(),
            seed: 11,
        }
    }

    #[test]
    fn produces_full_grid() {
        let points = run_fig4(&tiny());
        assert_eq!(points.len(), 3 * 3);
    }

    #[test]
    fn snr_degrades_as_voltage_drops_unprotected() {
        let points = run_fig4(&tiny());
        let c = curve(&points, AppKind::Dwt, EmtKind::None);
        assert!(
            c.first().unwrap().mean_snr_db < c.last().unwrap().mean_snr_db,
            "0.5 V should be worse than 0.9 V: {:?}",
            c.iter().map(|p| p.mean_snr_db).collect::<Vec<_>>()
        );
    }

    #[test]
    fn protection_helps_at_mid_voltages() {
        let points = run_fig4(&tiny());
        let none = curve(&points, AppKind::Dwt, EmtKind::None);
        let dream = curve(&points, AppKind::Dwt, EmtKind::Dream);
        let ecc = curve(&points, AppKind::Dwt, EmtKind::EccSecDed);
        // At 0.7 V both protections should beat no protection.
        assert!(dream[1].mean_snr_db >= none[1].mean_snr_db);
        assert!(ecc[1].mean_snr_db >= none[1].mean_snr_db);
    }

    #[test]
    fn determinism() {
        let a = run_fig4(&tiny());
        let b = run_fig4(&tiny());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_snr_db, y.mean_snr_db);
        }
    }

    #[test]
    fn curve_sorts_by_voltage() {
        let points = run_fig4(&tiny());
        let c = curve(&points, AppKind::Dwt, EmtKind::Dream);
        assert!(c.windows(2).all(|w| w[0].voltage < w[1].voltage));
    }
}
