//! Experiments E2–E4: Fig. 4 — SNR versus memory supply voltage under the
//! three protection schemes.
//!
//! Since the scenario engine landed this module is a thin preset
//! constructor ([`Fig4Config::to_scenario`]) plus row-typed
//! post-processing ([`Fig4Point`], [`curve`]) over the engine's shared
//! [`crate::scenario::ScenarioOutcome`]; the sweep itself executes in
//! [`crate::scenario::engine`].

use dream_core::EmtKind;
use dream_dsp::AppKind;
use dream_ecg::Database;
use dream_mem::BerModel;

use crate::scenario::{
    registry, CampaignRunner, FaultSpec, Grid, Kind, OutcomeData, Scenario, SinkSpec,
};

/// Configuration of the Fig. 4 voltage sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig4Config {
    /// Input window length in samples.
    pub window: usize,
    /// Fault-map draws per (voltage) point — the paper uses 200 (§V).
    pub runs: usize,
    /// Supply-voltage grid (V).
    pub voltages: Vec<f64>,
    /// Techniques to sweep (Fig. 4a/b/c = None/DREAM/ECC).
    pub emts: Vec<EmtKind>,
    /// Applications to sweep.
    pub apps: Vec<AppKind>,
    /// BER-vs-voltage model.
    pub ber: BerModel,
    /// Base seed of the campaign.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            window: 1024,
            runs: 200,
            voltages: BerModel::paper_voltages(),
            emts: EmtKind::paper_set().to_vec(),
            apps: AppKind::all().to_vec(),
            ber: BerModel::date16(),
            seed: registry::FIG4_SEED,
        }
    }
}

impl Fig4Config {
    /// A reduced sweep for tests and smoke runs.
    pub fn smoke() -> Self {
        Fig4Config {
            window: 512,
            runs: 8,
            voltages: vec![0.5, 0.6, 0.7, 0.8, 0.9],
            ..Default::default()
        }
    }

    /// Compiles this configuration to its scenario spec — the same
    /// campaign `dream run fig4` executes.
    pub fn to_scenario(&self) -> Scenario {
        Scenario {
            name: "fig4".into(),
            title: String::new(),
            kind: Kind::SnrSweep,
            window: self.window,
            records: Database::SUITE_SIZE,
            trials: self.runs,
            apps: self.apps.clone(),
            emts: self.emts.clone(),
            grid: Grid::Voltage(self.voltages.clone()),
            fault: FaultSpec::from_model(&self.ber),
            fixed_voltage: BerModel::NOMINAL_VOLTAGE,
            noise_scale: 1.0,
            scrambler_key: None,
            tolerance_db: None,
            ber_slopes: Vec::new(),
            seed: self.seed,
            sink: SinkSpec::default(),
            point_offset: 0,
        }
    }
}

/// One point of one curve in Fig. 4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig4Point {
    /// Application under test.
    pub app: AppKind,
    /// Protection scheme.
    pub emt: EmtKind,
    /// Data-memory supply voltage (V).
    pub voltage: f64,
    /// Mean output SNR over the runs (dB, averaged in dB as the paper
    /// does).
    pub mean_snr_db: f64,
    /// Worst run (dB).
    pub min_snr_db: f64,
    /// Mean fraction of reads the decoder flagged uncorrectable.
    pub uncorrectable_rate: f64,
    /// Mean fraction of reads the decoder corrected.
    pub corrected_rate: f64,
}

/// Reproduces Fig. 4: for every voltage, draw `runs` random stuck-at maps
/// at the model BER, reuse **the same map** across all EMTs (§V: "all the
/// EMTs are tested reusing the same set of error locations/mappings"), run
/// every application, and average the per-run SNRs in dB.
///
/// # Panics
///
/// Panics if the configuration fails scenario validation (empty app or
/// EMT list, empty voltage grid, window below 256).
pub fn run_fig4(cfg: &Fig4Config) -> Vec<Fig4Point> {
    let outcome = CampaignRunner::new(cfg.to_scenario())
        .run_discarding()
        .expect("fig4 config compiles to a valid scenario");
    match outcome.data {
        OutcomeData::Fig4(points) => points,
        other => unreachable!("voltage SNR scenarios yield Fig. 4 points, got {other:?}"),
    }
}

/// Looks up the curve of one (app, EMT) pair, sorted by voltage ascending.
pub fn curve(points: &[Fig4Point], app: AppKind, emt: EmtKind) -> Vec<Fig4Point> {
    let mut c: Vec<Fig4Point> = points
        .iter()
        .filter(|p| p.app == app && p.emt == emt)
        .copied()
        .collect();
    c.sort_by(|a, b| a.voltage.partial_cmp(&b.voltage).expect("finite voltages"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Config {
        Fig4Config {
            window: 512,
            runs: 4,
            voltages: vec![0.5, 0.7, 0.9],
            emts: EmtKind::paper_set().to_vec(),
            apps: vec![AppKind::Dwt],
            ber: BerModel::date16(),
            seed: 11,
        }
    }

    #[test]
    fn produces_full_grid() {
        let points = run_fig4(&tiny());
        assert_eq!(points.len(), 3 * 3);
    }

    #[test]
    fn snr_degrades_as_voltage_drops_unprotected() {
        let points = run_fig4(&tiny());
        let c = curve(&points, AppKind::Dwt, EmtKind::None);
        assert!(
            c.first().unwrap().mean_snr_db < c.last().unwrap().mean_snr_db,
            "0.5 V should be worse than 0.9 V: {:?}",
            c.iter().map(|p| p.mean_snr_db).collect::<Vec<_>>()
        );
    }

    #[test]
    fn protection_helps_at_mid_voltages() {
        let points = run_fig4(&tiny());
        let none = curve(&points, AppKind::Dwt, EmtKind::None);
        let dream = curve(&points, AppKind::Dwt, EmtKind::Dream);
        let ecc = curve(&points, AppKind::Dwt, EmtKind::EccSecDed);
        // At 0.7 V both protections should beat no protection.
        assert!(dream[1].mean_snr_db >= none[1].mean_snr_db);
        assert!(ecc[1].mean_snr_db >= none[1].mean_snr_db);
    }

    #[test]
    fn determinism() {
        let a = run_fig4(&tiny());
        let b = run_fig4(&tiny());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_snr_db, y.mean_snr_db);
        }
    }

    #[test]
    fn curve_sorts_by_voltage() {
        let points = run_fig4(&tiny());
        let c = curve(&points, AppKind::Dwt, EmtKind::Dream);
        assert!(c.windows(2).all(|w| w[0].voltage < w[1].voltage));
    }

    #[test]
    fn default_config_matches_registry_preset() {
        let mut from_cfg = Fig4Config::default().to_scenario();
        let preset = registry::get("fig4", false).unwrap();
        from_cfg.title.clone_from(&preset.title);
        assert_eq!(from_cfg, preset);
    }
}
