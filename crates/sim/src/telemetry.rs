//! Process-wide counters of the batched executor's behaviour: how many
//! lanes campaigns dispatched, how many were evicted by divergence or
//! abandoned by the adaptive bail-out, and how often the clean-pass trace
//! cache was recorded and replayed.
//!
//! The counters exist so a perf trajectory entry can explain *why* a
//! batched run won or lost — a high eviction rate means the voltage was
//! deep in the faulty region and most lanes replayed scalar; a high
//! replay-per-trace ratio means the clean-pass reuse amortized well.
//!
//! Counting is relaxed-atomic and never participates in campaign output:
//! results are bit-identical whether or not anything reads these.

use std::sync::atomic::{AtomicU64, Ordering};

static LANES: AtomicU64 = AtomicU64::new(0);
static EVICTED: AtomicU64 = AtomicU64::new(0);
static BAILED: AtomicU64 = AtomicU64::new(0);
static REPLAYS: AtomicU64 = AtomicU64::new(0);
static TRACES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the batched executor's counters since the last
/// [`take`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchTelemetry {
    /// Lanes dispatched into batched passes (one lane = one trial riding
    /// one (EMT, app) clean pass).
    pub lanes: u64,
    /// Lanes evicted because their decoded word diverged from the clean
    /// word (each replays on the scalar path).
    pub evicted: u64,
    /// Lanes abandoned by the adaptive bail-out — they had not diverged,
    /// but too few lanes were left to amortize the plane passes.
    pub bailed: u64,
    /// Clean-pass trace replays (one per batched (group, EMT, app) pass).
    pub clean_replays: u64,
    /// Clean-pass traces recorded (one per (EMT, app, record) a batched
    /// campaign touched).
    pub traces_recorded: u64,
}

impl BatchTelemetry {
    /// Fraction of dispatched lanes evicted by divergence (0 when no
    /// lanes ran).
    pub fn eviction_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.evicted as f64 / self.lanes as f64
        }
    }

    /// Fraction of dispatched lanes abandoned by the bail-out (0 when no
    /// lanes ran).
    pub fn bailout_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.bailed as f64 / self.lanes as f64
        }
    }
}

/// Accounts one finished batched (group, EMT, app) pass.
pub(crate) fn record_batch_pass(lanes: usize, evicted: u32, bailed: u32) {
    LANES.fetch_add(lanes as u64, Ordering::Relaxed);
    EVICTED.fetch_add(u64::from(evicted), Ordering::Relaxed);
    BAILED.fetch_add(u64::from(bailed), Ordering::Relaxed);
    REPLAYS.fetch_add(1, Ordering::Relaxed);
}

/// Accounts one recorded clean-pass trace.
pub(crate) fn record_trace() {
    TRACES.fetch_add(1, Ordering::Relaxed);
}

/// Returns the counters accumulated since the previous call and resets
/// them to zero (process-wide — concurrent campaigns share one set).
pub fn take() -> BatchTelemetry {
    BatchTelemetry {
        lanes: LANES.swap(0, Ordering::Relaxed),
        evicted: EVICTED.swap(0, Ordering::Relaxed),
        bailed: BAILED.swap(0, Ordering::Relaxed),
        clean_replays: REPLAYS.swap(0, Ordering::Relaxed),
        traces_recorded: TRACES.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_drains_at_least_this_threads_contribution() {
        // The counters are process-wide and other tests run batched
        // campaigns concurrently, so only lower bounds are stable here.
        let _ = take();
        record_batch_pass(64, 8, 4);
        record_batch_pass(16, 0, 0);
        record_trace();
        let t = take();
        assert!(t.lanes >= 80, "{t:?}");
        assert!(t.evicted >= 8, "{t:?}");
        assert!(t.bailed >= 4, "{t:?}");
        assert!(t.clean_replays >= 2, "{t:?}");
        assert!(t.traces_recorded >= 1, "{t:?}");
    }

    #[test]
    fn rates_divide_safely() {
        let t = BatchTelemetry {
            lanes: 80,
            evicted: 8,
            bailed: 4,
            clean_replays: 2,
            traces_recorded: 1,
        };
        assert!((t.eviction_rate() - 0.1).abs() < 1e-12);
        assert!((t.bailout_rate() - 0.05).abs() < 1e-12);
        assert_eq!(BatchTelemetry::default().eviction_rate(), 0.0);
        assert_eq!(BatchTelemetry::default().bailout_rate(), 0.0);
    }
}
