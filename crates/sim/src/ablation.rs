//! Ablation studies on the design choices `DESIGN.md` calls out: how much
//! each modelling decision contributes to the headline results.
//!
//! The four study kernels below execute on [`crate::exec::run_trials`];
//! the scenario engine's `ablation` family (`dream run ablation`) bundles
//! them into one streamed row set.

use dream_core::{Dream, EmtKind, EnergyModelBundle, NoProtection, ProtectedMemory};
use dream_dsp::{samples_to_f64, snr_db, AppKind};
use dream_ecg::Database;
use dream_mem::{AddressScrambler, BerModel, FaultMap};
use dream_soc::{Soc, SocConfig};

use crate::campaign::{banked_geometry, cap_snr, ProtectedStorage};
use crate::exec;

/// Distribution of DREAM's per-word protection over real signal data:
/// `histogram[k]` counts samples whose top `k` bits are rebuildable
/// (`k = run + 1`, 2..=16).
///
/// This is the §IV premise quantified — "most of the samples produced by
/// the ADC contain series of bits with the same value on the MSB
/// positions" — and the knob behind every DREAM result: shift the ADC
/// gain and this histogram (hence Fig. 4b) moves.
pub fn protected_bits_histogram(window: usize) -> [u64; 17] {
    let mut histogram = [0u64; 17];
    for record in Database::date16_suite(window) {
        for &s in &record.samples {
            histogram[Dream::protected_bits(s) as usize] += 1;
        }
    }
    histogram
}

/// Mean protected bits of a histogram from
/// [`protected_bits_histogram`].
pub fn mean_protected_bits(histogram: &[u64; 17]) -> f64 {
    let total: u64 = histogram.iter().sum();
    let weighted: u64 = histogram
        .iter()
        .enumerate()
        .map(|(k, &c)| k as u64 * c)
        .sum();
    weighted as f64 / total as f64
}

/// Result of the address-scrambling ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct ScramblerAblation {
    /// SNR of repeated runs on one physical fault map *without*
    /// re-scrambling (every run hits the same logical words).
    pub fixed_mapping_snrs: Vec<f64>,
    /// SNR of the same runs with a fresh scrambler key per run (the §V
    /// "small logic to randomize the mapping").
    pub scrambled_snrs: Vec<f64>,
}

impl ScramblerAblation {
    /// Sample standard deviation of a series.
    fn std(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
    }

    /// Spread of outcomes without re-scrambling (should be ~0: the same
    /// cells fail every run).
    pub fn fixed_mapping_std(&self) -> f64 {
        Self::std(&self.fixed_mapping_snrs)
    }

    /// Spread with per-run scrambling (should be substantial: each run is
    /// a fresh draw of fault *locations*, which is what lets one die
    /// emulate the paper's 200-map campaign).
    pub fn scrambled_std(&self) -> f64 {
        Self::std(&self.scrambled_snrs)
    }
}

/// Runs the scrambling ablation: one physical die (fixed fault map), many
/// runs, with and without logical-address re-randomization.
pub fn scrambler_ablation(window: usize, voltage: f64, runs: usize) -> ScramblerAblation {
    let app = AppKind::Dwt.instantiate(window);
    let geometry = banked_geometry(app.memory_words());
    let words = geometry.words();
    let ber = BerModel::date16().ber(voltage);
    let record = Database::record(100, window);
    let reference = app.run_reference(&record.samples);
    // One physical die.
    let physical = FaultMap::generate(words, 16, ber, 0xD1E);
    // Trials: `runs` fixed-mapping runs followed by `runs` re-scrambled
    // ones; each is one descriptor for the campaign executor.
    let trials: Vec<Option<u64>> = (0..runs)
        .map(|_| None)
        .chain((0..runs).map(|r| Some(0xA5A5 + r as u64)))
        .collect();
    let snrs = exec::run_trials(
        &trials,
        || (),
        |(), &scramble_key, _| {
            let mut mem =
                ProtectedMemory::with_codec_and_fault_map(NoProtection::new(), geometry, &physical);
            if let Some(key) = scramble_key {
                mem.set_scrambler(AddressScrambler::new(words, key));
            }
            let out = {
                let mut storage = ProtectedStorage::new(&mut mem);
                app.run(&record.samples, &mut storage)
            };
            cap_snr(snr_db(&reference, &samples_to_f64(&out)))
        },
    );
    ScramblerAblation {
        fixed_mapping_snrs: snrs[..runs].to_vec(),
        scrambled_snrs: snrs[runs..].to_vec(),
    }
}

/// One point of the BER-model sensitivity sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BerSensitivityPoint {
    /// BER slope (decades per volt) used for this curve.
    pub slope: f64,
    /// Supply voltage (V).
    pub voltage: f64,
    /// Mean DWT SNR under DREAM (dB).
    pub mean_snr_db: f64,
}

/// Sensitivity of the Fig. 4b DWT curve to the one free parameter of the
/// substituted BER model (its slope): how far do the usable-voltage
/// thresholds move per decade-per-volt of slope error?
///
/// Sweeps the paper's voltage grid under the date16 calibration; the
/// scenario engine's `ablation` family uses [`ber_sensitivity_grid`] to
/// honor a spec's own grid and calibration.
pub fn ber_sensitivity(window: usize, runs: usize, slopes: &[f64]) -> Vec<BerSensitivityPoint> {
    ber_sensitivity_grid(
        window,
        runs,
        slopes,
        &BerModel::paper_voltages(),
        &BerModel::date16(),
    )
}

/// [`ber_sensitivity`] over an explicit voltage grid and base calibration:
/// each curve keeps `base`'s nominal point and substitutes its slope.
pub fn ber_sensitivity_grid(
    window: usize,
    runs: usize,
    slopes: &[f64],
    voltages: &[f64],
    base: &BerModel,
) -> Vec<BerSensitivityPoint> {
    let app = AppKind::Dwt.instantiate(window);
    let geometry = banked_geometry(app.memory_words());
    let words = geometry.words();
    let record = Database::record(100, window);
    let reference = app.run_reference(&record.samples);
    let (nominal_v, log10_at_nominal) = (base.nominal_v(), base.log10_ber_at_nominal());
    // Flattened (slope, voltage, run) sweep in historical nested-loop
    // order, so the per-point averages below reduce in the same sequence.
    struct Trial {
        slope: f64,
        voltage: f64,
        run: usize,
    }
    let trials: Vec<Trial> = slopes
        .iter()
        .flat_map(|&slope| {
            voltages.iter().flat_map(move |&voltage| {
                (0..runs).map(move |run| Trial {
                    slope,
                    voltage,
                    run,
                })
            })
        })
        .collect();
    // Worker arena: a reusable DREAM memory and wide fault-map buffer.
    let scratch = || {
        (
            ProtectedMemory::with_codec(Dream::new(), geometry),
            FaultMap::empty(words, 22),
        )
    };
    let snrs = exec::run_trials(&trials, scratch, |(mem, map), t, _| {
        let ber = BerModel::new(nominal_v, log10_at_nominal, t.slope).ber(t.voltage);
        map.regenerate(ber, 0xBE5 + t.run as u64);
        mem.reset_with_fault_map(map);
        let out = {
            let mut storage = ProtectedStorage::new(mem);
            app.run(&record.samples, &mut storage)
        };
        cap_snr(snr_db(&reference, &samples_to_f64(&out)))
    });
    let mut points = Vec::new();
    for (si, &slope) in slopes.iter().enumerate() {
        for (vi, &voltage) in voltages.iter().enumerate() {
            let base = (si * voltages.len() + vi) * runs;
            let sum: f64 = snrs[base..base + runs].iter().sum();
            points.push(BerSensitivityPoint {
                slope,
                voltage,
                mean_snr_db: sum / runs as f64,
            });
        }
    }
    points
}

/// DREAM's energy overhead with the mask memory pinned at nominal (the
/// paper's design) versus letting it track the scaled data rail — the
/// design choice that dominates DREAM's low-voltage overhead.
///
/// Returns `(voltage, overhead_pinned, overhead_tracking)` triples against
/// the unprotected baseline.
pub fn mask_supply_ablation(window: usize) -> Vec<(f64, f64, f64)> {
    let record = Database::record(100, window);
    let app = AppKind::Dwt.instantiate(window);
    let stats_for = |emt: EmtKind| {
        let mut soc = Soc::new(SocConfig::inyu(), emt, None);
        soc.run_app(&*app, &record.samples)
    };
    let none_run = stats_for(EmtKind::None);
    let dream_run = stats_for(EmtKind::Dream);
    let config = SocConfig::inyu();
    let words = config.geometry.words();
    BerModel::paper_voltages()
        .into_iter()
        .map(|v| {
            let pinned = EnergyModelBundle::date16();
            let tracking = EnergyModelBundle {
                side_supply_v: v,
                ..EnergyModelBundle::date16()
            };
            let base = pinned
                .run_energy(
                    &EmtKind::None.codec(),
                    &none_run.stats,
                    words,
                    v,
                    config.seconds(none_run.cycles),
                )
                .total_pj();
            let over = |bundle: &EnergyModelBundle| {
                bundle
                    .run_energy(
                        &EmtKind::Dream.codec(),
                        &dream_run.stats,
                        words,
                        v,
                        config.seconds(dream_run.cycles),
                    )
                    .total_pj()
                    / base
                    - 1.0
            };
            (v, over(&pinned), over(&tracking))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_covers_all_samples() {
        let h = protected_bits_histogram(256);
        let total: u64 = h.iter().sum();
        assert_eq!(total, (Database::SUITE_SIZE * 256) as u64);
        // No sample has fewer than 2 protected bits (sign + guard).
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 0);
        let mean = mean_protected_bits(&h);
        assert!((2.0..=16.0).contains(&mean));
    }

    #[test]
    fn scrambling_restores_run_to_run_diversity() {
        let ablation = scrambler_ablation(512, 0.55, 6);
        assert!(
            ablation.fixed_mapping_std() < 1e-9,
            "without re-scrambling every run must be identical"
        );
        assert!(
            ablation.scrambled_std() > ablation.fixed_mapping_std(),
            "scrambling should diversify outcomes: {:?}",
            ablation.scrambled_snrs
        );
    }

    #[test]
    fn steeper_ber_slope_degrades_low_voltage_snr() {
        let points = ber_sensitivity(512, 3, &[10.0, 16.0]);
        let at = |slope: f64, v: f64| {
            points
                .iter()
                .find(|p| p.slope == slope && (p.voltage - v).abs() < 1e-9)
                .unwrap()
                .mean_snr_db
        };
        assert!(at(10.0, 0.55) > at(16.0, 0.55));
        // At nominal both slopes are fault-free.
        assert!((at(10.0, 0.9) - at(16.0, 0.9)).abs() < 1.0);
    }

    #[test]
    fn tracking_mask_supply_cuts_low_voltage_overhead() {
        let rows = mask_supply_ablation(512);
        for (v, pinned, tracking) in rows {
            assert!(
                tracking <= pinned + 1e-9,
                "tracking mask rail cannot cost more ({v} V: {tracking} vs {pinned})"
            );
            if v < 0.89 {
                assert!(tracking < pinned, "at {v} V tracking must be cheaper");
            }
        }
    }
}
