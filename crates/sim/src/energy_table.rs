//! Experiments E5, E6, E8: the §VI-B energy and area analysis.
//!
//! [`run_energy_table`] is the pricing kernel behind the scenario
//! engine's `energy-sweep` family (`dream run energy`); this module also
//! keeps the row-typed post-processing ([`average_overhead`],
//! [`area_table`], [`ecc_vs_dream_area`]) the summaries consume.

use dream_core::{EmtCodec, EmtKind, EnergyModelBundle};
use dream_dsp::AppKind;
use dream_ecg::Database;
use dream_energy::EnergyBreakdown;
use dream_mem::BerModel;
use dream_soc::{Soc, SocConfig};

use crate::exec;

/// One row of the energy table: one EMT at one supply voltage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyRow {
    /// Protection scheme.
    pub emt: EmtKind,
    /// Data-memory supply voltage (V).
    pub voltage: f64,
    /// Energy of one application run.
    pub energy: EnergyBreakdown,
    /// Fractional overhead versus no protection at the same voltage.
    pub overhead_vs_none: f64,
}

/// Configuration of the energy analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyConfig {
    /// Application whose access pattern prices the table (the overheads
    /// are almost workload-independent because every EMT sees the same
    /// access stream; DWT is the §VI-C example).
    pub app: AppKind,
    /// Input window length.
    pub window: usize,
    /// Voltage grid.
    pub voltages: Vec<f64>,
    /// Techniques to compare.
    pub emts: Vec<EmtKind>,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            app: AppKind::Dwt,
            window: 1024,
            voltages: BerModel::paper_voltages(),
            emts: EmtKind::paper_set().to_vec(),
        }
    }
}

/// Reproduces the §VI-B energy comparison.
///
/// Access counts and cycle counts do not depend on fault injection (the
/// application executes the same loads and stores either way), so a single
/// fault-free SoC run per EMT provides the statistics, which the energy
/// model then prices at every voltage.
pub fn run_energy_table(cfg: &EnergyConfig) -> Vec<EnergyRow> {
    let record = Database::record(100, cfg.window);
    let app = cfg.app.instantiate(cfg.window);
    let bundle = EnergyModelBundle::date16();
    // One run per EMT captures (reads, writes, cycles); the EMTs are
    // independent, so they run as one small parallel campaign.
    let runs: Vec<(EmtKind, dream_soc::SocRun)> = exec::run_trials(
        &cfg.emts,
        || (),
        |(), &emt, _| {
            let mut soc = Soc::new(SocConfig::inyu(), emt, None);
            let run = soc.run_app(&*app, &record.samples);
            (emt, run)
        },
    );
    let mut rows = Vec::new();
    for &voltage in &cfg.voltages {
        // Baseline at this voltage: the unprotected memory.
        let baseline = price(EmtKind::None, &runs, &bundle, voltage);
        for &emt in &cfg.emts {
            let energy = price(emt, &runs, &bundle, voltage);
            rows.push(EnergyRow {
                emt,
                voltage,
                energy,
                overhead_vs_none: energy.overhead_vs(&baseline),
            });
        }
    }
    rows
}

fn price(
    emt: EmtKind,
    runs: &[(EmtKind, dream_soc::SocRun)],
    bundle: &EnergyModelBundle,
    voltage: f64,
) -> EnergyBreakdown {
    let (_, run) = runs.iter().find(|(k, _)| *k == emt).expect("EMT was swept");
    let soc_cfg = SocConfig::inyu();
    bundle.run_energy(
        &emt.codec(),
        &run.stats,
        soc_cfg.geometry.words(),
        voltage,
        soc_cfg.seconds(run.cycles),
    )
}

/// Sweep-averaged overhead of one EMT (the paper's "overall energy
/// overhead is only 34 %" style of number).
pub fn average_overhead(rows: &[EnergyRow], emt: EmtKind) -> f64 {
    let xs: Vec<f64> = rows
        .iter()
        .filter(|r| r.emt == emt)
        .map(|r| r.overhead_vs_none)
        .collect();
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// One row of the codec area table (E6).
#[derive(Clone, Debug, PartialEq)]
pub struct AreaRow {
    /// Protection scheme.
    pub emt: EmtKind,
    /// Encoder area in gate equivalents.
    pub encoder_ge: f64,
    /// Decoder area in gate equivalents.
    pub decoder_ge: f64,
    /// Side + in-array redundancy bits per word (Formula 2 family).
    pub extra_bits: u32,
}

/// Reproduces the §VI-B area comparison from the codec netlists.
pub fn area_table(emts: &[EmtKind]) -> Vec<AreaRow> {
    emts.iter()
        .map(|&emt| {
            let codec = emt.codec();
            AreaRow {
                emt,
                encoder_ge: codec.encoder_netlist().area_ge(),
                decoder_ge: codec.decoder_netlist().area_ge(),
                extra_bits: codec.code_width() - 16 + codec.side_bits(),
            }
        })
        .collect()
}

/// ECC-vs-DREAM area overheads `(encoder, decoder)` as fractions — the
/// paper reports (0.28, 1.20).
pub fn ecc_vs_dream_area(rows: &[AreaRow]) -> (f64, f64) {
    let find = |emt: EmtKind| rows.iter().find(|r| r.emt == emt).expect("row exists");
    let ecc = find(EmtKind::EccSecDed);
    let dream = find(EmtKind::Dream);
    (
        ecc.encoder_ge / dream.encoder_ge - 1.0,
        ecc.decoder_ge / dream.decoder_ge - 1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EnergyConfig {
        EnergyConfig {
            window: 512,
            voltages: vec![0.5, 0.7, 0.9],
            ..Default::default()
        }
    }

    #[test]
    fn dream_cheaper_than_ecc_on_average() {
        // The paper's headline: DREAM's overhead (≈34 %) undercuts ECC's
        // (≈55 %) by ~21 points.
        let rows = run_energy_table(&small());
        let dream = average_overhead(&rows, EmtKind::Dream);
        let ecc = average_overhead(&rows, EmtKind::EccSecDed);
        assert!(dream < ecc, "DREAM {dream:.2} vs ECC {ecc:.2}");
        assert!(
            (0.10..0.40).contains(&(ecc - dream)),
            "gap {:.2} should be in the paper's ballpark (~0.21)",
            ecc - dream
        );
    }

    #[test]
    fn none_has_zero_overhead() {
        let rows = run_energy_table(&small());
        for r in rows.iter().filter(|r| r.emt == EmtKind::None) {
            assert!(r.overhead_vs_none.abs() < 1e-12);
        }
    }

    #[test]
    fn energy_decreases_with_voltage() {
        let rows = run_energy_table(&small());
        for emt in EmtKind::paper_set() {
            let mut es: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.emt == emt)
                .map(|r| (r.voltage, r.energy.total_pj()))
                .collect();
            es.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            assert!(es.windows(2).all(|w| w[0].1 < w[1].1), "{emt}: {es:?}");
        }
    }

    #[test]
    fn area_ratios_match_paper_ballpark() {
        let rows = area_table(&EmtKind::paper_set());
        let (enc, dec) = ecc_vs_dream_area(&rows);
        assert!((0.1..0.6).contains(&enc), "encoder overhead {enc:.2}");
        assert!((0.9..1.5).contains(&dec), "decoder overhead {dec:.2}");
    }

    #[test]
    fn extra_bits_match_formula_2() {
        let rows = area_table(&EmtKind::paper_set());
        let bits = |emt: EmtKind| rows.iter().find(|r| r.emt == emt).unwrap().extra_bits;
        assert_eq!(bits(EmtKind::None), 0);
        assert_eq!(bits(EmtKind::Dream), 5);
        assert_eq!(bits(EmtKind::EccSecDed), 6);
    }
}
