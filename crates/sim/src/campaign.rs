//! Shared campaign plumbing: seeds, storage adapters, SNR conventions,
//! and the geometry/record-suite selection every figure runner shares.

use dream_core::{
    AccessStats, AnyCodec, Dream, EccSecDed, EmtCodec, EmtKind, EvenParity, NoProtection,
    ProtectedMemory, TrialBatch,
};
use dream_dsp::{BiomedicalApp, WordStorage};
use dream_ecg::{Database, Record};
use dream_mem::{BatchFaultPlanes, FaultMap, MemGeometry};

use crate::exec;

/// Maximum SNR reported by the harness (dB). Runs whose output matches the
/// reference exactly (possible for the delineation app, whose fiducial
/// positions are integers) would otherwise be `+inf`; figures need a finite
/// ceiling, and 100 dB is above every fixed-point quantization ceiling the
/// applications exhibit.
pub const SNR_CAP_DB: f64 = 100.0;

/// Clamps an SNR to the reporting range (also flooring `-inf` for
/// all-wrong outputs so averages stay finite).
pub fn cap_snr(snr_db: f64) -> f64 {
    snr_db.clamp(-20.0, SNR_CAP_DB)
}

/// Deterministic per-(point, run) seed: every experiment derives its fault
/// maps from this, so re-running any figure reproduces identical numbers
/// and all EMTs at a given (point, run) share one fault map, as the
/// paper's methodology requires (§V).
pub fn fault_seed(base: u64, point: usize, run: usize) -> u64 {
    splitmix64(
        base ^ (point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (run as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Smallest 16-bank geometry that fits `words` (the characterizations do
/// not need the full 32 kB array; a right-sized one keeps campaigns fast).
///
/// All four figure runners derive their memory shapes from this one
/// helper, so the banked layout is decided in exactly one place.
pub fn banked_geometry(words: usize) -> MemGeometry {
    let banks = 16;
    MemGeometry::new(words.div_ceil(banks) * banks, 16, banks)
}

/// The record suite a campaign averages over: the standard
/// [`Database::date16_suite`] truncated to at most `max_records` entries.
pub fn record_suite(window: usize, max_records: usize) -> Vec<Record> {
    let mut suite = Database::date16_suite(window);
    suite.truncate(max_records);
    suite
}

/// [`record_suite`] with the acquisition-noise amplitudes scaled by
/// `noise_scale` (1.0 reproduces the standard suite bit for bit — the
/// scenario engine's noise-sweep axis).
pub fn record_suite_with_noise(window: usize, max_records: usize, noise_scale: f64) -> Vec<Record> {
    let model = dream_ecg::NoiseModel::date16().scaled(noise_scale);
    let mut suite = Database::date16_suite_with_noise(window, &model);
    suite.truncate(max_records);
    suite
}

/// Double-precision reference outputs (`x_theo` of Formula 1) of `app`
/// over `records`, computed once per campaign — in parallel across
/// records — and then shared read-only by every trial.
pub fn reference_outputs(app: &dyn BiomedicalApp, records: &[Record]) -> Vec<Vec<f64>> {
    exec::run_trials(
        records,
        || (),
        |(), record, _| app.run_reference(&record.samples),
    )
}

/// Adapter exposing a [`ProtectedMemory`] as application storage, without
/// the tracing overhead of `dream-soc`'s ports — the SNR experiments only
/// need values, not cycle counts.
///
/// Generic over the memory's codec (defaulting to the [`AnyCodec`]
/// facade): wrapping a monomorphized memory keeps the whole per-access
/// path free of enum dispatch behind the one unavoidable `dyn
/// WordStorage` call the applications make.
pub struct ProtectedStorage<'a, C: EmtCodec = AnyCodec> {
    mem: &'a mut ProtectedMemory<C>,
}

impl<'a, C: EmtCodec> ProtectedStorage<'a, C> {
    /// Wraps a protected memory.
    pub fn new(mem: &'a mut ProtectedMemory<C>) -> Self {
        ProtectedStorage { mem }
    }
}

impl<C: EmtCodec> WordStorage for ProtectedStorage<'_, C> {
    fn len(&self) -> usize {
        self.mem.words()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.mem.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.mem.write(addr, value)
    }

    fn write_block(&mut self, base: usize, data: &[i16]) {
        self.mem.write_block(base, data)
    }

    fn read_block(&mut self, base: usize, out: &mut [i16]) {
        self.mem.read_block(base, out)
    }
}

/// Adapter exposing a clean [`ProtectedMemory`] plus per-trial fault
/// planes as application storage for a *batched* pass: reads go through
/// [`ProtectedMemory::read_batch`] (decoding every lane and evicting
/// divergent trials), writes through the shared clean write. Block
/// accesses use the per-word `WordStorage` defaults, which produce
/// statistics identical to `ProtectedMemory`'s own block paths.
pub struct BatchProtectedStorage<'a, C: EmtCodec = AnyCodec> {
    mem: &'a mut ProtectedMemory<C>,
    faults: &'a BatchFaultPlanes,
    batch: &'a mut TrialBatch,
}

impl<'a, C: EmtCodec> BatchProtectedStorage<'a, C> {
    /// Wraps a clean memory, the batch's fault planes, and its lane state.
    pub fn new(
        mem: &'a mut ProtectedMemory<C>,
        faults: &'a BatchFaultPlanes,
        batch: &'a mut TrialBatch,
    ) -> Self {
        BatchProtectedStorage { mem, faults, batch }
    }
}

impl<C: EmtCodec> WordStorage for BatchProtectedStorage<'_, C> {
    fn len(&self) -> usize {
        self.mem.words()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.mem.read_batch(addr, self.faults, self.batch)
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.mem.write_batch(addr, value)
    }
}

/// A protected memory monomorphized per technique: one enum dispatch when
/// a trial *starts an app run*, zero dispatch per access — the arena type
/// the voltage-sweep campaigns hold one of per EMT.
#[allow(missing_docs)]
pub enum EmtMemory {
    None(ProtectedMemory<NoProtection>),
    Parity(ProtectedMemory<EvenParity>),
    Dream(ProtectedMemory<Dream>),
    Ecc(ProtectedMemory<EccSecDed>),
}

impl EmtMemory {
    /// Builds the fault-free monomorphized memory for `kind`.
    pub fn new(kind: EmtKind, geometry: MemGeometry) -> Self {
        match kind {
            EmtKind::None => {
                EmtMemory::None(ProtectedMemory::with_codec(NoProtection::new(), geometry))
            }
            EmtKind::Parity => {
                EmtMemory::Parity(ProtectedMemory::with_codec(EvenParity::new(), geometry))
            }
            EmtKind::Dream => EmtMemory::Dream(ProtectedMemory::with_codec(Dream::new(), geometry)),
            EmtKind::EccSecDed => {
                EmtMemory::Ecc(ProtectedMemory::with_codec(EccSecDed::new(), geometry))
            }
        }
    }

    /// Re-arms for a fresh trial (see
    /// [`ProtectedMemory::reset_with_fault_map`]).
    pub fn reset_with_fault_map(&mut self, map: &FaultMap) {
        match self {
            EmtMemory::None(m) => m.reset_with_fault_map(map),
            EmtMemory::Parity(m) => m.reset_with_fault_map(map),
            EmtMemory::Dream(m) => m.reset_with_fault_map(map),
            EmtMemory::Ecc(m) => m.reset_with_fault_map(map),
        }
    }

    /// Installs a logical→physical address scrambler (the §V randomized
    /// mapping); [`EmtMemory::reset_with_fault_map`] restores identity, so
    /// call this after the per-trial reset.
    pub fn set_scrambler(&mut self, scrambler: dream_mem::AddressScrambler) {
        match self {
            EmtMemory::None(m) => m.set_scrambler(scrambler),
            EmtMemory::Parity(m) => m.set_scrambler(scrambler),
            EmtMemory::Dream(m) => m.set_scrambler(scrambler),
            EmtMemory::Ecc(m) => m.set_scrambler(scrambler),
        }
    }

    /// Access statistics of the last run.
    pub fn stats(&self) -> AccessStats {
        match self {
            EmtMemory::None(m) => m.stats(),
            EmtMemory::Parity(m) => m.stats(),
            EmtMemory::Dream(m) => m.stats(),
            EmtMemory::Ecc(m) => m.stats(),
        }
    }

    /// Runs `app` with all buffers in this memory — the single dispatch
    /// point behind which every access is monomorphized.
    pub fn run_app(&mut self, app: &dyn BiomedicalApp, input: &[i16]) -> Vec<i16> {
        match self {
            EmtMemory::None(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Parity(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Dream(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Ecc(m) => app.run(input, &mut ProtectedStorage::new(m)),
        }
    }

    /// [`EmtMemory::run_app`] for a batched pass: this memory plays the
    /// clean trial, `faults` carries one lane per batched trial, and
    /// `batch` tracks divergence and per-lane statistics deltas. The
    /// returned output is the clean pass's — by the divergence rule it is
    /// also every surviving lane's output.
    pub fn run_app_batch(
        &mut self,
        app: &dyn BiomedicalApp,
        input: &[i16],
        faults: &BatchFaultPlanes,
        batch: &mut TrialBatch,
    ) -> Vec<i16> {
        match self {
            EmtMemory::None(m) => app.run(input, &mut BatchProtectedStorage::new(m, faults, batch)),
            EmtMemory::Parity(m) => {
                app.run(input, &mut BatchProtectedStorage::new(m, faults, batch))
            }
            EmtMemory::Dream(m) => {
                app.run(input, &mut BatchProtectedStorage::new(m, faults, batch))
            }
            EmtMemory::Ecc(m) => app.run(input, &mut BatchProtectedStorage::new(m, faults, batch)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_core::EmtKind;
    use dream_mem::MemGeometry;

    #[test]
    fn seeds_are_distinct_across_points_and_runs() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..20 {
            for r in 0..50 {
                assert!(seen.insert(fault_seed(1, p, r)));
            }
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(fault_seed(7, 3, 9), fault_seed(7, 3, 9));
        assert_ne!(fault_seed(7, 3, 9), fault_seed(8, 3, 9));
    }

    #[test]
    fn cap_bounds_both_ends() {
        assert_eq!(cap_snr(f64::INFINITY), SNR_CAP_DB);
        assert_eq!(cap_snr(f64::NEG_INFINITY), -20.0);
        assert_eq!(cap_snr(42.0), 42.0);
    }

    #[test]
    fn banked_geometry_rounds_up_to_full_banks() {
        let g = banked_geometry(100);
        assert_eq!(g.words(), 112); // next multiple of 16
        assert_eq!(g.words() % 16, 0);
        assert_eq!(banked_geometry(160).words(), 160);
    }

    #[test]
    fn record_suite_truncates() {
        assert_eq!(record_suite(256, 3).len(), 3);
        assert_eq!(
            record_suite(256, usize::MAX).len(),
            dream_ecg::Database::SUITE_SIZE
        );
    }

    #[test]
    fn unit_noise_scale_matches_standard_suite() {
        assert_eq!(record_suite_with_noise(256, 3, 1.0), record_suite(256, 3));
        assert_ne!(
            record_suite_with_noise(256, 3, 4.0),
            record_suite(256, 3),
            "a 4x noise floor must perturb the quantized samples"
        );
    }

    #[test]
    fn reference_outputs_match_direct_computation() {
        let records = record_suite(256, 2);
        let app = dream_dsp::AppKind::Dwt.instantiate(256);
        let refs = reference_outputs(&*app, &records);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], app.run_reference(&records[0].samples));
        assert_eq!(refs[1], app.run_reference(&records[1].samples));
    }

    #[test]
    fn storage_adapter_round_trips() {
        let mut mem = ProtectedMemory::new(EmtKind::Dream, MemGeometry::new(32, 16, 1));
        let mut s = ProtectedStorage::new(&mut mem);
        s.write(3, -99);
        assert_eq!(s.read(3), -99);
        assert_eq!(s.len(), 32);
        s.write_block(10, &[7, -8, 9]);
        let mut out = vec![0i16; 3];
        s.read_block(10, &mut out);
        assert_eq!(out, vec![7, -8, 9]);
    }

    #[test]
    fn emt_memory_matches_facade_memory() {
        // The monomorphized arena wrapper must be observationally
        // identical to the AnyCodec facade on the same fault map.
        let app = dream_dsp::AppKind::Dwt.instantiate(256);
        let geometry = banked_geometry(app.memory_words());
        let map = dream_mem::FaultMap::generate(geometry.words(), 22, 0.003, 5);
        let record: Vec<i16> = (0..256).map(|i| (i * 97 - 11_000) as i16).collect();
        for kind in EmtKind::all() {
            let mut typed = EmtMemory::new(kind, geometry);
            typed.reset_with_fault_map(&map);
            let typed_out = typed.run_app(&*app, &record);
            let mut facade = ProtectedMemory::with_fault_map(kind, geometry, &map);
            let facade_out = {
                let mut storage = ProtectedStorage::new(&mut facade);
                app.run(&record, &mut storage)
            };
            assert_eq!(typed_out, facade_out, "{kind}");
            assert_eq!(typed.stats(), facade.stats(), "{kind}");
        }
    }
}
