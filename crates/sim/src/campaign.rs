//! Shared campaign plumbing: seeds, storage adapters, SNR conventions,
//! and the geometry/record-suite selection every figure runner shares.

use dream_core::{
    AccessStats, AnyCodec, DecodeOutcome, Dream, EccSecDed, EmtCodec, EmtKind, EvenParity,
    NoProtection, ProtectedMemory, TrialBatch,
};
use dream_dsp::{BiomedicalApp, WordStorage};
use dream_ecg::{Database, Record};
use dream_mem::{BatchFaultPlanes, FaultMap, MemGeometry};

use crate::exec;

/// Maximum SNR reported by the harness (dB). Runs whose output matches the
/// reference exactly (possible for the delineation app, whose fiducial
/// positions are integers) would otherwise be `+inf`; figures need a finite
/// ceiling, and 100 dB is above every fixed-point quantization ceiling the
/// applications exhibit.
pub const SNR_CAP_DB: f64 = 100.0;

/// Clamps an SNR to the reporting range (also flooring `-inf` for
/// all-wrong outputs so averages stay finite).
pub fn cap_snr(snr_db: f64) -> f64 {
    snr_db.clamp(-20.0, SNR_CAP_DB)
}

/// Deterministic per-(point, run) seed: every experiment derives its fault
/// maps from this, so re-running any figure reproduces identical numbers
/// and all EMTs at a given (point, run) share one fault map, as the
/// paper's methodology requires (§V).
pub fn fault_seed(base: u64, point: usize, run: usize) -> u64 {
    splitmix64(
        base ^ (point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (run as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Smallest 16-bank geometry that fits `words` (the characterizations do
/// not need the full 32 kB array; a right-sized one keeps campaigns fast).
///
/// All four figure runners derive their memory shapes from this one
/// helper, so the banked layout is decided in exactly one place.
pub fn banked_geometry(words: usize) -> MemGeometry {
    let banks = 16;
    MemGeometry::new(words.div_ceil(banks) * banks, 16, banks)
}

/// The record suite a campaign averages over: the standard
/// [`Database::date16_suite`] truncated to at most `max_records` entries.
pub fn record_suite(window: usize, max_records: usize) -> Vec<Record> {
    let mut suite = Database::date16_suite(window);
    suite.truncate(max_records);
    suite
}

/// [`record_suite`] with the acquisition-noise amplitudes scaled by
/// `noise_scale` (1.0 reproduces the standard suite bit for bit — the
/// scenario engine's noise-sweep axis).
pub fn record_suite_with_noise(window: usize, max_records: usize, noise_scale: f64) -> Vec<Record> {
    let model = dream_ecg::NoiseModel::date16().scaled(noise_scale);
    let mut suite = Database::date16_suite_with_noise(window, &model);
    suite.truncate(max_records);
    suite
}

/// Double-precision reference outputs (`x_theo` of Formula 1) of `app`
/// over `records`, computed once per campaign — in parallel across
/// records — and then shared read-only by every trial.
pub fn reference_outputs(app: &dyn BiomedicalApp, records: &[Record]) -> Vec<Vec<f64>> {
    exec::run_trials(
        records,
        || (),
        |(), record, _| app.run_reference(&record.samples),
    )
}

/// Adapter exposing a [`ProtectedMemory`] as application storage, without
/// the tracing overhead of `dream-soc`'s ports — the SNR experiments only
/// need values, not cycle counts.
///
/// Generic over the memory's codec (defaulting to the [`AnyCodec`]
/// facade): wrapping a monomorphized memory keeps the whole per-access
/// path free of enum dispatch behind the one unavoidable `dyn
/// WordStorage` call the applications make.
pub struct ProtectedStorage<'a, C: EmtCodec = AnyCodec> {
    mem: &'a mut ProtectedMemory<C>,
}

impl<'a, C: EmtCodec> ProtectedStorage<'a, C> {
    /// Wraps a protected memory.
    pub fn new(mem: &'a mut ProtectedMemory<C>) -> Self {
        ProtectedStorage { mem }
    }
}

impl<C: EmtCodec> WordStorage for ProtectedStorage<'_, C> {
    fn len(&self) -> usize {
        self.mem.words()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.mem.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.mem.write(addr, value)
    }

    fn write_block(&mut self, base: usize, data: &[i16]) {
        self.mem.write_block(base, data)
    }

    fn read_block(&mut self, base: usize, out: &mut [i16]) {
        self.mem.read_block(base, out)
    }
}

/// Adapter exposing a clean [`ProtectedMemory`] plus per-trial fault
/// planes as application storage for a *batched* pass: reads go through
/// [`ProtectedMemory::read_batch`] (decoding every lane and evicting
/// divergent trials), writes through the shared clean write. Block
/// accesses use the per-word `WordStorage` defaults, which produce
/// statistics identical to `ProtectedMemory`'s own block paths.
pub struct BatchProtectedStorage<'a, C: EmtCodec = AnyCodec> {
    mem: &'a mut ProtectedMemory<C>,
    faults: &'a BatchFaultPlanes,
    batch: &'a mut TrialBatch,
}

impl<'a, C: EmtCodec> BatchProtectedStorage<'a, C> {
    /// Wraps a clean memory, the batch's fault planes, and its lane state.
    pub fn new(
        mem: &'a mut ProtectedMemory<C>,
        faults: &'a BatchFaultPlanes,
        batch: &'a mut TrialBatch,
    ) -> Self {
        BatchProtectedStorage { mem, faults, batch }
    }
}

impl<C: EmtCodec> WordStorage for BatchProtectedStorage<'_, C> {
    fn len(&self) -> usize {
        self.mem.words()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.mem.read_batch(addr, self.faults, self.batch)
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.mem.write_batch(addr, value)
    }
}

/// One aggregated read event of a clean pass: while the stored code at
/// `addr` was `code` (side word `side`), the clean pass read the address
/// `count` times, decoding `word` with `outcome`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TraceEvent {
    addr: u32,
    code: u32,
    side: u16,
    word: i16,
    outcome: DecodeOutcome,
    count: u64,
}

/// A compressed record of one clean (fault-free) application pass: every
/// distinct `(address, stored code, side word)` a read observed, with its
/// repeat count, plus the pass's output and access statistics.
///
/// The trace depends only on (EMT, app, record) — never on the fault draw
/// — so one recording serves every batched group of a campaign,
/// [`CleanTrace::replay`]ing against each group's fault planes instead of
/// re-running the application. Aggregating events (dropping read order)
/// is sound because the batched pass's observables are order-independent:
/// a lane's final eviction only asks whether *any* read diverged, and
/// survivor deltas accumulate over *all* reads the lane corrupts —
/// evicted lanes' deltas are never consumed.
pub struct CleanTrace {
    events: Vec<TraceEvent>,
    output: Vec<i16>,
    stats: AccessStats,
}

impl CleanTrace {
    /// Records `app` running over `input` on the fault-free `mem`
    /// (reset by the caller), capturing the stored code behind every read.
    ///
    /// Block accesses go through the per-word `WordStorage` defaults, so
    /// the recorded statistics are identical to a batched clean pass's.
    fn record<C: EmtCodec>(
        mem: &mut ProtectedMemory<C>,
        app: &dyn BiomedicalApp,
        input: &[i16],
    ) -> CleanTrace {
        struct Recorder<'a, C: EmtCodec> {
            mem: &'a mut ProtectedMemory<C>,
            // Events bucketed by address: the clean decode is a pure
            // function of (addr, code, side) on a fault-free memory, and
            // an address's (code, side) only changes when it is written,
            // so reads almost always hit the bucket's newest entry —
            // the scan below is O(1) in practice.
            events: Vec<Vec<TraceEvent>>,
        }
        impl<C: EmtCodec> WordStorage for Recorder<'_, C> {
            fn len(&self) -> usize {
                self.mem.words()
            }

            fn read(&mut self, addr: usize) -> i16 {
                let code = self.mem.stored_code(addr);
                let side = self.mem.side_word(addr);
                let d = self.mem.read_decoded(addr);
                let bucket = &mut self.events[addr];
                match bucket
                    .iter_mut()
                    .rev()
                    .find(|e| e.code == code && e.side == side)
                {
                    Some(e) => e.count += 1,
                    None => bucket.push(TraceEvent {
                        addr: addr as u32,
                        code,
                        side,
                        word: d.word,
                        outcome: d.outcome,
                        count: 1,
                    }),
                }
                d.word
            }

            fn write(&mut self, addr: usize, value: i16) {
                self.mem.write(addr, value);
            }
        }
        let words = mem.words();
        let mut recorder = Recorder {
            mem,
            events: vec![Vec::new(); words],
        };
        let output = app.run(input, &mut recorder);
        // The replay is order-independent; flattening in address order
        // (then epoch order within a bucket) pins iteration deterministically.
        let events: Vec<TraceEvent> = recorder.events.into_iter().flatten().collect();
        CleanTrace {
            events,
            output,
            stats: recorder.mem.stats(),
        }
    }

    /// The clean pass's output samples.
    pub fn output(&self) -> &[i16] {
        &self.output
    }

    /// The clean pass's access statistics — the baseline
    /// [`TrialBatch::lane_stats`] offsets from.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Number of aggregated `(address, code, side)` events.
    pub fn events(&self) -> usize {
        self.events.len()
    }

    /// Replays this trace against one batched group's fault planes:
    /// every event some still-alive lane corrupts is overlaid and decoded
    /// for all lanes at once, evicting diverged lanes and accumulating
    /// survivor deltas into `batch` — the exact bookkeeping a full
    /// batched application pass would have produced, at the cost of the
    /// dirty events only. Returns as soon as no lane is alive.
    ///
    /// `lanes` restricts the replay to a subset of the batch: only those
    /// lanes are decoded, evicted, or credited. This is what lets one
    /// group mix trials over *different* records — each record's trace
    /// replays on exactly the lanes that drew it, sharing the group's
    /// plane transposition and bail-out budget.
    fn replay<C: EmtCodec + ?Sized>(
        &self,
        codec: &C,
        planes: &BatchFaultPlanes,
        batch: &mut TrialBatch,
        lanes: u64,
    ) {
        let width = codec.code_width() as usize;
        let mut word_planes = [0u64; 32];
        for e in &self.events {
            let active = planes.dirty_mask(e.addr as usize) & batch.alive() & lanes;
            if active == 0 {
                if batch.alive() & lanes == 0 {
                    break;
                }
                continue;
            }
            planes.overlay(e.addr as usize, e.code, &mut word_planes[..width]);
            let d = codec.decode_batch(&word_planes[..width], e.side);
            let clean_word = e.word as u16;
            let mut diverged = 0u64;
            for (i, &plane) in d.data.iter().enumerate() {
                let clean_plane = 0u64.wrapping_sub(u64::from(clean_word >> i & 1));
                diverged |= plane ^ clean_plane;
            }
            batch.record_read_repeated(
                active,
                diverged,
                d.corrected,
                d.uncorrectable,
                e.outcome,
                e.count,
            );
        }
    }
}

/// One aggregated read event of a raw (codec-agnostic) clean pass: while
/// the *logical word* at `addr` was `word`, the pass read the address
/// `count` times.
#[derive(Clone, Copy, Debug)]
struct RawEvent {
    addr: u32,
    word: i16,
    count: u64,
}

/// A codec-agnostic clean pass: the application run over plain word
/// storage, with every `(address, stored word)` epoch a read observed.
///
/// On fault-free memory every codec round-trips written words exactly
/// (`decode(encode(w)) == (w, Clean)` — pinned by the exhaustive codec
/// tests), so the application's clean dynamics do not depend on the EMT:
/// one raw recording per (app, record) yields the [`CleanTrace`] of
/// *every* EMT via [`CleanTrace::derive`], re-encoding each distinct word
/// instead of re-running the application four times.
///
/// The one case where dynamics *would* diverge is a read of a
/// never-written address: after [`ProtectedMemory::reset_with_fault_map`]
/// those hold raw code 0 / side 0, and `decode(0, 0)` is codec-dependent
/// (Dream's is not word 0). [`RawTrace::record`] detects any
/// read-before-write and returns `None`, making the caller fall back to
/// per-EMT [`EmtMemory::record_trace`] — exactness is never assumed.
pub struct RawTrace {
    events: Vec<RawEvent>,
    output: Vec<i16>,
    reads: u64,
    writes: u64,
}

impl RawTrace {
    /// Runs `app` over `input` on plain zeroed storage of `words` words,
    /// recording word epochs per address. Returns `None` if the app read
    /// an address before writing it (see the type docs).
    pub fn record(app: &dyn BiomedicalApp, input: &[i16], words: usize) -> Option<RawTrace> {
        struct Recorder {
            values: Vec<i16>,
            written: Vec<bool>,
            // Same bucketing as `CleanTrace::record`: reads almost always
            // hit the bucket's newest epoch.
            events: Vec<Vec<(i16, u64)>>,
            reads: u64,
            writes: u64,
            premature: bool,
        }
        impl WordStorage for Recorder {
            fn len(&self) -> usize {
                self.values.len()
            }

            fn read(&mut self, addr: usize) -> i16 {
                self.reads += 1;
                if !self.written[addr] {
                    self.premature = true;
                }
                let v = self.values[addr];
                let bucket = &mut self.events[addr];
                match bucket.iter_mut().rev().find(|(w, _)| *w == v) {
                    Some((_, c)) => *c += 1,
                    None => bucket.push((v, 1)),
                }
                v
            }

            fn write(&mut self, addr: usize, value: i16) {
                self.writes += 1;
                self.written[addr] = true;
                self.values[addr] = value;
            }
        }
        let mut recorder = Recorder {
            values: vec![0; words],
            written: vec![false; words],
            events: vec![Vec::new(); words],
            reads: 0,
            writes: 0,
            premature: false,
        };
        let output = app.run(input, &mut recorder);
        if recorder.premature {
            return None;
        }
        let events = recorder
            .events
            .into_iter()
            .enumerate()
            .flat_map(|(addr, bucket)| {
                bucket.into_iter().map(move |(word, count)| RawEvent {
                    addr: addr as u32,
                    word,
                    count,
                })
            })
            .collect();
        Some(RawTrace {
            events,
            output,
            reads: recorder.reads,
            writes: recorder.writes,
        })
    }

    /// The raw pass's output samples — identical to every EMT's clean
    /// output (word round-tripping again), so reference SNRs can be
    /// computed once per (app, record).
    pub fn output(&self) -> &[i16] {
        &self.output
    }
}

impl CleanTrace {
    /// Materializes the [`CleanTrace`] a direct [`CleanTrace::record`] on
    /// `codec`'s memory would have produced, from one codec-agnostic
    /// [`RawTrace`]: each distinct word is encoded (and its clean decode
    /// outcome taken) once, then stamped onto that word's events.
    fn derive<C: EmtCodec>(codec: &C, raw: &RawTrace) -> CleanTrace {
        let mut cache: std::collections::HashMap<i16, (u32, u16, DecodeOutcome)> =
            std::collections::HashMap::new();
        let mut corrected = 0u64;
        let mut uncorrectable = 0u64;
        let events = raw
            .events
            .iter()
            .map(|e| {
                let &mut (code, side, outcome) = cache.entry(e.word).or_insert_with(|| {
                    let enc = codec.encode(e.word);
                    let d = codec.decode(enc.code, enc.side);
                    debug_assert_eq!(d.word, e.word, "codec does not round-trip {}", e.word);
                    (enc.code, enc.side, d.outcome)
                });
                match outcome {
                    DecodeOutcome::Corrected => corrected += e.count,
                    DecodeOutcome::DetectedUncorrectable => uncorrectable += e.count,
                    DecodeOutcome::Clean => {}
                }
                TraceEvent {
                    addr: e.addr,
                    code,
                    side,
                    word: e.word,
                    outcome,
                    count: e.count,
                }
            })
            .collect();
        CleanTrace {
            events,
            output: raw.output.clone(),
            stats: AccessStats {
                reads: raw.reads,
                writes: raw.writes,
                corrected_reads: corrected,
                uncorrectable_reads: uncorrectable,
            },
        }
    }
}

/// A protected memory monomorphized per technique: one enum dispatch when
/// a trial *starts an app run*, zero dispatch per access — the arena type
/// the voltage-sweep campaigns hold one of per EMT.
#[allow(missing_docs)]
pub enum EmtMemory {
    None(ProtectedMemory<NoProtection>),
    Parity(ProtectedMemory<EvenParity>),
    Dream(ProtectedMemory<Dream>),
    Ecc(ProtectedMemory<EccSecDed>),
}

impl EmtMemory {
    /// Builds the fault-free monomorphized memory for `kind`.
    pub fn new(kind: EmtKind, geometry: MemGeometry) -> Self {
        match kind {
            EmtKind::None => {
                EmtMemory::None(ProtectedMemory::with_codec(NoProtection::new(), geometry))
            }
            EmtKind::Parity => {
                EmtMemory::Parity(ProtectedMemory::with_codec(EvenParity::new(), geometry))
            }
            EmtKind::Dream => EmtMemory::Dream(ProtectedMemory::with_codec(Dream::new(), geometry)),
            EmtKind::EccSecDed => {
                EmtMemory::Ecc(ProtectedMemory::with_codec(EccSecDed::new(), geometry))
            }
        }
    }

    /// Re-arms for a fresh trial (see
    /// [`ProtectedMemory::reset_with_fault_map`]).
    pub fn reset_with_fault_map(&mut self, map: &FaultMap) {
        match self {
            EmtMemory::None(m) => m.reset_with_fault_map(map),
            EmtMemory::Parity(m) => m.reset_with_fault_map(map),
            EmtMemory::Dream(m) => m.reset_with_fault_map(map),
            EmtMemory::Ecc(m) => m.reset_with_fault_map(map),
        }
    }

    /// Installs a logical→physical address scrambler (the §V randomized
    /// mapping); [`EmtMemory::reset_with_fault_map`] restores identity, so
    /// call this after the per-trial reset.
    pub fn set_scrambler(&mut self, scrambler: dream_mem::AddressScrambler) {
        match self {
            EmtMemory::None(m) => m.set_scrambler(scrambler),
            EmtMemory::Parity(m) => m.set_scrambler(scrambler),
            EmtMemory::Dream(m) => m.set_scrambler(scrambler),
            EmtMemory::Ecc(m) => m.set_scrambler(scrambler),
        }
    }

    /// Access statistics of the last run.
    pub fn stats(&self) -> AccessStats {
        match self {
            EmtMemory::None(m) => m.stats(),
            EmtMemory::Parity(m) => m.stats(),
            EmtMemory::Dream(m) => m.stats(),
            EmtMemory::Ecc(m) => m.stats(),
        }
    }

    /// Runs `app` with all buffers in this memory — the single dispatch
    /// point behind which every access is monomorphized.
    pub fn run_app(&mut self, app: &dyn BiomedicalApp, input: &[i16]) -> Vec<i16> {
        match self {
            EmtMemory::None(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Parity(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Dream(m) => app.run(input, &mut ProtectedStorage::new(m)),
            EmtMemory::Ecc(m) => app.run(input, &mut ProtectedStorage::new(m)),
        }
    }

    /// [`EmtMemory::run_app`] for a batched pass: this memory plays the
    /// clean trial, `faults` carries one lane per batched trial, and
    /// `batch` tracks divergence and per-lane statistics deltas. The
    /// returned output is the clean pass's — by the divergence rule it is
    /// also every surviving lane's output.
    pub fn run_app_batch(
        &mut self,
        app: &dyn BiomedicalApp,
        input: &[i16],
        faults: &BatchFaultPlanes,
        batch: &mut TrialBatch,
    ) -> Vec<i16> {
        match self {
            EmtMemory::None(m) => app.run(input, &mut BatchProtectedStorage::new(m, faults, batch)),
            EmtMemory::Parity(m) => {
                app.run(input, &mut BatchProtectedStorage::new(m, faults, batch))
            }
            EmtMemory::Dream(m) => {
                app.run(input, &mut BatchProtectedStorage::new(m, faults, batch))
            }
            EmtMemory::Ecc(m) => app.run(input, &mut BatchProtectedStorage::new(m, faults, batch)),
        }
    }

    /// Runs `app` once on this (fault-free, freshly reset) memory and
    /// records its [`CleanTrace`] — the pass every batched group of the
    /// campaign then [`EmtMemory::replay_trace`]s instead of re-running.
    pub fn record_trace(&mut self, app: &dyn BiomedicalApp, input: &[i16]) -> CleanTrace {
        match self {
            EmtMemory::None(m) => CleanTrace::record(m, app, input),
            EmtMemory::Parity(m) => CleanTrace::record(m, app, input),
            EmtMemory::Dream(m) => CleanTrace::record(m, app, input),
            EmtMemory::Ecc(m) => CleanTrace::record(m, app, input),
        }
    }

    /// Derives this EMT's [`CleanTrace`] from one codec-agnostic
    /// [`RawTrace`] (see that type: sound because every codec round-trips
    /// written words and the raw recording rejects read-before-write).
    /// Equality with a direct [`EmtMemory::record_trace`] is pinned by
    /// `derived_trace_matches_direct_recording_for_every_emt` below.
    pub fn derive_trace(&self, raw: &RawTrace) -> CleanTrace {
        match self {
            EmtMemory::None(m) => CleanTrace::derive(m.codec(), raw),
            EmtMemory::Parity(m) => CleanTrace::derive(m.codec(), raw),
            EmtMemory::Dream(m) => CleanTrace::derive(m.codec(), raw),
            EmtMemory::Ecc(m) => CleanTrace::derive(m.codec(), raw),
        }
    }

    /// Replays a recorded clean pass against one batched group's fault
    /// planes (see [`CleanTrace`]): `batch` ends up with exactly the
    /// eviction set and survivor deltas a full
    /// [`EmtMemory::run_app_batch`] over the same planes would produce.
    /// `lanes` masks the replay to the sub-group that drew this trace's
    /// record (`u64::MAX` for a whole single-record group).
    pub fn replay_trace(
        &self,
        trace: &CleanTrace,
        faults: &BatchFaultPlanes,
        batch: &mut TrialBatch,
        lanes: u64,
    ) {
        match self {
            EmtMemory::None(m) => trace.replay(m.codec(), faults, batch, lanes),
            EmtMemory::Parity(m) => trace.replay(m.codec(), faults, batch, lanes),
            EmtMemory::Dream(m) => trace.replay(m.codec(), faults, batch, lanes),
            EmtMemory::Ecc(m) => trace.replay(m.codec(), faults, batch, lanes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_core::EmtKind;
    use dream_mem::MemGeometry;

    #[test]
    fn seeds_are_distinct_across_points_and_runs() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..20 {
            for r in 0..50 {
                assert!(seen.insert(fault_seed(1, p, r)));
            }
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(fault_seed(7, 3, 9), fault_seed(7, 3, 9));
        assert_ne!(fault_seed(7, 3, 9), fault_seed(8, 3, 9));
    }

    #[test]
    fn cap_bounds_both_ends() {
        assert_eq!(cap_snr(f64::INFINITY), SNR_CAP_DB);
        assert_eq!(cap_snr(f64::NEG_INFINITY), -20.0);
        assert_eq!(cap_snr(42.0), 42.0);
    }

    #[test]
    fn banked_geometry_rounds_up_to_full_banks() {
        let g = banked_geometry(100);
        assert_eq!(g.words(), 112); // next multiple of 16
        assert_eq!(g.words() % 16, 0);
        assert_eq!(banked_geometry(160).words(), 160);
    }

    #[test]
    fn record_suite_truncates() {
        assert_eq!(record_suite(256, 3).len(), 3);
        assert_eq!(
            record_suite(256, usize::MAX).len(),
            dream_ecg::Database::SUITE_SIZE
        );
    }

    #[test]
    fn unit_noise_scale_matches_standard_suite() {
        assert_eq!(record_suite_with_noise(256, 3, 1.0), record_suite(256, 3));
        assert_ne!(
            record_suite_with_noise(256, 3, 4.0),
            record_suite(256, 3),
            "a 4x noise floor must perturb the quantized samples"
        );
    }

    #[test]
    fn reference_outputs_match_direct_computation() {
        let records = record_suite(256, 2);
        let app = dream_dsp::AppKind::Dwt.instantiate(256);
        let refs = reference_outputs(&*app, &records);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], app.run_reference(&records[0].samples));
        assert_eq!(refs[1], app.run_reference(&records[1].samples));
    }

    #[test]
    fn storage_adapter_round_trips() {
        let mut mem = ProtectedMemory::new(EmtKind::Dream, MemGeometry::new(32, 16, 1));
        let mut s = ProtectedStorage::new(&mut mem);
        s.write(3, -99);
        assert_eq!(s.read(3), -99);
        assert_eq!(s.len(), 32);
        s.write_block(10, &[7, -8, 9]);
        let mut out = vec![0i16; 3];
        s.read_block(10, &mut out);
        assert_eq!(out, vec![7, -8, 9]);
    }

    #[test]
    fn trace_replay_matches_full_batched_pass() {
        // The compressed clean trace must reproduce a full batched
        // application pass exactly: same clean output and stats, same
        // eviction set, same survivor deltas — for every codec, on fault
        // planes dense enough to evict some lanes and spare others.
        let app = dream_dsp::AppKind::Dwt.instantiate(256);
        let geometry = banked_geometry(app.memory_words());
        let samples = record_suite(256, 1)[0].samples.clone();
        let lanes = 8;
        let mut planes = BatchFaultPlanes::new(geometry.words(), 22);
        for lane in 0..lanes {
            let ber = 0.0005 * (lane + 1) as f64;
            let map = dream_mem::FaultMap::generate(geometry.words(), 22, ber, 40 + lane as u64);
            planes.add_lane(lane, &map, None);
        }
        let empty = FaultMap::empty(geometry.words(), 22);
        let mut survived = 0;
        let mut evicted = 0;
        for kind in EmtKind::all() {
            let mut mem = EmtMemory::new(kind, geometry);
            mem.reset_with_fault_map(&empty);
            let mut full = TrialBatch::new(lanes);
            let out = mem.run_app_batch(&*app, &samples, &planes, &mut full);
            let full_stats = mem.stats();

            mem.reset_with_fault_map(&empty);
            let trace = mem.record_trace(&*app, &samples);
            assert_eq!(trace.output(), &out[..], "{kind}: clean output");
            assert_eq!(trace.stats(), full_stats, "{kind}: clean stats");
            assert!(trace.events() > 0, "{kind}: trace must not be empty");

            let mut replayed = TrialBatch::new(lanes);
            mem.replay_trace(&trace, &planes, &mut replayed, u64::MAX);
            assert_eq!(replayed.alive(), full.alive(), "{kind}: eviction set");
            for lane in 0..lanes {
                if replayed.is_alive(lane) {
                    survived += 1;
                    assert_eq!(
                        replayed.lane_stats(lane, &trace.stats()),
                        full.lane_stats(lane, &full_stats),
                        "{kind} lane {lane}: survivor deltas"
                    );
                } else {
                    evicted += 1;
                }
            }
        }
        // The fixed seeds must exercise both outcomes of the rule.
        assert!(survived > 0, "no lane survived anywhere");
        assert!(evicted > 0, "no lane diverged anywhere");
    }

    #[test]
    fn derived_trace_matches_direct_recording_for_every_emt() {
        // One codec-agnostic raw pass must yield, for every EMT, the
        // byte-identical CleanTrace a direct recording on that EMT's
        // memory produces: same events (addresses, codes, side words,
        // outcomes, counts, order), same output, same stats.
        for app_kind in dream_dsp::AppKind::all() {
            // 512: large enough for the delineator's one-second minimum.
            let app = app_kind.instantiate(512);
            let geometry = banked_geometry(app.memory_words());
            let samples = record_suite(512, 1)[0].samples.clone();
            let empty = FaultMap::empty(geometry.words(), 22);
            let raw = RawTrace::record(&*app, &samples, geometry.words())
                .unwrap_or_else(|| panic!("{app_kind:?} reads before writing"));
            for kind in EmtKind::all() {
                let mut mem = EmtMemory::new(kind, geometry);
                mem.reset_with_fault_map(&empty);
                let direct = mem.record_trace(&*app, &samples);
                let derived = mem.derive_trace(&raw);
                assert_eq!(derived.events, direct.events, "{app_kind:?}/{kind}: events");
                assert_eq!(derived.output, direct.output, "{app_kind:?}/{kind}: output");
                assert_eq!(
                    derived.stats(),
                    direct.stats(),
                    "{app_kind:?}/{kind}: stats"
                );
            }
        }
    }

    #[test]
    fn raw_trace_rejects_read_before_write() {
        // decode(0, 0) is codec-dependent (Dream's is not word 0), so a
        // pass touching a never-written address cannot be shared across
        // EMTs — the recorder must refuse instead of silently diverging.
        struct ReadsFirst;
        impl BiomedicalApp for ReadsFirst {
            fn name(&self) -> &'static str {
                "reads-first"
            }
            fn kind(&self) -> dream_dsp::AppKind {
                dream_dsp::AppKind::Dwt
            }
            fn input_len(&self) -> usize {
                0
            }
            fn output_len(&self) -> usize {
                1
            }
            fn memory_words(&self) -> usize {
                8
            }
            fn run(&self, _input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
                let v = mem.read(3);
                mem.write(0, v);
                vec![v]
            }
            fn run_reference(&self, _input: &[i16]) -> Vec<f64> {
                vec![0.0]
            }
        }
        assert!(RawTrace::record(&ReadsFirst, &[], 8).is_none());
        // Sanity: the Dream virgin decode really is the divergent case
        // the rejection guards against.
        let d = Dream::new();
        assert_ne!(d.decode(0, 0).word, 0, "virgin Dream reads are nonzero");
    }

    #[test]
    fn emt_memory_matches_facade_memory() {
        // The monomorphized arena wrapper must be observationally
        // identical to the AnyCodec facade on the same fault map.
        let app = dream_dsp::AppKind::Dwt.instantiate(256);
        let geometry = banked_geometry(app.memory_words());
        let map = dream_mem::FaultMap::generate(geometry.words(), 22, 0.003, 5);
        let record: Vec<i16> = (0..256).map(|i| (i * 97 - 11_000) as i16).collect();
        for kind in EmtKind::all() {
            let mut typed = EmtMemory::new(kind, geometry);
            typed.reset_with_fault_map(&map);
            let typed_out = typed.run_app(&*app, &record);
            let mut facade = ProtectedMemory::with_fault_map(kind, geometry, &map);
            let facade_out = {
                let mut storage = ProtectedStorage::new(&mut facade);
                app.run(&record, &mut storage)
            };
            assert_eq!(typed_out, facade_out, "{kind}");
            assert_eq!(typed.stats(), facade.stats(), "{kind}");
        }
    }
}
