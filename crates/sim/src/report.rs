//! Plain-text tables and CSV emission for the experiment binaries.

use std::io::{self, Write};
use std::path::Path;

/// Renders an aligned ASCII table (header row + separator + data rows).
///
/// ```
/// let t = dream_sim::report::format_table(
///     &["V", "SNR (dB)"],
///     &[vec!["0.9".into(), "95.0".into()], vec!["0.5".into(), "12.3".into()]],
/// );
/// assert!(t.contains("0.9"));
/// assert!(t.lines().count() == 4);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        padded.join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV (comma-separated, no quoting — the harness emits
/// only numbers and identifiers).
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a fraction as a percentage with one decimal (`0.345` → `34.5%`).
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats an SNR value, rendering the harness cap as a `>=` bound.
pub fn snr(db: f64) -> String {
    if db >= crate::campaign::SNR_CAP_DB {
        format!(">={:.0}", crate::campaign::SNR_CAP_DB)
    } else {
        format!("{db:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_round_trips() {
        let dir = std::env::temp_dir().join("dream_sim_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.345), "34.5%");
        assert_eq!(pct(-0.5), "-50.0%");
    }

    #[test]
    fn snr_caps() {
        assert_eq!(snr(42.0), "42.0");
        assert_eq!(snr(100.0), ">=100");
    }
}
