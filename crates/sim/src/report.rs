//! Row sinks for the experiment harness: aligned ASCII tables, CSV and
//! JSONL — all behind one streaming [`Sink`] trait so long campaigns emit
//! rows as trial batches complete instead of buffering whole sweeps.

use std::io::{self, Write};
use std::path::Path;

/// Renders an aligned ASCII table (header row + separator + data rows).
///
/// ```
/// let t = dream_sim::report::format_table(
///     &["V", "SNR (dB)"],
///     &[vec!["0.9".into(), "95.0".into()], vec!["0.5".into(), "12.3".into()]],
/// );
/// assert!(t.contains("0.9"));
/// assert!(t.lines().count() == 4);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        padded.join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Escapes one CSV cell per RFC 4180: cells containing a comma, double
/// quote, CR or LF are wrapped in double quotes with inner quotes doubled;
/// clean cells pass through unchanged (so the harness's numeric output
/// stays byte-stable).
///
/// ```
/// use dream_sim::report::csv_escape;
/// assert_eq!(csv_escape("12.5"), "12.5");
/// assert_eq!(csv_escape("a,b"), "\"a,b\"");
/// assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// A streaming consumer of result rows.
///
/// The scenario engine calls [`Sink::begin`] once with the column headers,
/// [`Sink::emit`] with each batch of finished rows (one batch per completed
/// grid point, so hour-long campaigns surface progress incrementally), and
/// [`Sink::finish`] once at the end.
pub trait Sink {
    /// Declares the column headers. Called exactly once, before any rows.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn begin(&mut self, headers: &[&str]) -> io::Result<()>;

    /// Consumes one batch of rows.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn emit(&mut self, rows: &[Vec<String>]) -> io::Result<()>;

    /// Flushes any buffered output (the table sink renders here, since
    /// column widths need the full row set).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn finish(&mut self) -> io::Result<()>;
}

/// A sink that drops everything (the engine's default when the caller only
/// wants the typed outcome).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn begin(&mut self, _headers: &[&str]) -> io::Result<()> {
        Ok(())
    }

    fn emit(&mut self, _rows: &[Vec<String>]) -> io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams rows as RFC-4180 CSV (header line first, cells escaped via
/// [`csv_escape`]).
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        CsvSink { writer }
    }

    /// Unwraps the writer (e.g. to recover an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for CsvSink<W> {
    fn begin(&mut self, headers: &[&str]) -> io::Result<()> {
        let cells: Vec<String> = headers.iter().map(|h| csv_escape(h)).collect();
        writeln!(self.writer, "{}", cells.join(","))
    }

    fn emit(&mut self, rows: &[Vec<String>]) -> io::Result<()> {
        for row in rows {
            let cells: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
            writeln!(self.writer, "{}", cells.join(","))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// True when `cell` is already a syntactically valid JSON number (so the
/// JSONL sink can emit it unquoted without changing its bytes).
fn is_json_number(cell: &str) -> bool {
    let s = cell.strip_prefix('-').unwrap_or(cell);
    let (int_part, rest) = match s.find(['.', 'e', 'E']) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    };
    let int_ok = !int_part.is_empty()
        && int_part.bytes().all(|b| b.is_ascii_digit())
        && (int_part == "0" || !int_part.starts_with('0'));
    if !int_ok {
        return false;
    }
    let mut rest = rest;
    if let Some(frac) = rest.strip_prefix('.') {
        let end = frac.find(['e', 'E']).unwrap_or(frac.len());
        if end == 0 || !frac[..end].bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        rest = &frac[end..];
    }
    match rest.strip_prefix(['e', 'E']) {
        None => rest.is_empty(),
        Some(exp) => {
            let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
            !exp.is_empty() && exp.bytes().all(|b| b.is_ascii_digit())
        }
    }
}

/// Escapes a string for inclusion in a JSON document (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Streams rows as JSON Lines: one object per row keyed by the headers,
/// with numeric-looking cells emitted as JSON numbers.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    headers: Vec<String>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            headers: Vec::new(),
        }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl JsonlSink<std::fs::File> {
    /// Opens `path` for appending (creating it if absent) — the
    /// resumable-campaign sink: JSONL carries its keys on every row, so a
    /// re-run continues the artifact instead of truncating the rows a
    /// previous (interrupted) campaign already paid for.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink::new(file))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn begin(&mut self, headers: &[&str]) -> io::Result<()> {
        self.headers = headers.iter().map(|h| (*h).to_string()).collect();
        Ok(())
    }

    fn emit(&mut self, rows: &[Vec<String>]) -> io::Result<()> {
        for row in rows {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, cell)| {
                    let value = if is_json_number(cell) {
                        cell.clone()
                    } else {
                        json_string(cell)
                    };
                    format!("{}: {value}", json_string(h))
                })
                .collect();
            writeln!(self.writer, "{{{}}}", fields.join(", "))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Buffers rows and renders one aligned ASCII table on
/// [`Sink::finish`] (alignment needs the full column widths).
#[derive(Debug)]
pub struct TableSink<W: Write> {
    writer: W,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl<W: Write> TableSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        TableSink {
            writer,
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Unwraps the writer (the rendered table, after
    /// [`Sink::finish`]).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for TableSink<W> {
    fn begin(&mut self, headers: &[&str]) -> io::Result<()> {
        self.headers = headers.iter().map(|h| (*h).to_string()).collect();
        Ok(())
    }

    fn emit(&mut self, rows: &[Vec<String>]) -> io::Result<()> {
        self.rows.extend(rows.iter().cloned());
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        write!(self.writer, "{}", format_table(&headers, &self.rows))?;
        self.writer.flush()
    }
}

/// Writes rows as CSV in one call (headers + rows through [`CsvSink`], so
/// cells containing commas, quotes or newlines are escaped rather than
/// silently corrupting the row structure).
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut sink = CsvSink::new(std::fs::File::create(path)?);
    sink.begin(headers)?;
    sink.emit(rows)?;
    sink.finish()
}

/// Formats a fraction as a percentage with one decimal (`0.345` → `34.5%`).
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats an SNR value, rendering the harness cap as a `>=` bound.
pub fn snr(db: f64) -> String {
    if db >= crate::campaign::SNR_CAP_DB {
        format!(">={:.0}", crate::campaign::SNR_CAP_DB)
    } else {
        format!("{db:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_round_trips() {
        let dir = std::env::temp_dir().join("dream_sim_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn csv_cells_with_commas_are_quoted_not_corrupted() {
        let dir = std::env::temp_dir().join("dream_sim_csv_escape_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["name", "note"],
            &[vec!["a,b".into(), "he said \"hi\"\nbye".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "name,note\n\"a,b\",\"he said \"\"hi\"\"\nbye\"\n");
        // Quoted-field parse: the first data row still has exactly 2 cells.
        assert_eq!(body.lines().count(), 3); // header + 2 physical lines of 1 logical row
    }

    #[test]
    fn csv_escape_passes_clean_cells_through() {
        assert_eq!(csv_escape("DWT"), "DWT");
        assert_eq!(csv_escape("-12.345"), "-12.345");
        assert_eq!(csv_escape("ECC SEC/DED"), "ECC SEC/DED");
        assert_eq!(csv_escape("a\rb"), "\"a\rb\"");
    }

    #[test]
    fn csv_sink_streams_batches() {
        let mut sink = CsvSink::new(Vec::new());
        sink.begin(&["a", "b"]).unwrap();
        sink.emit(&[vec!["1".into(), "2".into()]]).unwrap();
        sink.emit(&[vec!["3".into(), "4".into()]]).unwrap();
        sink.finish().unwrap();
        assert_eq!(
            String::from_utf8(sink.into_inner()).unwrap(),
            "a,b\n1,2\n3,4\n"
        );
    }

    #[test]
    fn jsonl_sink_types_numbers_and_escapes_strings() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.begin(&["app", "snr_db", "bit"]).unwrap();
        sink.emit(&[
            vec!["DWT".into(), "68.612".into(), "0".into()],
            vec!["say \"hi\"".into(), "-7.263".into(), "15".into()],
        ])
        .unwrap();
        sink.finish().unwrap();
        let body = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"app\": \"DWT\", \"snr_db\": 68.612, \"bit\": 0}"
        );
        assert_eq!(
            lines[1],
            "{\"app\": \"say \\\"hi\\\"\", \"snr_db\": -7.263, \"bit\": 15}"
        );
    }

    #[test]
    fn json_number_detection_is_strict() {
        for ok in ["0", "-1", "12.5", "-0.003", "1e9", "2.5E-3", "0.50"] {
            assert!(is_json_number(ok), "{ok}");
        }
        for bad in ["", "-", ".5", "1.", "007", "0x1f", "1e", "NaN", "inf", "1 "] {
            assert!(!is_json_number(bad), "{bad}");
        }
    }

    #[test]
    fn table_sink_renders_on_finish() {
        let mut sink = TableSink::new(Vec::new());
        sink.begin(&["V", "snr"]).unwrap();
        sink.emit(&[vec!["0.9".into(), "95.0".into()]]).unwrap();
        sink.emit(&[vec!["0.55".into(), "3.2".into()]]).unwrap();
        sink.finish().unwrap();
        let body = String::from_utf8(sink.writer).unwrap();
        assert_eq!(
            body,
            format_table(
                &["V", "snr"],
                &[
                    vec!["0.9".into(), "95.0".into()],
                    vec!["0.55".into(), "3.2".into()]
                ],
            )
        );
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.345), "34.5%");
        assert_eq!(pct(-0.5), "-50.0%");
    }

    #[test]
    fn snr_caps() {
        assert_eq!(snr(42.0), "42.0");
        assert_eq!(snr(100.0), ">=100");
    }
}
