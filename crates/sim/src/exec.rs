//! Deterministic parallel execution of campaign trials.
//!
//! Every figure of the paper is a Monte-Carlo campaign: hundreds of
//! independent `(point, run)` trials whose outputs are averaged into curve
//! points. The trials are embarrassingly parallel — each one derives its
//! fault map from [`crate::campaign::fault_seed`] and touches nothing but
//! its own scratch memory — so this module schedules a flattened trial
//! list across `std::thread::scope` workers and merges the results **in
//! trial order**, making the output bit-identical regardless of how many
//! workers ran it.
//!
//! # Determinism contract
//!
//! [`run_trials`] guarantees `result[i]` came from `trials[i]` for every
//! `i`, whatever the thread count. Callers keep that guarantee end to end
//! by (a) deriving all randomness from the trial descriptor (never from a
//! worker-local RNG), and (b) fully re-arming any reused scratch state at
//! the start of each trial (see `ProtectedMemory::reset_with_fault_map`).
//! Aggregations stay bit-identical because floating-point reduction
//! happens *after* the merge, in trial order.
//!
//! # Thread count
//!
//! Resolution order: the scoped [`with_ambient_threads`] binding (used by
//! `CampaignRunner::threads`, so concurrent campaigns on different driver
//! threads can each pin their own count) → explicit [`set_thread_override`]
//! (used by the bench binaries' `--threads` flag and the determinism
//! tests) → the `DREAM_THREADS` environment variable →
//! `available_parallelism()`. A count of 1 reproduces the historical
//! serial path exactly, worker scratch included.
//!
//! # Cancellation
//!
//! [`run_trials_cancellable`] accepts a [`CancelToken`]; workers stop
//! claiming trials once it fires and the call returns [`Cancelled`]
//! instead of a partial (and therefore non-deterministic-looking) result
//! vector. Because campaigns are deterministic, a cancelled campaign is
//! resumed by re-running it and skipping the rows already emitted.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment variable selecting the worker count (`1` = serial).
pub const THREADS_ENV: &str = "DREAM_THREADS";

/// Environment variable toggling bit-sliced trial batching (`1`/`true`/`on`
/// to enable, `0`/`false`/`off` to disable).
pub const BATCH_ENV: &str = "DREAM_BATCH";

/// Environment variable tuning the batched executor's adaptive bail-out
/// fraction (`0.0`..=`1.0`): a batch abandons its plane passes once the
/// alive-lane population drops strictly below this fraction of the group,
/// finishing the stragglers on the scalar replay path. `0` disables
/// bail-out; `1` bails on the first eviction.
pub const BAILOUT_ENV: &str = "DREAM_BATCH_BAILOUT";

/// Default bail-out fraction: below a quarter of the group, the plane
/// passes cost more than scalar replays of the survivors.
pub const DEFAULT_BAILOUT: f64 = 0.25;

/// Process-wide thread-count override (0 = none). Takes precedence over
/// [`THREADS_ENV`] so binaries and tests can pin the count without
/// mutating the process environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide batching override (0 = none, 1 = off, 2 = on). Same
/// precedence role as the thread override, for [`BATCH_ENV`].
static BATCH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sentinel bit pattern marking the bail-out override as unset (a NaN, so
/// it can never collide with a valid fraction's bits).
const BAILOUT_UNSET: u64 = u64::MAX;

/// Process-wide bail-out-fraction override, stored as `f64` bits
/// ([`BAILOUT_UNSET`] = none). Same precedence role as the others, for
/// [`BAILOUT_ENV`].
static BAILOUT_OVERRIDE: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(BAILOUT_UNSET);

thread_local! {
    /// Driver-thread-scoped worker count (0 = unset). Outranks the global
    /// override: a server worker pinning its own campaign must not race
    /// other campaigns through a process-wide atomic.
    static AMBIENT_THREADS: Cell<usize> = const { Cell::new(0) };

    /// Driver-thread-scoped batching toggle (0 = unset, 1 = off, 2 = on),
    /// mirroring [`AMBIENT_THREADS`].
    static AMBIENT_BATCH: Cell<usize> = const { Cell::new(0) };

    /// Driver-thread-scoped bail-out fraction (`None` = unset), mirroring
    /// [`AMBIENT_BATCH`].
    static AMBIENT_BAILOUT: Cell<Option<f64>> = const { Cell::new(None) };
}

/// Panics unless `fraction` is a valid bail-out fraction.
fn check_bailout(fraction: f64) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "bail-out fraction must be in 0.0..=1.0, got {fraction}"
    );
}

/// A shared flag requesting cooperative cancellation of a campaign.
///
/// Clones observe the same flag; once [`cancel`](CancelToken::cancel) is
/// called every [`run_trials_cancellable`] holding a clone stops claiming
/// trials and returns [`Cancelled`]. The flag is sticky — there is no
/// un-cancel.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent and callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The campaign stopped because its [`CancelToken`] fired; any partial
/// results were discarded to preserve the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("campaign cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Runs `f` with the thread count pinned to `threads` on this thread (and
/// every campaign it drives); `None` inherits the surrounding resolution.
/// The previous binding is restored on exit, panic included.
pub fn with_ambient_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    if let Some(n) = threads {
        assert!(n > 0, "ambient thread count must be at least 1");
    }
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT_THREADS.with(|c| {
        let prev = c.get();
        if let Some(n) = threads {
            c.set(n);
        }
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Pins the worker count for all subsequent campaigns (`None` restores
/// the environment/auto-detect resolution).
///
/// # Panics
///
/// Panics if `Some(0)` is passed — zero workers cannot run anything.
pub fn set_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        assert!(n > 0, "thread override must be at least 1");
        THREAD_OVERRIDE.store(n, Ordering::SeqCst);
    } else {
        THREAD_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Runs `f` with trial batching pinned on or off on this thread (and every
/// campaign it drives); `None` inherits the surrounding resolution. The
/// previous binding is restored on exit, panic included.
pub fn with_ambient_batch<R>(batch: Option<bool>, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_BATCH.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT_BATCH.with(|c| {
        let prev = c.get();
        if let Some(on) = batch {
            c.set(if on { 2 } else { 1 });
        }
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Pins trial batching on or off for all subsequent campaigns (`None`
/// restores the environment resolution).
pub fn set_batch_override(batch: Option<bool>) {
    let encoded = match batch {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    BATCH_OVERRIDE.store(encoded, Ordering::SeqCst);
}

/// Runs `f` with the batched executor's bail-out fraction pinned on this
/// thread (and every campaign it drives); `None` inherits the surrounding
/// resolution. The previous binding is restored on exit, panic included.
///
/// # Panics
///
/// Panics if the fraction is outside `0.0..=1.0`.
pub fn with_ambient_bailout<R>(fraction: Option<f64>, f: impl FnOnce() -> R) -> R {
    if let Some(frac) = fraction {
        check_bailout(frac);
    }
    struct Restore(Option<f64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_BAILOUT.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT_BAILOUT.with(|c| {
        let prev = c.get();
        if fraction.is_some() {
            c.set(fraction);
        }
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Pins the bail-out fraction for all subsequent campaigns (`None`
/// restores the environment resolution).
///
/// # Panics
///
/// Panics if the fraction is outside `0.0..=1.0`.
pub fn set_bailout_override(fraction: Option<f64>) {
    let encoded = match fraction {
        None => BAILOUT_UNSET,
        Some(frac) => {
            check_bailout(frac);
            frac.to_bits()
        }
    };
    BAILOUT_OVERRIDE.store(encoded, Ordering::SeqCst);
}

/// Whether campaigns run right now batch their trials (ambient scope →
/// override → [`BATCH_ENV`] → **on**).
///
/// Batching defaults on: with clean-trace derivation and per-lane map
/// reuse it beats the scalar path on every `perf_baseline` preset that
/// exercises it (the acceptance bar was ≥ 0.95×; set `DREAM_BATCH=0`
/// to opt out).
///
/// Batching is an execution strategy, not a model change: the engine's
/// batched paths are bit-identical to the scalar paths by the divergence
/// rule (`dream_core::TrialBatch`), so this toggle may only affect speed.
///
/// # Panics
///
/// Panics if [`BATCH_ENV`] is set to something other than
/// `1`/`true`/`on`/`0`/`false`/`off` — a typo silently running the other
/// path would make benchmark A/Bs lie.
pub fn batch_enabled() -> bool {
    let ambient = AMBIENT_BATCH.with(Cell::get);
    if ambient > 0 {
        return ambient == 2;
    }
    let forced = BATCH_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced == 2;
    }
    if let Ok(raw) = std::env::var(BATCH_ENV) {
        return match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            _ => panic!("{BATCH_ENV} must be one of 1/true/on/0/false/off, got {raw:?}"),
        };
    }
    true
}

/// The adaptive bail-out fraction batched campaigns use right now
/// (ambient scope → override → [`BAILOUT_ENV`] → [`DEFAULT_BAILOUT`]).
///
/// Like batching itself, the bail-out is an execution strategy: bailed
/// lanes are replayed on the scalar path, so the fraction may only affect
/// speed, never output.
///
/// # Panics
///
/// Panics if [`BAILOUT_ENV`] is set to anything but a number in
/// `0.0..=1.0` — a typo silently running a different bail-out policy
/// would make benchmark A/Bs lie.
pub fn batch_bailout() -> f64 {
    if let Some(frac) = AMBIENT_BAILOUT.with(Cell::get) {
        return frac;
    }
    let forced = BAILOUT_OVERRIDE.load(Ordering::SeqCst);
    if forced != BAILOUT_UNSET {
        return f64::from_bits(forced);
    }
    if let Ok(raw) = std::env::var(BAILOUT_ENV) {
        let frac: f64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{BAILOUT_ENV} must be a number in 0.0..=1.0, got {raw:?}"));
        assert!(
            (0.0..=1.0).contains(&frac),
            "{BAILOUT_ENV} must be in 0.0..=1.0, got {raw:?}"
        );
        return frac;
    }
    DEFAULT_BAILOUT
}

/// The worker count campaigns will use right now (ambient scope →
/// override → env → available parallelism; at least 1).
///
/// # Panics
///
/// Panics if [`THREADS_ENV`] is set to something other than a positive
/// integer — a typo silently falling back to all cores would be worse.
pub fn thread_count() -> usize {
    let ambient = AMBIENT_THREADS.with(Cell::get);
    if ambient > 0 {
        return ambient;
    }
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        let n: usize = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{THREADS_ENV} must be a positive integer, got {raw:?}"));
        assert!(n > 0, "{THREADS_ENV} must be at least 1");
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every trial descriptor through `run`, in parallel, returning the
/// results **in trial order**.
///
/// `scratch` builds one worker-local arena (reused app instances,
/// protected memories, fault-map buffers) per worker thread; `run`
/// executes one trial against that arena. Workers claim trials from a
/// shared atomic cursor, so the schedule load-balances irregular trial
/// costs, while the order-restoring merge keeps the output independent of
/// the schedule.
///
/// With a resolved thread count of 1 (or at most one trial) everything
/// runs inline on the caller's thread with a single arena — the exact
/// historical serial path.
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn run_trials<T, C, R>(
    trials: &[T],
    scratch: impl Fn() -> C + Sync,
    run: impl Fn(&mut C, &T, usize) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    run_trials_cancellable(trials, scratch, run, None)
        .expect("run without a cancel token cannot be cancelled")
}

/// [`run_trials`] with cooperative cancellation: workers poll `cancel`
/// before claiming each trial and stop as soon as it fires, returning
/// [`Cancelled`]. With `cancel: None` the behaviour (and determinism
/// contract) is exactly [`run_trials`].
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before all trials completed.
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn run_trials_cancellable<T, C, R>(
    trials: &[T],
    scratch: impl Fn() -> C + Sync,
    run: impl Fn(&mut C, &T, usize) -> R + Sync,
    cancel: Option<&CancelToken>,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
{
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let workers = thread_count().min(trials.len().max(1));
    if workers <= 1 {
        let mut arena = scratch();
        let mut out = Vec::with_capacity(trials.len());
        for (i, t) in trials.iter().enumerate() {
            if cancelled() {
                return Err(Cancelled);
            }
            out.push(run(&mut arena, t, i));
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut arena = scratch();
                    let mut out = Vec::new();
                    loop {
                        if cancelled() {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= trials.len() {
                            break;
                        }
                        out.push((i, run(&mut arena, &trials[i], i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    if cancelled() {
        return Err(Cancelled);
    }
    // Order-restoring merge: slot every result back at its trial index.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(trials.len());
    slots.resize_with(trials.len(), || None);
    for (i, r) in partials.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "trial {i} ran twice");
        slots[i] = Some(r);
    }
    Ok(slots
        .into_iter()
        .map(|r| r.expect("every trial ran exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that pin the global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK.lock().expect("override lock");
        set_thread_override(Some(n));
        let r = f();
        set_thread_override(None);
        r
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let trials: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || {
                run_trials(
                    &trials,
                    || 0u64,
                    |_, &t, i| {
                        assert_eq!(t, i);
                        (t * 31) as u64
                    },
                )
            });
            let want: Vec<u64> = trials.iter().map(|&t| (t * 31) as u64).collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn scratch_is_worker_local_and_reused() {
        // Each worker's arena counts the trials it served; the total must
        // cover every trial exactly once.
        let trials: Vec<u32> = (0..100).collect();
        let served = with_threads(3, || {
            run_trials(
                &trials,
                || 0usize,
                |count, _, _| {
                    *count += 1;
                    *count
                },
            )
        });
        // Per-trial scratch counters are ≥ 1 and never exceed the trial count.
        assert!(served.iter().all(|&c| (1..=100).contains(&c)));
    }

    #[test]
    fn empty_trial_list_is_fine() {
        let out: Vec<u8> = run_trials(&[] as &[u8], || (), |_, &t, _| t);
        assert!(out.is_empty());
    }

    #[test]
    fn override_beats_environment() {
        let _guard = OVERRIDE_LOCK.lock().expect("override lock");
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_override_rejected() {
        set_thread_override(Some(0));
    }

    #[test]
    fn ambient_threads_outrank_the_global_override() {
        let _guard = OVERRIDE_LOCK.lock().expect("override lock");
        set_thread_override(Some(2));
        assert_eq!(thread_count(), 2);
        with_ambient_threads(Some(5), || {
            assert_eq!(thread_count(), 5);
            // None inherits the surrounding binding instead of clearing it.
            with_ambient_threads(None, || assert_eq!(thread_count(), 5));
        });
        assert_eq!(thread_count(), 2, "binding must be restored on exit");
        set_thread_override(None);
    }

    #[test]
    fn batch_resolution_mirrors_thread_resolution() {
        let _guard = OVERRIDE_LOCK.lock().expect("override lock");
        // Default (no ambient, no override, env unset in the test
        // harness): batching is ON.
        assert!(batch_enabled());
        set_batch_override(Some(true));
        assert!(batch_enabled());
        // Ambient outranks the override, in both directions.
        with_ambient_batch(Some(false), || {
            assert!(!batch_enabled());
            // None inherits the surrounding binding instead of clearing it.
            with_ambient_batch(None, || assert!(!batch_enabled()));
            with_ambient_batch(Some(true), || assert!(batch_enabled()));
        });
        assert!(batch_enabled(), "binding must be restored on exit");
        set_batch_override(Some(false));
        assert!(!batch_enabled());
        set_batch_override(None);
        assert!(
            batch_enabled(),
            "clearing the override restores the default"
        );
    }

    #[test]
    fn bailout_resolution_mirrors_batch_resolution() {
        let _guard = OVERRIDE_LOCK.lock().expect("override lock");
        // Default (no ambient, no override, env unset in the test harness).
        assert_eq!(batch_bailout(), DEFAULT_BAILOUT);
        set_bailout_override(Some(0.5));
        assert_eq!(batch_bailout(), 0.5);
        // Ambient outranks the override; None inherits.
        with_ambient_bailout(Some(0.0), || {
            assert_eq!(batch_bailout(), 0.0);
            with_ambient_bailout(None, || assert_eq!(batch_bailout(), 0.0));
            with_ambient_bailout(Some(1.0), || assert_eq!(batch_bailout(), 1.0));
        });
        assert_eq!(batch_bailout(), 0.5, "binding must be restored on exit");
        set_bailout_override(None);
        assert_eq!(batch_bailout(), DEFAULT_BAILOUT);
    }

    #[test]
    #[should_panic(expected = "bail-out fraction must be in 0.0..=1.0")]
    fn out_of_range_bailout_override_rejected() {
        set_bailout_override(Some(2.0));
    }

    #[test]
    fn a_fired_token_cancels_before_any_trial_runs() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        for threads in [1, 3] {
            let err = with_threads(threads, || {
                run_trials_cancellable(
                    &[1u8, 2, 3],
                    || (),
                    |_, &t, _| -> u8 { panic!("trial {t} ran after cancellation") },
                    Some(&token),
                )
            });
            assert_eq!(err, Err(Cancelled), "{threads} threads");
        }
    }

    #[test]
    fn cancelling_midway_stops_the_remaining_trials() {
        use std::sync::atomic::AtomicUsize;
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let trials: Vec<usize> = (0..1000).collect();
        let err = with_threads(1, || {
            run_trials_cancellable(
                &trials,
                || (),
                |_, &t, _| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if t == 4 {
                        token.cancel();
                    }
                },
                Some(&token),
            )
        });
        assert_eq!(err, Err(Cancelled));
        assert_eq!(ran.load(Ordering::SeqCst), 5, "serial path stops at once");
    }

    #[test]
    fn no_token_matches_run_trials_exactly() {
        let trials: Vec<usize> = (0..50).collect();
        let plain = with_threads(2, || run_trials(&trials, || (), |_, &t, _| t * 7));
        let cancellable = with_threads(2, || {
            run_trials_cancellable(&trials, || (), |_, &t, _| t * 7, None)
        });
        assert_eq!(cancellable.as_deref(), Ok(plain.as_slice()));
    }
}
