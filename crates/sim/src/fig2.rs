//! Experiment E1: Fig. 2 — SNR versus the bit position of an injected
//! permanent error.

use dream_core::{NoProtection, ProtectedMemory};
use dream_dsp::{samples_to_f64, snr_db, AppKind, BiomedicalApp};
use dream_ecg::Database;
use dream_mem::{FaultMap, StuckAt};

use crate::campaign::{
    banked_geometry, cap_snr, fault_seed, record_suite, reference_outputs, ProtectedStorage,
};
use crate::exec;

/// Configuration of the Fig. 2 characterization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig2Config {
    /// Input window length in samples.
    pub window: usize,
    /// Number of ECG records averaged per point ("different ECG signals
    /// with different pathologies", §III).
    pub records: usize,
    /// Applications to characterize.
    pub apps: Vec<AppKind>,
    /// Fault locations (buffer words) tried per record; each point averages
    /// `records × fault_trials` runs.
    pub fault_trials: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            window: 1024,
            records: Database::SUITE_SIZE,
            apps: AppKind::all().to_vec(),
            fault_trials: 4,
        }
    }
}

/// One point of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig2Row {
    /// Application under test.
    pub app: AppKind,
    /// Polarity of the injected stuck-at fault.
    pub stuck: StuckAt,
    /// Bit position (0 = LSB … 15 = MSB) of the injected stuck-at cell.
    pub bit: u32,
    /// Output SNR (Formula 1) in dB, averaged over the record suite.
    pub snr_db: f64,
}

/// Reproduces Fig. 2: "we successively set to '1' and '0' each bit located
/// on the positions 0 to 15 of the 16-bits data buffers" (§III), with no
/// EMT, measuring the output SNR against the double-precision reference.
///
/// Each injection is a **single stuck-at cell**: one buffer word's bit `b`
/// is forced, the application runs, and the SNR is averaged over records
/// and fault locations. (Forcing bit `b` of *every* word simultaneously
/// would swamp even LSB positions with error power and is inconsistent
/// with the tolerances the paper reads off the figure — CS passing 35 dB
/// with faults up to bit 10 requires the single-cell reading.)
pub fn run_fig2(cfg: &Fig2Config) -> Vec<Fig2Row> {
    let records = record_suite(cfg.window, cfg.records);
    // Shared read-only state, hoisted out of the trial loop: one app
    // instance per kind (for footprints and references) and the
    // double-precision references per (app, record).
    let apps: Vec<Box<dyn BiomedicalApp>> =
        cfg.apps.iter().map(|k| k.instantiate(cfg.window)).collect();
    let references: Vec<Vec<Vec<f64>>> = apps
        .iter()
        .map(|app| reference_outputs(&**app, &records))
        .collect();

    // Flatten the nested sweep into independent trial descriptors, one per
    // (app, polarity, bit, record, fault location) — the order mirrors the
    // historical nested loops so the merged aggregation below reproduces
    // the serial results bit for bit.
    struct Trial {
        app: usize,
        stuck: StuckAt,
        bit: u32,
        record: usize,
        fault_trial: usize,
    }
    let mut trials = Vec::new();
    for app in 0..cfg.apps.len() {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            for bit in 0..16u32 {
                for record in 0..records.len() {
                    for fault_trial in 0..cfg.fault_trials {
                        trials.push(Trial {
                            app,
                            stuck,
                            bit,
                            record,
                            fault_trial,
                        });
                    }
                }
            }
        }
    }

    // Worker arena: per app, a reusable unprotected memory (monomorphized
    // over `NoProtection`, so the hot access path has no codec dispatch)
    // and a fault-map buffer, plus the app's word count for fault
    // placement.
    struct AppArena {
        app: Box<dyn BiomedicalApp>,
        mem: ProtectedMemory<NoProtection>,
        map: FaultMap,
        words: usize,
    }
    let scratch = || -> Vec<AppArena> {
        cfg.apps
            .iter()
            .map(|k| {
                let app = k.instantiate(cfg.window);
                let words = app.memory_words();
                let geometry = banked_geometry(words);
                AppArena {
                    app,
                    mem: ProtectedMemory::with_codec(NoProtection::new(), geometry),
                    map: FaultMap::empty(geometry.words(), 16),
                    words,
                }
            })
            .collect()
    };

    let snrs = exec::run_trials(&trials, scratch, |arenas, t, _| {
        let arena = &mut arenas[t.app];
        // One faulty cell at a deterministic pseudo-random location in the
        // app's buffer footprint. The location depends only on (record,
        // trial) — *not* on the bit or polarity — so every point of the
        // curve stresses the same cells and the bit axis is a paired
        // comparison, as when profiling one physical die.
        let seed = fault_seed(0xF162, t.record, t.fault_trial);
        let word = (seed % arena.words as u64) as usize;
        arena.map.clear();
        arena.map.inject(word, t.bit, t.stuck);
        arena.mem.reset_with_fault_map(&arena.map);
        let out = {
            let mut storage = ProtectedStorage::new(&mut arena.mem);
            arena.app.run(&records[t.record].samples, &mut storage)
        };
        cap_snr(snr_db(&references[t.app][t.record], &samples_to_f64(&out)))
    });

    // Deterministic merge: trials of one curve point are contiguous, so
    // each point averages its own chunk in trial order.
    let runs_per_point = records.len() * cfg.fault_trials;
    let mut rows = Vec::new();
    let mut next = 0usize;
    for &app_kind in &cfg.apps {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            for bit in 0..16u32 {
                let point = &snrs[next..next + runs_per_point];
                next += runs_per_point;
                rows.push(Fig2Row {
                    app: app_kind,
                    stuck,
                    bit,
                    snr_db: point.iter().sum::<f64>() / runs_per_point as f64,
                });
            }
        }
    }
    rows
}

/// The §III claim for compressed sensing: the highest bit position whose
/// injected fault still leaves the output above `threshold_db` (35 dB for
/// multi-lead ECG reconstruction, 40 dB for single-lead).
///
/// Returns `(stuck_at_0_limit, stuck_at_1_limit)`; `None` means even the
/// LSB violates the threshold.
pub fn cs_tolerance(rows: &[Fig2Row], threshold_db: f64) -> (Option<u32>, Option<u32>) {
    let limit = |stuck: StuckAt| {
        let mut curve: Vec<(u32, f64)> = rows
            .iter()
            .filter(|r| r.app == AppKind::CompressedSensing && r.stuck == stuck)
            .map(|r| (r.bit, r.snr_db))
            .collect();
        curve.sort_by_key(|&(bit, _)| bit);
        // The paper's phrasing is a contiguous range "from 0 to N": walk up
        // from the LSB and stop at the first violating position.
        let mut best = None;
        for (bit, snr) in curve {
            if snr >= threshold_db {
                best = Some(bit);
            } else {
                break;
            }
        }
        best
    };
    (limit(StuckAt::Zero), limit(StuckAt::One))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(apps: Vec<AppKind>) -> Fig2Config {
        Fig2Config {
            window: 512,
            records: 2,
            apps,
            fault_trials: 4,
        }
    }

    #[test]
    fn msb_errors_hurt_more_than_lsb() {
        // The headline finding of §III: SNR decreases monotonically-ish as
        // the stuck bit moves toward the MSB.
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for stuck in [StuckAt::Zero, StuckAt::One] {
            assert!(
                snr_at(stuck, 1) > snr_at(stuck, 14) + 20.0,
                "{stuck:?}: LSB {} vs MSB {}",
                snr_at(stuck, 1),
                snr_at(stuck, 14)
            );
        }
    }

    #[test]
    fn stuck_at_one_msb_is_milder_for_cs() {
        // §III: mostly-negative samples hide stuck-at-1 MSB faults.
        let rows = run_fig2(&small_cfg(vec![AppKind::CompressedSensing]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for bit in [13u32, 14, 15] {
            assert!(
                snr_at(StuckAt::One, bit) > snr_at(StuckAt::Zero, bit),
                "bit {bit}: sa1 {} should beat sa0 {}",
                snr_at(StuckAt::One, bit),
                snr_at(StuckAt::Zero, bit)
            );
        }
    }

    #[test]
    fn cs_tolerance_extraction_works() {
        let mk = |bit: u32, stuck: StuckAt, snr: f64| Fig2Row {
            app: AppKind::CompressedSensing,
            stuck,
            bit,
            snr_db: snr,
        };
        let rows: Vec<Fig2Row> = (0..16)
            .map(|b| mk(b, StuckAt::Zero, if b <= 10 { 50.0 } else { 20.0 }))
            .chain((0..16).map(|b| mk(b, StuckAt::One, if b <= 12 { 50.0 } else { 20.0 })))
            .collect();
        let (sa0, sa1) = cs_tolerance(&rows, 35.0);
        assert_eq!(sa0, Some(10));
        assert_eq!(sa1, Some(12));
    }

    #[test]
    fn row_count_is_apps_by_polarity_by_bits() {
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt, AppKind::CompressedSensing]));
        assert_eq!(rows.len(), 2 * 2 * 16);
    }
}
