//! Experiment E1: Fig. 2 — SNR versus the bit position of an injected
//! permanent error.
//!
//! Since the scenario engine landed this module is a thin preset
//! constructor ([`Fig2Config::to_scenario`]) plus row-typed
//! post-processing ([`Fig2Row`], [`cs_tolerance`]) over the engine's
//! shared [`crate::scenario::ScenarioOutcome`]; the sweep itself executes
//! in [`crate::scenario::engine`].

use dream_dsp::AppKind;
use dream_ecg::Database;
use dream_mem::StuckAt;

use crate::scenario::{
    registry, CampaignRunner, FaultSpec, Grid, Kind, OutcomeData, Scenario, SinkSpec,
};

/// Configuration of the Fig. 2 characterization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig2Config {
    /// Input window length in samples.
    pub window: usize,
    /// Number of ECG records averaged per point ("different ECG signals
    /// with different pathologies", §III).
    pub records: usize,
    /// Applications to characterize.
    pub apps: Vec<AppKind>,
    /// Fault locations (buffer words) tried per record; each point averages
    /// `records × fault_trials` runs.
    pub fault_trials: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            window: 1024,
            records: Database::SUITE_SIZE,
            apps: AppKind::all().to_vec(),
            fault_trials: 4,
        }
    }
}

impl Fig2Config {
    /// Compiles this configuration to its scenario spec — the same
    /// campaign `dream run fig2` executes, with the historical seed and
    /// the unprotected-memory technique set.
    pub fn to_scenario(&self) -> Scenario {
        Scenario {
            name: "fig2".into(),
            title: String::new(),
            kind: Kind::SnrSweep,
            window: self.window,
            records: self.records,
            trials: self.fault_trials,
            apps: self.apps.clone(),
            emts: vec![dream_core::EmtKind::None],
            grid: Grid::BitPosition((0..16).collect()),
            fault: FaultSpec::date16(),
            fixed_voltage: dream_mem::BerModel::NOMINAL_VOLTAGE,
            noise_scale: 1.0,
            scrambler_key: None,
            tolerance_db: None,
            ber_slopes: Vec::new(),
            seed: registry::FIG2_SEED,
            sink: SinkSpec::default(),
            point_offset: 0,
        }
    }
}

/// One point of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig2Row {
    /// Application under test.
    pub app: AppKind,
    /// Polarity of the injected stuck-at fault.
    pub stuck: StuckAt,
    /// Bit position (0 = LSB … 15 = MSB) of the injected stuck-at cell.
    pub bit: u32,
    /// Output SNR (Formula 1) in dB, averaged over the record suite.
    pub snr_db: f64,
}

/// Reproduces Fig. 2: "we successively set to '1' and '0' each bit located
/// on the positions 0 to 15 of the 16-bits data buffers" (§III), with no
/// EMT, measuring the output SNR against the double-precision reference.
///
/// Each injection is a **single stuck-at cell**: one buffer word's bit `b`
/// is forced, the application runs, and the SNR is averaged over records
/// and fault locations. (Forcing bit `b` of *every* word simultaneously
/// would swamp even LSB positions with error power and is inconsistent
/// with the tolerances the paper reads off the figure — CS passing 35 dB
/// with faults up to bit 10 requires the single-cell reading.)
///
/// # Panics
///
/// Panics if the configuration fails scenario validation (empty app list,
/// window below 256).
pub fn run_fig2(cfg: &Fig2Config) -> Vec<Fig2Row> {
    let outcome = CampaignRunner::new(cfg.to_scenario())
        .run_discarding()
        .expect("fig2 config compiles to a valid scenario");
    match outcome.data {
        OutcomeData::Injection(rows) => rows
            .into_iter()
            .map(|r| Fig2Row {
                app: r.app,
                stuck: r.stuck,
                bit: r.bit,
                snr_db: r.snr_db,
            })
            .collect(),
        other => unreachable!("bit-position scenarios yield injection rows, got {other:?}"),
    }
}

/// The §III claim for compressed sensing: the highest bit position whose
/// injected fault still leaves the output above `threshold_db` (35 dB for
/// multi-lead ECG reconstruction, 40 dB for single-lead).
///
/// Returns `(stuck_at_0_limit, stuck_at_1_limit)`; `None` means even the
/// LSB violates the threshold.
pub fn cs_tolerance(rows: &[Fig2Row], threshold_db: f64) -> (Option<u32>, Option<u32>) {
    let limit = |stuck: StuckAt| {
        let mut curve: Vec<(u32, f64)> = rows
            .iter()
            .filter(|r| r.app == AppKind::CompressedSensing && r.stuck == stuck)
            .map(|r| (r.bit, r.snr_db))
            .collect();
        curve.sort_by_key(|&(bit, _)| bit);
        // The paper's phrasing is a contiguous range "from 0 to N": walk up
        // from the LSB and stop at the first violating position.
        let mut best = None;
        for (bit, snr) in curve {
            if snr >= threshold_db {
                best = Some(bit);
            } else {
                break;
            }
        }
        best
    };
    (limit(StuckAt::Zero), limit(StuckAt::One))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(apps: Vec<AppKind>) -> Fig2Config {
        Fig2Config {
            window: 512,
            records: 2,
            apps,
            fault_trials: 4,
        }
    }

    #[test]
    fn msb_errors_hurt_more_than_lsb() {
        // The headline finding of §III: SNR decreases monotonically-ish as
        // the stuck bit moves toward the MSB.
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for stuck in [StuckAt::Zero, StuckAt::One] {
            assert!(
                snr_at(stuck, 1) > snr_at(stuck, 14) + 20.0,
                "{stuck:?}: LSB {} vs MSB {}",
                snr_at(stuck, 1),
                snr_at(stuck, 14)
            );
        }
    }

    #[test]
    fn stuck_at_one_msb_is_milder_for_cs() {
        // §III: mostly-negative samples hide stuck-at-1 MSB faults.
        let rows = run_fig2(&small_cfg(vec![AppKind::CompressedSensing]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for bit in [13u32, 14, 15] {
            assert!(
                snr_at(StuckAt::One, bit) > snr_at(StuckAt::Zero, bit),
                "bit {bit}: sa1 {} should beat sa0 {}",
                snr_at(StuckAt::One, bit),
                snr_at(StuckAt::Zero, bit)
            );
        }
    }

    #[test]
    fn cs_tolerance_extraction_works() {
        let mk = |bit: u32, stuck: StuckAt, snr: f64| Fig2Row {
            app: AppKind::CompressedSensing,
            stuck,
            bit,
            snr_db: snr,
        };
        let rows: Vec<Fig2Row> = (0..16)
            .map(|b| mk(b, StuckAt::Zero, if b <= 10 { 50.0 } else { 20.0 }))
            .chain((0..16).map(|b| mk(b, StuckAt::One, if b <= 12 { 50.0 } else { 20.0 })))
            .collect();
        let (sa0, sa1) = cs_tolerance(&rows, 35.0);
        assert_eq!(sa0, Some(10));
        assert_eq!(sa1, Some(12));
    }

    #[test]
    fn row_count_is_apps_by_polarity_by_bits() {
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt, AppKind::CompressedSensing]));
        assert_eq!(rows.len(), 2 * 2 * 16);
    }

    #[test]
    fn config_scenario_matches_registry_preset() {
        // The registry's full-scale fig2 preset and the historical config
        // default must compile to the same campaign (modulo the bin's
        // higher default trial count and the registry title).
        let mut from_cfg = Fig2Config {
            fault_trials: 8,
            ..Default::default()
        }
        .to_scenario();
        let preset = registry::get("fig2", false).unwrap();
        from_cfg.title.clone_from(&preset.title);
        assert_eq!(from_cfg, preset);
    }
}
