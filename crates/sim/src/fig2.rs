//! Experiment E1: Fig. 2 — SNR versus the bit position of an injected
//! permanent error.

use dream_core::{EmtKind, ProtectedMemory};
use dream_dsp::{samples_to_f64, snr_db, AppKind};
use dream_ecg::Database;
use dream_mem::{FaultMap, MemGeometry, StuckAt};

use crate::campaign::{cap_snr, fault_seed, ProtectedStorage};

/// Configuration of the Fig. 2 characterization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig2Config {
    /// Input window length in samples.
    pub window: usize,
    /// Number of ECG records averaged per point ("different ECG signals
    /// with different pathologies", §III).
    pub records: usize,
    /// Applications to characterize.
    pub apps: Vec<AppKind>,
    /// Fault locations (buffer words) tried per record; each point averages
    /// `records × fault_trials` runs.
    pub fault_trials: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            window: 1024,
            records: Database::SUITE_SIZE,
            apps: AppKind::all().to_vec(),
            fault_trials: 4,
        }
    }
}

/// One point of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig2Row {
    /// Application under test.
    pub app: AppKind,
    /// Polarity of the injected stuck-at fault.
    pub stuck: StuckAt,
    /// Bit position (0 = LSB … 15 = MSB) of the injected stuck-at cell.
    pub bit: u32,
    /// Output SNR (Formula 1) in dB, averaged over the record suite.
    pub snr_db: f64,
}

/// Reproduces Fig. 2: "we successively set to '1' and '0' each bit located
/// on the positions 0 to 15 of the 16-bits data buffers" (§III), with no
/// EMT, measuring the output SNR against the double-precision reference.
///
/// Each injection is a **single stuck-at cell**: one buffer word's bit `b`
/// is forced, the application runs, and the SNR is averaged over records
/// and fault locations. (Forcing bit `b` of *every* word simultaneously
/// would swamp even LSB positions with error power and is inconsistent
/// with the tolerances the paper reads off the figure — CS passing 35 dB
/// with faults up to bit 10 requires the single-cell reading.)
pub fn run_fig2(cfg: &Fig2Config) -> Vec<Fig2Row> {
    let records = Database::date16_suite(cfg.window);
    let records = &records[..cfg.records.min(records.len())];
    let mut rows = Vec::new();
    for &app_kind in &cfg.apps {
        let app = app_kind.instantiate(cfg.window);
        let words = app.memory_words();
        let geometry = pick_geometry(words);
        let references: Vec<Vec<f64>> = records
            .iter()
            .map(|r| app.run_reference(&r.samples))
            .collect();
        for stuck in [StuckAt::Zero, StuckAt::One] {
            for bit in 0..16u32 {
                let mut snr_sum = 0.0;
                let mut runs = 0usize;
                for (ri, record) in records.iter().enumerate() {
                    for trial in 0..cfg.fault_trials {
                        // One faulty cell at a deterministic pseudo-random
                        // location in the app's buffer footprint. The
                        // location depends only on (record, trial) — *not*
                        // on the bit or polarity — so every point of the
                        // curve stresses the same cells and the bit axis is
                        // a paired comparison, as when profiling one
                        // physical die.
                        let seed = fault_seed(0xF162, ri, trial);
                        let word = (seed % words as u64) as usize;
                        let mut map = FaultMap::empty(geometry.words(), 16);
                        map.inject(word, bit, stuck);
                        let mut mem =
                            ProtectedMemory::with_fault_map(EmtKind::None, geometry, &map);
                        let out = {
                            let mut storage = ProtectedStorage::new(&mut mem);
                            app.run(&record.samples, &mut storage)
                        };
                        snr_sum += cap_snr(snr_db(&references[ri], &samples_to_f64(&out)));
                        runs += 1;
                    }
                }
                rows.push(Fig2Row {
                    app: app_kind,
                    stuck,
                    bit,
                    snr_db: snr_sum / runs as f64,
                });
            }
        }
    }
    rows
}

/// Smallest banked geometry that fits `words` (the characterization does
/// not need the full 32 kB array; a right-sized one keeps tests fast).
fn pick_geometry(words: usize) -> MemGeometry {
    let banks = 16;
    let rounded = words.div_ceil(banks) * banks;
    MemGeometry::new(rounded, 16, banks)
}

/// The §III claim for compressed sensing: the highest bit position whose
/// injected fault still leaves the output above `threshold_db` (35 dB for
/// multi-lead ECG reconstruction, 40 dB for single-lead).
///
/// Returns `(stuck_at_0_limit, stuck_at_1_limit)`; `None` means even the
/// LSB violates the threshold.
pub fn cs_tolerance(rows: &[Fig2Row], threshold_db: f64) -> (Option<u32>, Option<u32>) {
    let limit = |stuck: StuckAt| {
        let mut curve: Vec<(u32, f64)> = rows
            .iter()
            .filter(|r| r.app == AppKind::CompressedSensing && r.stuck == stuck)
            .map(|r| (r.bit, r.snr_db))
            .collect();
        curve.sort_by_key(|&(bit, _)| bit);
        // The paper's phrasing is a contiguous range "from 0 to N": walk up
        // from the LSB and stop at the first violating position.
        let mut best = None;
        for (bit, snr) in curve {
            if snr >= threshold_db {
                best = Some(bit);
            } else {
                break;
            }
        }
        best
    };
    (limit(StuckAt::Zero), limit(StuckAt::One))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(apps: Vec<AppKind>) -> Fig2Config {
        Fig2Config {
            window: 512,
            records: 2,
            apps,
            fault_trials: 4,
        }
    }

    #[test]
    fn msb_errors_hurt_more_than_lsb() {
        // The headline finding of §III: SNR decreases monotonically-ish as
        // the stuck bit moves toward the MSB.
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for stuck in [StuckAt::Zero, StuckAt::One] {
            assert!(
                snr_at(stuck, 1) > snr_at(stuck, 14) + 20.0,
                "{stuck:?}: LSB {} vs MSB {}",
                snr_at(stuck, 1),
                snr_at(stuck, 14)
            );
        }
    }

    #[test]
    fn stuck_at_one_msb_is_milder_for_cs() {
        // §III: mostly-negative samples hide stuck-at-1 MSB faults.
        let rows = run_fig2(&small_cfg(vec![AppKind::CompressedSensing]));
        let snr_at = |stuck: StuckAt, bit: u32| {
            rows.iter()
                .find(|r| r.stuck == stuck && r.bit == bit)
                .unwrap()
                .snr_db
        };
        for bit in [13u32, 14, 15] {
            assert!(
                snr_at(StuckAt::One, bit) > snr_at(StuckAt::Zero, bit),
                "bit {bit}: sa1 {} should beat sa0 {}",
                snr_at(StuckAt::One, bit),
                snr_at(StuckAt::Zero, bit)
            );
        }
    }

    #[test]
    fn cs_tolerance_extraction_works() {
        let mk = |bit: u32, stuck: StuckAt, snr: f64| Fig2Row {
            app: AppKind::CompressedSensing,
            stuck,
            bit,
            snr_db: snr,
        };
        let rows: Vec<Fig2Row> = (0..16)
            .map(|b| mk(b, StuckAt::Zero, if b <= 10 { 50.0 } else { 20.0 }))
            .chain((0..16).map(|b| mk(b, StuckAt::One, if b <= 12 { 50.0 } else { 20.0 })))
            .collect();
        let (sa0, sa1) = cs_tolerance(&rows, 35.0);
        assert_eq!(sa0, Some(10));
        assert_eq!(sa1, Some(12));
    }

    #[test]
    fn row_count_is_apps_by_polarity_by_bits() {
        let rows = run_fig2(&small_cfg(vec![AppKind::Dwt, AppKind::CompressedSensing]));
        assert_eq!(rows.len(), 2 * 2 * 16);
    }
}
