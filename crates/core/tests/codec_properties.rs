//! Property-based tests for the EMT codecs — the invariants the paper's
//! §IV correctness argument rests on.

use dream_core::{DecodeOutcome, Dream, EccSecDed, EmtCodec, EmtKind, EvenParity, NoProtection};
use proptest::prelude::*;

proptest! {
    /// Every codec is the identity on fault-free storage.
    #[test]
    fn all_codecs_round_trip(word in any::<i16>()) {
        for kind in EmtKind::all() {
            let c = kind.codec();
            let e = c.encode(word);
            let d = c.decode(e.code, e.side);
            prop_assert_eq!(d.word, word);
        }
    }

    /// DREAM corrects *any* error pattern confined to the protected MSB
    /// region (the sign run plus the guaranteed inverted-sign bit).
    #[test]
    fn dream_corrects_protected_region(word in any::<i16>(), pattern in any::<u16>()) {
        let c = Dream::new();
        let protected = Dream::protected_bits(word);
        let region: u32 = if protected >= 16 {
            0xFFFF
        } else {
            (0xFFFF_u32 << (16 - protected)) & 0xFFFF
        };
        let flips = u32::from(pattern) & region;
        let e = c.encode(word);
        let d = c.decode(e.code ^ flips, e.side);
        prop_assert_eq!(d.word, word);
    }

    /// DREAM never *introduces* errors: bits outside the protected region
    /// pass through exactly as stored (faulty or not).
    #[test]
    fn dream_is_transparent_below_the_mask(word in any::<i16>(), pattern in any::<u16>()) {
        let c = Dream::new();
        let protected = Dream::protected_bits(word);
        let region: u32 = if protected >= 16 {
            0xFFFF
        } else {
            (0xFFFF_u32 << (16 - protected)) & 0xFFFF
        };
        let flips = u32::from(pattern) & !region & 0xFFFF;
        let e = c.encode(word);
        let d = c.decode(e.code ^ flips, e.side);
        prop_assert_eq!(d.word as u16, (word as u16) ^ (flips as u16));
    }

    /// ECC SEC/DED corrects every single-bit error in the 22-bit codeword.
    #[test]
    fn ecc_corrects_any_single_error(word in any::<i16>(), bit in 0u32..22) {
        let c = EccSecDed::new();
        let e = c.encode(word);
        let d = c.decode(e.code ^ (1 << bit), e.side);
        prop_assert_eq!(d.word, word);
        prop_assert_eq!(d.outcome, DecodeOutcome::Corrected);
    }

    /// ECC SEC/DED flags every double-bit error instead of miscorrecting.
    #[test]
    fn ecc_detects_any_double_error(word in any::<i16>(), b1 in 0u32..22, b2 in 0u32..22) {
        prop_assume!(b1 != b2);
        let c = EccSecDed::new();
        let e = c.encode(word);
        let d = c.decode(e.code ^ (1 << b1) ^ (1 << b2), e.side);
        prop_assert_eq!(d.outcome, DecodeOutcome::DetectedUncorrectable);
    }

    /// Distinct data words map to codewords at Hamming distance >= 4
    /// (the defining property of a SEC/DED code).
    #[test]
    fn ecc_minimum_distance_four(a in any::<i16>(), b in any::<i16>()) {
        prop_assume!(a != b);
        let c = EccSecDed::new();
        let dist = (c.encode(a).code ^ c.encode(b).code).count_ones();
        prop_assert!(dist >= 4, "distance {} for {} vs {}", dist, a, b);
    }

    /// Parity flags all odd-weight corruptions and misses all even-weight
    /// ones — exactly the contract of a single parity bit.
    #[test]
    fn parity_detects_odd_weight(word in any::<i16>(), pattern in 1u32..(1 << 17)) {
        let c = EvenParity::new();
        let e = c.encode(word);
        let d = c.decode(e.code ^ pattern, e.side);
        if pattern.count_ones() % 2 == 1 {
            prop_assert_eq!(d.outcome, DecodeOutcome::DetectedUncorrectable);
        } else {
            prop_assert_eq!(d.outcome, DecodeOutcome::Clean);
        }
    }

    /// No-protection reads back exactly the stored (possibly corrupt) bits.
    #[test]
    fn none_reads_raw_bits(word in any::<i16>(), pattern in any::<u16>()) {
        let c = NoProtection::new();
        let e = c.encode(word);
        let d = c.decode(e.code ^ u32::from(pattern), e.side);
        prop_assert_eq!(d.word as u16, (word as u16) ^ pattern);
    }

    /// DREAM's protected-bit count is monotone in magnitude: smaller
    /// |value| -> at least as many protected bits (the §IV observation that
    /// small samples get the most protection).
    #[test]
    fn dream_protection_grows_as_magnitude_shrinks(v in any::<i16>()) {
        prop_assume!(v != i16::MIN);
        let big = Dream::protected_bits(v);
        let small = Dream::protected_bits(v / 2);
        prop_assert!(small >= big);
    }
}
