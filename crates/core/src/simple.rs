//! Trivial baselines: raw storage and detect-only parity.

use dream_energy::{Gate, Netlist};

use crate::batch::BatchDecode;
use crate::emt::{DecodeOutcome, Decoded, EmtCodec, EmtKind, Encoded};

/// Raw, unprotected storage — the paper's Fig. 4a and the energy baseline
/// every overhead in §VI-B is quoted against.
///
/// ```
/// use dream_core::{NoProtection, EmtCodec};
/// let c = NoProtection::new();
/// let e = c.encode(-7);
/// assert_eq!(c.decode(e.code, e.side).word, -7);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoProtection {
    _private: (),
}

impl NoProtection {
    /// Creates the codec.
    pub fn new() -> Self {
        NoProtection { _private: () }
    }
}

impl EmtCodec for NoProtection {
    fn name(&self) -> &'static str {
        "no protection"
    }

    fn kind(&self) -> EmtKind {
        EmtKind::None
    }

    fn code_width(&self) -> u32 {
        16
    }

    fn side_bits(&self) -> u32 {
        0
    }

    #[inline]
    fn encode(&self, word: i16) -> Encoded {
        Encoded {
            code: u32::from(word as u16),
            side: 0,
        }
    }

    #[inline]
    fn decode(&self, code: u32, _side: u16) -> Decoded {
        Decoded {
            word: (code & 0xFFFF) as u16 as i16,
            outcome: DecodeOutcome::Clean,
        }
    }

    // Raw storage in plane form is the identity: the 16 data planes pass
    // straight through and no lane ever reports an outcome.
    #[inline]
    fn decode_batch(&self, planes: &[u64], _side: u16) -> BatchDecode {
        assert_eq!(planes.len(), 16, "one plane per code bit");
        let mut out = BatchDecode::zero();
        out.data.copy_from_slice(planes);
        out
    }

    fn encoder_netlist(&self) -> Netlist {
        Netlist::new("passthrough encoder")
    }

    fn decoder_netlist(&self) -> Netlist {
        Netlist::new("passthrough decoder")
    }
}

/// Detect-only even parity over the 16 data bits (17-bit codeword).
///
/// Not part of the paper's comparison; included as an extension point on
/// the EMT axis: it shows what pure detection (no correction, no side
/// memory) buys, which is useful in the ablation benches.
///
/// ```
/// use dream_core::{EvenParity, EmtCodec, DecodeOutcome};
/// let c = EvenParity::new();
/// let e = c.encode(3);
/// assert_eq!(c.decode(e.code ^ 1, e.side).outcome, DecodeOutcome::DetectedUncorrectable);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvenParity {
    _private: (),
}

impl EvenParity {
    /// Creates the codec.
    pub fn new() -> Self {
        EvenParity { _private: () }
    }
}

impl EmtCodec for EvenParity {
    fn name(&self) -> &'static str {
        "parity"
    }

    fn kind(&self) -> EmtKind {
        EmtKind::Parity
    }

    fn code_width(&self) -> u32 {
        17
    }

    fn side_bits(&self) -> u32 {
        0
    }

    // Parity is already in mask/popcount form: encode and decode are one
    // `count_ones` each over the (implicit all-ones) coverage mask — the
    // shape the wider ECC kernels were rewritten into.
    #[inline]
    fn encode(&self, word: i16) -> Encoded {
        let data = u32::from(word as u16);
        let parity = data.count_ones() & 1;
        Encoded {
            code: data | (parity << 16),
            side: 0,
        }
    }

    #[inline]
    fn decode(&self, code: u32, _side: u16) -> Decoded {
        let code = code & 0x1_FFFF;
        let word = (code & 0xFFFF) as u16 as i16;
        let outcome = if code.count_ones() & 1 == 0 {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::DetectedUncorrectable
        };
        Decoded { word, outcome }
    }

    // Across lanes, the scalar `count_ones() & 1` becomes one XOR
    // reduction over the 17 planes: bit *l* of the fold is lane *l*'s
    // codeword parity, i.e. exactly its detect-only verdict.
    #[inline]
    fn decode_batch(&self, planes: &[u64], _side: u16) -> BatchDecode {
        assert_eq!(planes.len(), 17, "one plane per code bit");
        let mut out = BatchDecode::zero();
        out.data.copy_from_slice(&planes[..16]);
        out.uncorrectable = planes.iter().fold(0, |acc, &p| acc ^ p);
        out
    }

    fn encoder_netlist(&self) -> Netlist {
        let mut n = Netlist::new("parity encoder");
        n.add(Gate::Xor2, 15);
        n
    }

    fn decoder_netlist(&self) -> Netlist {
        let mut n = Netlist::new("parity decoder");
        n.add(Gate::Xor2, 16);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_protection_is_transparent() {
        let c = NoProtection::new();
        for w in [-32768i16, -1, 0, 1, 32767] {
            let e = c.encode(w);
            assert_eq!(e.code, u32::from(w as u16));
            assert_eq!(c.decode(e.code, 0).word, w);
        }
    }

    #[test]
    fn no_protection_cannot_see_faults() {
        let c = NoProtection::new();
        let e = c.encode(0);
        let d = c.decode(e.code ^ 0x8000, 0);
        assert_eq!(d.word, i16::MIN);
        assert_eq!(d.outcome, DecodeOutcome::Clean);
    }

    #[test]
    fn parity_flags_odd_flip_counts() {
        let c = EvenParity::new();
        let e = c.encode(0x1234);
        assert_eq!(c.decode(e.code, 0).outcome, DecodeOutcome::Clean);
        assert_eq!(
            c.decode(e.code ^ 0b1, 0).outcome,
            DecodeOutcome::DetectedUncorrectable
        );
        // Two flips cancel in a single parity bit: undetected (by design).
        assert_eq!(c.decode(e.code ^ 0b11, 0).outcome, DecodeOutcome::Clean);
    }

    #[test]
    fn parity_bit_position_is_bit_16() {
        let c = EvenParity::new();
        assert_eq!(c.encode(1).code >> 16, 1);
        assert_eq!(c.encode(3).code >> 16, 0);
    }
}
