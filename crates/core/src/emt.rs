//! The error-mitigation-technique abstraction.

use std::fmt;

use dream_energy::Netlist;

use crate::{Dream, EccSecDed, EvenParity, NoProtection};

/// What an EMT stores for one 16-bit data word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Encoded {
    /// Bits written to the (faulty, voltage-scaled) data array. Width is
    /// [`EmtCodec::code_width`] bits.
    pub code: u32,
    /// Bits written to the reliable side array (DREAM's sign + mask ID).
    /// Width is [`EmtCodec::side_bits`] bits; zero for in-array schemes.
    pub side: u16,
}

/// What an EMT's read path produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// The reconstructed data word.
    pub word: i16,
    /// What the decoder believes happened.
    pub outcome: DecodeOutcome,
}

/// Classification of a single decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The decoder saw no evidence of corruption.
    Clean,
    /// The decoder changed at least one bit while reconstructing.
    Corrected,
    /// The decoder detected corruption it cannot repair (ECC SEC/DED with a
    /// double error, parity with an odd flip count). The returned word is
    /// the best effort (raw data bits).
    DetectedUncorrectable,
}

/// An error mitigation technique for 16-bit words in a faulty memory.
///
/// Implementations are pure value transformations — the surrounding
/// [`ProtectedMemory`](crate::ProtectedMemory) owns storage, statistics and
/// energy accounting. The two netlist methods describe the hardware cost of
/// the write-path (encoder) and read-path (decoder) logic in gate
/// equivalents; `dream-energy` prices them.
pub trait EmtCodec {
    /// Human-readable technique name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// The selector this codec instantiates (lets the monomorphized
    /// [`ProtectedMemory`](crate::ProtectedMemory) report its technique
    /// without carrying a redundant field).
    fn kind(&self) -> EmtKind;

    /// Bits per word stored in the faulty data array (16 for raw storage,
    /// 22 for ECC SEC/DED, …).
    fn code_width(&self) -> u32;

    /// Bits per word stored in the reliable side array (5 for DREAM, 0 for
    /// in-array schemes).
    fn side_bits(&self) -> u32;

    /// Write path: derive what to store for `word`.
    fn encode(&self, word: i16) -> Encoded;

    /// Read path: reconstruct the word from possibly corrupted `code` bits
    /// and the (reliable) `side` bits.
    fn decode(&self, code: u32, side: u16) -> Decoded;

    /// Batched read path: decode 64 codewords at once, presented as
    /// `code_width` bit planes (bit *l* of `planes[p]` is bit *p* of lane
    /// *l*'s codeword), all sharing the same reliable `side` bits — the
    /// lane-per-trial layout of batched Monte-Carlo execution, where the
    /// side array is written identically by every trial.
    ///
    /// The default transposes and runs the scalar [`EmtCodec::decode`] per
    /// lane ([`crate::batch::scalar_decode_batch`]); codecs override it
    /// with SWAR kernels that must match the default bit for bit (pinned
    /// by differential proptests in each codec module).
    ///
    /// # Panics
    ///
    /// Panics if `planes` does not hold exactly `code_width` planes.
    fn decode_batch(&self, planes: &[u64], side: u16) -> crate::batch::BatchDecode {
        crate::batch::scalar_decode_batch(self, planes, side)
    }

    /// Gate-level structure of the encoder block.
    fn encoder_netlist(&self) -> Netlist;

    /// Gate-level structure of the decoder block.
    fn decoder_netlist(&self) -> Netlist;
}

/// The techniques evaluated in this reproduction.
///
/// `EmtKind` is the cheap, copyable selector the experiment harness sweeps
/// over; [`EmtKind::codec`] instantiates the actual codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EmtKind {
    /// Raw storage (paper Fig. 4a and the §VI energy baseline).
    None,
    /// Single even-parity bit, detect-only (extension beyond the paper).
    Parity,
    /// The paper's DREAM technique (Fig. 4b).
    Dream,
    /// ECC SEC/DED — extended Hamming (22,16) (Fig. 4c).
    EccSecDed,
}

impl EmtKind {
    /// All techniques, including the parity extension.
    pub fn all() -> [EmtKind; 4] {
        [
            EmtKind::None,
            EmtKind::Parity,
            EmtKind::Dream,
            EmtKind::EccSecDed,
        ]
    }

    /// The three techniques the paper's Fig. 4 compares.
    pub fn paper_set() -> [EmtKind; 3] {
        [EmtKind::None, EmtKind::Dream, EmtKind::EccSecDed]
    }

    /// Instantiates the codec.
    pub fn codec(self) -> AnyCodec {
        match self {
            EmtKind::None => AnyCodec::None(NoProtection::new()),
            EmtKind::Parity => AnyCodec::Parity(EvenParity::new()),
            EmtKind::Dream => AnyCodec::Dream(Dream::new()),
            EmtKind::EccSecDed => AnyCodec::Ecc(EccSecDed::new()),
        }
    }
}

impl fmt::Display for EmtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EmtKind::None => "no protection",
            EmtKind::Parity => "parity",
            EmtKind::Dream => "DREAM",
            EmtKind::EccSecDed => "ECC SEC/DED",
        };
        f.write_str(s)
    }
}

/// A closed sum of the codecs in this crate.
///
/// Using an enum instead of trait objects keeps campaign state `Clone` and
/// the dispatch exhaustive — adding a technique forces every experiment to
/// decide how to treat it.
#[derive(Clone, Debug)]
pub enum AnyCodec {
    /// Raw storage.
    None(NoProtection),
    /// Detect-only parity.
    Parity(EvenParity),
    /// The DREAM technique.
    Dream(Dream),
    /// Extended Hamming SEC/DED.
    Ecc(EccSecDed),
}

impl EmtCodec for AnyCodec {
    fn name(&self) -> &'static str {
        match self {
            AnyCodec::None(c) => c.name(),
            AnyCodec::Parity(c) => c.name(),
            AnyCodec::Dream(c) => c.name(),
            AnyCodec::Ecc(c) => c.name(),
        }
    }

    fn kind(&self) -> EmtKind {
        match self {
            AnyCodec::None(c) => c.kind(),
            AnyCodec::Parity(c) => c.kind(),
            AnyCodec::Dream(c) => c.kind(),
            AnyCodec::Ecc(c) => c.kind(),
        }
    }

    fn code_width(&self) -> u32 {
        match self {
            AnyCodec::None(c) => c.code_width(),
            AnyCodec::Parity(c) => c.code_width(),
            AnyCodec::Dream(c) => c.code_width(),
            AnyCodec::Ecc(c) => c.code_width(),
        }
    }

    fn side_bits(&self) -> u32 {
        match self {
            AnyCodec::None(c) => c.side_bits(),
            AnyCodec::Parity(c) => c.side_bits(),
            AnyCodec::Dream(c) => c.side_bits(),
            AnyCodec::Ecc(c) => c.side_bits(),
        }
    }

    #[inline]
    fn encode(&self, word: i16) -> Encoded {
        match self {
            AnyCodec::None(c) => c.encode(word),
            AnyCodec::Parity(c) => c.encode(word),
            AnyCodec::Dream(c) => c.encode(word),
            AnyCodec::Ecc(c) => c.encode(word),
        }
    }

    #[inline]
    fn decode(&self, code: u32, side: u16) -> Decoded {
        match self {
            AnyCodec::None(c) => c.decode(code, side),
            AnyCodec::Parity(c) => c.decode(code, side),
            AnyCodec::Dream(c) => c.decode(code, side),
            AnyCodec::Ecc(c) => c.decode(code, side),
        }
    }

    #[inline]
    fn decode_batch(&self, planes: &[u64], side: u16) -> crate::batch::BatchDecode {
        match self {
            AnyCodec::None(c) => c.decode_batch(planes, side),
            AnyCodec::Parity(c) => c.decode_batch(planes, side),
            AnyCodec::Dream(c) => c.decode_batch(planes, side),
            AnyCodec::Ecc(c) => c.decode_batch(planes, side),
        }
    }

    fn encoder_netlist(&self) -> Netlist {
        match self {
            AnyCodec::None(c) => c.encoder_netlist(),
            AnyCodec::Parity(c) => c.encoder_netlist(),
            AnyCodec::Dream(c) => c.encoder_netlist(),
            AnyCodec::Ecc(c) => c.encoder_netlist(),
        }
    }

    fn decoder_netlist(&self) -> Netlist {
        match self {
            AnyCodec::None(c) => c.decoder_netlist(),
            AnyCodec::Parity(c) => c.decoder_netlist(),
            AnyCodec::Dream(c) => c.decoder_netlist(),
            AnyCodec::Ecc(c) => c.decoder_netlist(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_codec_round_trips_clean_words() {
        for kind in EmtKind::all() {
            let codec = kind.codec();
            for word in [-32768i16, -1, 0, 1, 32767, 1234, -4321] {
                let enc = codec.encode(word);
                let dec = codec.decode(enc.code, enc.side);
                assert_eq!(dec.word, word, "{kind} failed on {word}");
                assert_ne!(dec.outcome, DecodeOutcome::DetectedUncorrectable);
            }
        }
    }

    #[test]
    fn widths_match_paper_formula() {
        // §V: 5 extra bits for DREAM (side), 6 for ECC (in-array).
        let dream = EmtKind::Dream.codec();
        assert_eq!(dream.code_width(), 16);
        assert_eq!(dream.side_bits(), 5);
        let ecc = EmtKind::EccSecDed.codec();
        assert_eq!(ecc.code_width(), 22);
        assert_eq!(ecc.side_bits(), 0);
        let none = EmtKind::None.codec();
        assert_eq!(none.code_width(), 16);
        assert_eq!(none.side_bits(), 0);
    }

    #[test]
    fn code_bits_never_exceed_32() {
        for kind in EmtKind::all() {
            let codec = kind.codec();
            assert!(codec.code_width() <= 32);
            let enc = codec.encode(-12345);
            if codec.code_width() < 32 {
                assert_eq!(enc.code >> codec.code_width(), 0, "{kind} leaks bits");
            }
        }
    }

    #[test]
    fn display_names_are_papers() {
        assert_eq!(EmtKind::Dream.to_string(), "DREAM");
        assert_eq!(EmtKind::EccSecDed.to_string(), "ECC SEC/DED");
    }
}
