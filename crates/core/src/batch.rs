//! Batched (lane-per-trial) decode results and per-trial bookkeeping for
//! bit-sliced Monte-Carlo execution.
//!
//! The campaign engine can run up to 64 trials of one grid point in
//! lockstep: all trials share a single clean computation pass, and at
//! every read of an address some trial corrupts, the codec decodes *all*
//! lanes at once from bit planes ([`EmtCodec::decode_batch`]). Exactness
//! is preserved by a divergence rule tracked in [`TrialBatch`]:
//!
//! * A lane whose decoded **word** equals the clean word behaves, from the
//!   application's point of view, exactly like the clean pass — the app
//!   reads the same values, computes the same outputs, and issues the same
//!   writes, so the lane's latched memory contents remain identical to the
//!   clean pass's forever. Only its per-read *outcome* classification
//!   (corrected / uncorrectable) may differ, and [`TrialBatch`] accumulates
//!   that as a signed delta against the clean pass's statistics.
//! * A lane whose decoded word *differs* from the clean word is **evicted**
//!   ([`TrialBatch::record_read`] drops it from the alive mask); the caller
//!   re-runs it on the ordinary scalar path from scratch. Batch output is
//!   therefore bit-identical to scalar output by construction.
//!
//! [`scalar_decode_batch`] is the transpose-and-decode reference that the
//! trait's default implementation uses and every SWAR override is pinned
//! against (the same oracle discipline as the codecs' `reference` test
//! modules).

use crate::emt::{DecodeOutcome, EmtCodec};
use crate::protected::AccessStats;

/// The decode of up to 64 codewords presented as bit planes: bit *l* of
/// every field describes lane (trial) *l*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchDecode {
    /// Decoded 16-bit data words, one plane per data bit position.
    pub data: [u64; 16],
    /// Lanes whose decode reported [`DecodeOutcome::Corrected`].
    pub corrected: u64,
    /// Lanes whose decode reported [`DecodeOutcome::DetectedUncorrectable`].
    pub uncorrectable: u64,
}

impl BatchDecode {
    /// An all-zero decode (every lane: word 0, outcome clean).
    pub fn zero() -> Self {
        BatchDecode {
            data: [0; 16],
            corrected: 0,
            uncorrectable: 0,
        }
    }
}

/// Reference implementation of [`EmtCodec::decode_batch`]: transpose each
/// lane's codeword out of the planes and run the scalar decoder. This is
/// the behaviour every SWAR override must reproduce bit for bit — the
/// codecs' differential proptests pin them against this function.
///
/// # Panics
///
/// Panics if `planes` does not hold exactly `codec.code_width()` planes.
pub fn scalar_decode_batch<C: EmtCodec + ?Sized>(
    codec: &C,
    planes: &[u64],
    side: u16,
) -> BatchDecode {
    assert_eq!(
        planes.len(),
        codec.code_width() as usize,
        "one plane per code bit"
    );
    let mut out = BatchDecode::zero();
    for lane in 0..64 {
        let mut code = 0u32;
        for (p, &plane) in planes.iter().enumerate() {
            code |= (((plane >> lane) & 1) as u32) << p;
        }
        let d = codec.decode(code, side);
        let word = d.word as u16;
        for (i, slot) in out.data.iter_mut().enumerate() {
            *slot |= u64::from((word >> i) & 1) << lane;
        }
        match d.outcome {
            DecodeOutcome::Corrected => out.corrected |= 1 << lane,
            DecodeOutcome::DetectedUncorrectable => out.uncorrectable |= 1 << lane,
            DecodeOutcome::Clean => {}
        }
    }
    out
}

/// Per-trial bookkeeping of one batched pass: which lanes are still riding
/// the clean computation, and each survivor's outcome-count delta against
/// the clean pass's [`AccessStats`].
#[derive(Clone, Debug)]
pub struct TrialBatch {
    lanes: usize,
    full: u64,
    alive: u64,
    /// Lanes abandoned by the adaptive bail-out (a subset of the evicted
    /// mask): they had *not* diverged when the batch bailed, but finishing
    /// the plane passes for a nearly-empty batch costs more than replaying
    /// the stragglers scalar.
    bailed: u64,
    /// Bail out when the alive population drops strictly below this count
    /// (0 disables bail-out).
    bail_below: u32,
    corrected: [i64; 64],
    uncorrectable: [i64; 64],
}

impl TrialBatch {
    /// A batch of `lanes` trials, all alive, with bail-out disabled.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64.
    pub fn new(lanes: usize) -> Self {
        Self::with_bailout(lanes, 0.0)
    }

    /// A batch of `lanes` trials that abandons the plane passes once the
    /// alive population drops strictly below `fraction` of the group
    /// (rounded up), handing every remaining lane to the scalar replay
    /// path. `0.0` never bails; `1.0` bails on the first eviction.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64, or if `fraction` is not in
    /// `0.0..=1.0`.
    pub fn with_bailout(lanes: usize, fraction: f64) -> Self {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "bail-out fraction must be in 0.0..=1.0, got {fraction}"
        );
        let full = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        TrialBatch {
            lanes,
            full,
            alive: full,
            bailed: 0,
            bail_below: (fraction * lanes as f64).ceil() as u32,
            corrected: [0; 64],
            uncorrectable: [0; 64],
        }
    }

    /// Number of lanes this batch was built for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes still riding the clean pass.
    #[inline]
    pub fn alive(&self) -> u64 {
        self.alive
    }

    /// Lanes evicted so far (to be finished on the scalar path) — both the
    /// diverged lanes and any lanes abandoned by the bail-out.
    pub fn evicted(&self) -> u64 {
        self.full & !self.alive
    }

    /// Lanes abandoned by the adaptive bail-out (a subset of
    /// [`evicted`](Self::evicted)): they had not diverged when the batch
    /// bailed, but too few lanes were left to amortize the plane passes.
    pub fn bailed(&self) -> u64 {
        self.bailed
    }

    /// Whether lane `lane` is still alive.
    pub fn is_alive(&self, lane: usize) -> bool {
        self.alive >> lane & 1 == 1
    }

    /// Accounts for one read of an address some lanes corrupt.
    ///
    /// `active` selects the lanes with a stuck cell at the address (others
    /// already behave exactly like the clean pass and need no bookkeeping);
    /// `diverged` flags lanes whose decoded word differs from the clean
    /// word, and `corrected` / `uncorrectable` carry the batch decode's
    /// outcome masks. `clean` is the clean pass's own outcome for this
    /// read, which the per-lane deltas are taken against.
    ///
    /// Diverged active lanes are evicted; surviving active lanes accumulate
    /// `(lane outcome − clean outcome)` into their deltas.
    #[inline]
    pub fn record_read(
        &mut self,
        active: u64,
        diverged: u64,
        corrected: u64,
        uncorrectable: u64,
        clean: DecodeOutcome,
    ) {
        self.record_read_repeated(active, diverged, corrected, uncorrectable, clean, 1);
    }

    /// [`record_read`](Self::record_read) for `count` back-to-back reads
    /// that all see the same stored code and decode identically — the
    /// replay path's aggregated clean-trace entries. Survivor deltas are
    /// scaled by `count`; eviction is count-independent (a diverged lane
    /// diverges on the first of the repeats).
    #[inline]
    pub fn record_read_repeated(
        &mut self,
        active: u64,
        diverged: u64,
        corrected: u64,
        uncorrectable: u64,
        clean: DecodeOutcome,
        count: u64,
    ) {
        let active = active & self.alive;
        self.alive &= !(diverged & active);
        let mut survivors = active & !diverged;
        let (clean_c, clean_u) = match clean {
            DecodeOutcome::Corrected => (1i64, 0i64),
            DecodeOutcome::DetectedUncorrectable => (0, 1),
            DecodeOutcome::Clean => (0, 0),
        };
        let count = count as i64;
        while survivors != 0 {
            let lane = survivors.trailing_zeros() as usize;
            survivors &= survivors - 1;
            self.corrected[lane] += ((corrected >> lane & 1) as i64 - clean_c) * count;
            self.uncorrectable[lane] += ((uncorrectable >> lane & 1) as i64 - clean_u) * count;
        }
        // Adaptive bail-out: once too few lanes survive to amortize the
        // batched plane passes, abandon the rest to the scalar replay.
        // Zeroing `alive` makes every later `active & alive()` mask empty,
        // so the remaining batched work vanishes without caller changes.
        if self.alive.count_ones() < self.bail_below {
            self.bailed |= self.alive;
            self.alive = 0;
        }
    }

    /// The access statistics lane `lane` would have produced on the scalar
    /// path, given the clean pass's `clean` statistics: identical access
    /// counts (a surviving lane reads and writes exactly what the clean
    /// pass did), outcome counts shifted by the lane's accumulated delta.
    ///
    /// Only meaningful for surviving lanes — evicted lanes must be re-run.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a delta would take a counter negative,
    /// which the divergence rule makes impossible.
    pub fn lane_stats(&self, lane: usize, clean: &AccessStats) -> AccessStats {
        let apply = |base: u64, delta: i64| -> u64 {
            let v = base as i64 + delta;
            debug_assert!(v >= 0, "outcome counter underflow");
            v as u64
        };
        AccessStats {
            reads: clean.reads,
            writes: clean.writes,
            corrected_reads: apply(clean.corrected_reads, self.corrected[lane]),
            uncorrectable_reads: apply(clean.uncorrectable_reads, self.uncorrectable[lane]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_batch_has_every_lane_alive() {
        let b = TrialBatch::new(64);
        assert_eq!(b.alive(), u64::MAX);
        assert_eq!(b.evicted(), 0);
        let b = TrialBatch::new(3);
        assert_eq!(b.alive(), 0b111);
        assert!(b.is_alive(2));
        assert!(!b.is_alive(3));
    }

    #[test]
    fn diverged_active_lanes_are_evicted_and_stay_evicted() {
        let mut b = TrialBatch::new(8);
        // Lane 1 diverges; lane 5 is flagged diverged but not active here.
        b.record_read(0b0000_0011, 0b0010_0010, 0, 0, DecodeOutcome::Clean);
        assert_eq!(b.evicted(), 0b0000_0010);
        assert!(b.is_alive(5));
        // An evicted lane is no longer active even if its bit is passed.
        b.record_read(0b0000_0010, 0, 0b0000_0010, 0, DecodeOutcome::Clean);
        let clean = AccessStats::default();
        assert_eq!(b.lane_stats(1, &clean).corrected_reads, 0);
    }

    #[test]
    fn survivor_deltas_shift_outcome_counts_both_ways() {
        let clean = AccessStats {
            reads: 100,
            writes: 40,
            corrected_reads: 3,
            uncorrectable_reads: 1,
        };
        let mut b = TrialBatch::new(4);
        // Clean read was Clean; lane 0 corrected, lane 2 uncorrectable.
        b.record_read(0b0101, 0, 0b0001, 0b0100, DecodeOutcome::Clean);
        // Clean read was Corrected; lane 0 also corrected (no delta), lane
        // 1 read clean (delta −1 corrected).
        b.record_read(0b0011, 0, 0b0001, 0, DecodeOutcome::Corrected);
        let s0 = b.lane_stats(0, &clean);
        assert_eq!((s0.reads, s0.writes), (100, 40));
        assert_eq!(s0.corrected_reads, 4);
        assert_eq!(s0.uncorrectable_reads, 1);
        let s1 = b.lane_stats(1, &clean);
        assert_eq!(s1.corrected_reads, 2);
        let s2 = b.lane_stats(2, &clean);
        assert_eq!(s2.uncorrectable_reads, 2);
        // Lane 3 was never active: exactly the clean statistics.
        assert_eq!(b.lane_stats(3, &clean), clean);
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=64")]
    fn oversized_batch_rejected() {
        let _ = TrialBatch::new(65);
    }

    #[test]
    #[should_panic(expected = "bail-out fraction must be in 0.0..=1.0")]
    fn out_of_range_bailout_fraction_rejected() {
        let _ = TrialBatch::with_bailout(8, 1.5);
    }

    #[test]
    fn bailout_abandons_survivors_once_population_drops_below_threshold() {
        // 8 lanes, 25% threshold: bail when fewer than 2 lanes survive.
        let mut b = TrialBatch::with_bailout(8, 0.25);
        b.record_read(0xFF, 0b0011_1111, 0, 0, DecodeOutcome::Clean);
        assert_eq!(b.alive(), 0b1100_0000, "2 survivors is not below 2");
        assert_eq!(b.bailed(), 0);
        b.record_read(0xFF, 0b0100_0000, 0, 0, DecodeOutcome::Clean);
        assert_eq!(b.alive(), 0, "1 survivor < 2 triggers the bail-out");
        assert_eq!(b.bailed(), 0b1000_0000, "the straggler, not the diverger");
        assert_eq!(b.evicted(), 0xFF, "every lane now replays scalar");
        // Bail-out is sticky: later reads account nothing.
        b.record_read(0xFF, 0, 0xFF, 0, DecodeOutcome::Clean);
        let clean = AccessStats::default();
        assert_eq!(b.lane_stats(7, &clean).corrected_reads, 0);
    }

    #[test]
    fn full_bailout_fraction_bails_on_first_eviction() {
        let mut b = TrialBatch::with_bailout(4, 1.0);
        b.record_read(0b1111, 0b0001, 0, 0, DecodeOutcome::Clean);
        assert_eq!(b.alive(), 0);
        assert_eq!(b.bailed(), 0b1110);
    }

    #[test]
    fn zero_bailout_fraction_never_bails() {
        let mut b = TrialBatch::with_bailout(4, 0.0);
        b.record_read(0b1111, 0b0111, 0, 0, DecodeOutcome::Clean);
        assert_eq!(b.alive(), 0b1000, "last survivor rides to the end");
        assert_eq!(b.bailed(), 0);
    }

    #[test]
    fn repeated_reads_scale_survivor_deltas() {
        let clean = AccessStats {
            reads: 100,
            writes: 40,
            corrected_reads: 10,
            uncorrectable_reads: 0,
        };
        let mut b = TrialBatch::new(2);
        // 7 identical reads: clean pass was Corrected, lane 0 decodes
        // Clean (delta −7 corrected), lane 1 uncorrectable (delta −7
        // corrected, +7 uncorrectable).
        b.record_read_repeated(0b11, 0, 0, 0b10, DecodeOutcome::Corrected, 7);
        let s0 = b.lane_stats(0, &clean);
        assert_eq!(s0.corrected_reads, 3);
        assert_eq!(s0.uncorrectable_reads, 0);
        let s1 = b.lane_stats(1, &clean);
        assert_eq!(s1.corrected_reads, 3);
        assert_eq!(s1.uncorrectable_reads, 7);
    }

    mod swar_props {
        use crate::emt::{EmtCodec, EmtKind};
        use crate::scalar_decode_batch;
        use proptest::prelude::*;

        proptest! {
            /// Every codec's `decode_batch` — SWAR overrides and the
            /// `AnyCodec` dispatch alike — matches the transpose-and-decode
            /// oracle on random lanes and side words.
            #[test]
            fn every_codec_matches_the_scalar_oracle(
                planes in prop::collection::vec(any::<u64>(), 22),
                side in any::<u16>(),
            ) {
                for kind in EmtKind::all() {
                    let codec = kind.codec();
                    let width = codec.code_width() as usize;
                    prop_assert_eq!(
                        codec.decode_batch(&planes[..width], side),
                        scalar_decode_batch(&codec, &planes[..width], side),
                        "{}", kind
                    );
                }
            }
        }
    }
}
