//! The paper's primary contribution: the **DREAM** error-mitigation
//! technique, the error-mitigation framework it is evaluated in, and the
//! baselines it is compared against.
//!
//! Near-threshold data memories develop permanent stuck-at faults. An error
//! mitigation technique (EMT) decides what redundancy to store alongside
//! each 16-bit data word and how to reconstruct the word on read:
//!
//! * [`Dream`] — the paper's technique (§IV): exploit the sign-extension
//!   run in biosignal samples. Store 5 reliable side bits (sign + 4-bit
//!   mask ID) and reconstruct the whole MSB run — plus one extra bit that
//!   is always the inverted sign — on read. Corrects *any* number of
//!   faults in the protected region; LSB faults pass through.
//! * [`EccSecDed`] — the classic baseline: a (22,16) extended Hamming code
//!   (6 check bits in the same faulty array) correcting single and
//!   detecting double errors per word.
//! * [`NoProtection`] — raw storage, the energy baseline of §VI.
//! * [`EvenParity`] — a detect-only single-parity scheme, included as an
//!   extra reference point beyond the paper.
//!
//! [`ProtectedMemory`] composes a codec with a faulty data array and a
//! reliable side array, counts accesses and correction outcomes
//! ([`AccessStats`]), and prices a run via [`EnergyModelBundle`] — which is
//! how the §VI-B energy comparison and §VI-C trade-off exploration are
//! produced.
//!
//! # Example: a fault DREAM corrects and ECC cannot
//!
//! ```
//! use dream_core::{Dream, EccSecDed, EmtCodec, NoProtection};
//!
//! let word: i16 = -42; // long run of sign bits: 1111_1111_1101_0110
//! let dream = Dream::new();
//! let enc = dream.encode(word);
//! // Two faults in the MSB run — a double error, fatal for SEC/DED.
//! let corrupted = enc.code ^ 0b0110_0000_0000_0000;
//! assert_eq!(dream.decode(corrupted, enc.side).word, word);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod dream;
mod ecc;
mod emt;
mod protected;
mod simple;

pub use batch::{scalar_decode_batch, BatchDecode, TrialBatch};
pub use dream::Dream;
pub use ecc::EccSecDed;
pub use emt::{AnyCodec, DecodeOutcome, Decoded, EmtCodec, EmtKind, Encoded};
pub use protected::{force_full_decode, AccessStats, EnergyModelBundle, ProtectedMemory};
pub use simple::{EvenParity, NoProtection};

/// Extra storage bits per data word required by an EMT of the mask/ID
/// family, per the paper's Formula 2: `1 + log2(data_size)`.
///
/// For the paper's 16-bit words this is 5 for DREAM. (ECC SEC/DED needs
/// `2 + log2(data_size)` = 6.)
///
/// ```
/// assert_eq!(dream_core::extra_bits_per_word(16), 5);
/// assert_eq!(dream_core::extra_bits_per_word(32), 6);
/// ```
///
/// # Panics
///
/// Panics if `data_bits` is not a power of two greater than 1.
pub fn extra_bits_per_word(data_bits: u32) -> u32 {
    assert!(
        data_bits.is_power_of_two() && data_bits > 1,
        "data size must be a power of two > 1"
    );
    1 + data_bits.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_2_matches_paper() {
        // §V: "1 + log2(16) = 5 extra-bits for the DREAM technique".
        assert_eq!(extra_bits_per_word(16), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn formula_2_rejects_odd_sizes() {
        let _ = extra_bits_per_word(12);
    }
}
