//! The DREAM technique (paper §IV, Fig. 3).

use dream_energy::{Gate, Netlist};

use crate::batch::BatchDecode;
use crate::emt::{DecodeOutcome, Decoded, EmtCodec, EmtKind, Encoded};

/// Dynamic eRror compEnsation And Masking.
///
/// Biosignal samples rarely use the full 16-bit range: the MSBs of a small
/// two's-complement value are a run of copies of the sign bit. DREAM
/// measures that run on every write and stores two things in a small,
/// always-reliable side memory:
///
/// * the **sign bit** `s`,
/// * the **mask ID**: `run − 1`, where `run ∈ 1..=16` is the length of the
///   run of MSBs equal to `s` (4 bits for 16-bit words).
///
/// The data word itself goes to the faulty array *unmodified*. On read the
/// mask ID selects a full bit mask from a lookup table and the word's top
/// `run` bits are rebuilt from `s` via an AND (positive words) or OR
/// (negative words) with the mask, chosen by a sign-controlled multiplexer;
/// a dedicated *set-one-bit* block rebuilds the bit just below the run,
/// which by construction always equals `!s` (Fig. 3). DREAM therefore
/// corrects **any number of stuck bits in the top `run + 1` positions** —
/// including the multi-error words that defeat ECC SEC/DED below 0.55 V —
/// while faults in the remaining LSBs pass through uncorrected, which §III
/// shows the applications tolerate.
///
/// ```
/// use dream_core::{Dream, EmtCodec};
/// let dream = Dream::new();
/// let enc = dream.encode(100); // 0000_0000_0110_0100: run of 9 zeros
/// assert_eq!(enc.side, 9 - 1); // sign 0, mask id 8
/// // Clobber all 10 protected bits (the 9-run and the guaranteed '1' below it):
/// let smashed = enc.code ^ 0xFFC0;
/// assert_eq!(dream.decode(smashed, enc.side).word, 100);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Dream {
    _private: (),
}

/// Width of the protected data words.
const DATA_BITS: u32 = 16;
/// Bits in the mask identifier: log2(16).
const MASK_ID_BITS: u32 = 4;

/// Per-side-word reconstruction masks: the whole Fig. 3 read path — mask
/// LUT, AND branch, OR branch, sign multiplexer and set-one-bit block —
/// folds into `(corrupted & AND_TABLE[side]) | OR_TABLE[side]` because the
/// 5 side bits fully determine which branch wins and which bits it forces:
///
/// * positive (`sign = 0`): clear the run (`AND !mask`), force the guard
///   bit below it to 1 → `and = !mask`, `or = guard`,
/// * negative (`sign = 1`): set the run (`OR mask`), force the guard bit
///   to 0 → `and = !guard`, `or = mask`.
///
/// Computed once at compile time over all 32 side words.
const fn decode_tables() -> ([u32; 32], [u32; 32]) {
    let mut and_t = [0u32; 32];
    let mut or_t = [0u32; 32];
    let mut side = 0usize;
    while side < 32 {
        let sign = side & (1 << MASK_ID_BITS) != 0;
        let run = (side as u32 & ((1 << MASK_ID_BITS) - 1)) + 1;
        let mask = (0xFFFF_u32 << (DATA_BITS - run)) & 0xFFFF;
        let guard = if run < DATA_BITS {
            1u32 << (DATA_BITS - 1 - run)
        } else {
            0
        };
        if sign {
            and_t[side] = 0xFFFF & !guard;
            or_t[side] = mask;
        } else {
            and_t[side] = 0xFFFF & !mask;
            or_t[side] = guard;
        }
        side += 1;
    }
    (and_t, or_t)
}

/// AND/OR reconstruction masks indexed by the 5 side bits.
const DECODE_TABLES: ([u32; 32], [u32; 32]) = decode_tables();

impl Dream {
    /// Creates the codec.
    pub fn new() -> Self {
        Dream { _private: () }
    }

    /// Splits side bits into `(sign, run)` where `run ∈ 1..=16` (the
    /// hot decode path uses [`DECODE_TABLES`] instead; this survives for
    /// the reference decoder).
    #[cfg(test)]
    #[inline]
    fn unpack_side(side: u16) -> (bool, u32) {
        let sign = side & (1 << MASK_ID_BITS) != 0;
        let run = u32::from(side & ((1 << MASK_ID_BITS) - 1)) + 1;
        (sign, run)
    }

    /// The full mask for a given run length: ones in the top `run` bits.
    /// In hardware this is the mask-ID → mask lookup table of Fig. 3.
    #[cfg(test)]
    #[inline]
    fn mask_for_run(run: u32) -> u32 {
        debug_assert!((1..=16).contains(&run));
        (0xFFFF_u32 << (DATA_BITS - run)) & 0xFFFF
    }

    /// Number of MSBs (including the extra inverted-sign bit) DREAM will
    /// restore for `word`. Exposed for the analyses of §III/§IV.
    ///
    /// ```
    /// use dream_core::Dream;
    /// assert_eq!(Dream::protected_bits(0), 16);   // whole word
    /// assert_eq!(Dream::protected_bits(-1), 16);  // whole word
    /// assert_eq!(Dream::protected_bits(100), 10); // 9-run + 1
    /// ```
    pub fn protected_bits(word: i16) -> u32 {
        let run = sign_run(word);
        (run + 1).min(DATA_BITS)
    }
}

/// Length of the run of MSBs equal to the sign bit (1..=16).
fn sign_run(word: i16) -> u32 {
    let bits = word as u16;
    if word < 0 {
        (!bits).leading_zeros().clamp(1, 16)
    } else {
        bits.leading_zeros().clamp(1, 16)
    }
}

impl EmtCodec for Dream {
    fn name(&self) -> &'static str {
        "DREAM"
    }

    fn kind(&self) -> EmtKind {
        EmtKind::Dream
    }

    fn code_width(&self) -> u32 {
        DATA_BITS
    }

    fn side_bits(&self) -> u32 {
        // Formula 2: 1 sign bit + log2(16) mask-ID bits.
        1 + MASK_ID_BITS
    }

    #[inline]
    fn encode(&self, word: i16) -> Encoded {
        let run = sign_run(word);
        let sign = word < 0;
        let side = ((sign as u16) << MASK_ID_BITS) | (run - 1) as u16;
        Encoded {
            code: u32::from(word as u16),
            side,
        }
    }

    #[inline]
    fn decode(&self, code: u32, side: u16) -> Decoded {
        // The whole Fig. 3 read path as two table lookups and two bitwise
        // operations (see [`decode_tables`] for the derivation).
        let corrupted = code & 0xFFFF;
        let idx = usize::from(side) & 31;
        let out = (corrupted & DECODE_TABLES.0[idx]) | DECODE_TABLES.1[idx];
        let word = out as u16 as i16;
        let outcome = if out == corrupted {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::Corrected
        };
        Decoded { word, outcome }
    }

    // The table lookup is shared by every lane (the side bits are the
    // clean pass's, identical across trials), so the AND/OR masks broadcast
    // per bit position: plane *p* is ANDed with all-ones or all-zeros
    // according to bit *p* of `AND_TABLE[side]`, then ORed likewise. Lanes
    // the masks changed are exactly the `Corrected` lanes.
    #[inline]
    fn decode_batch(&self, planes: &[u64], side: u16) -> BatchDecode {
        assert_eq!(planes.len(), DATA_BITS as usize, "one plane per code bit");
        let idx = usize::from(side) & 31;
        let (and_mask, or_mask) = (DECODE_TABLES.0[idx], DECODE_TABLES.1[idx]);
        let mut out = BatchDecode::zero();
        for (p, (&plane, slot)) in planes.iter().zip(out.data.iter_mut()).enumerate() {
            let a = 0u64.wrapping_sub(u64::from(and_mask >> p & 1));
            let o = 0u64.wrapping_sub(u64::from(or_mask >> p & 1));
            let d = (plane & a) | o;
            out.corrected |= d ^ plane;
            *slot = d;
        }
        out
    }

    fn encoder_netlist(&self) -> Netlist {
        // Write path of §IV-A: compare each bit against the sign and
        // priority-encode the first mismatch into the 4-bit mask ID.
        let mut n = Netlist::new("DREAM encoder");
        // b[i] == b[15] comparators for i = 0..15.
        n.add(Gate::Xnor2, 15);
        // 16-entry priority encoder -> 4-bit run length.
        n.add(Gate::Not, 4);
        n.add(Gate::And2, 15);
        n.add(Gate::Or2, 11);
        n
    }

    fn decoder_netlist(&self) -> Netlist {
        // Read path of Fig. 3.
        let mut n = Netlist::new("DREAM decoder");
        // Mask LUT as a thermometer decode of the 4-bit ID: each mask bit is
        // a small comparator against a constant; adjacent comparators share
        // heavily, amortizing to roughly one 2-input cell pair per output.
        n.add(Gate::And2, 12);
        n.add(Gate::Or2, 12);
        // One-hot of the set-one-bit position: therm[i] & !therm[i+1].
        n.add(Gate::Not, 1);
        n.add(Gate::And2, 16);
        // AND branch, OR branch, output multiplexer row.
        n.add(Gate::And2, 16);
        n.add(Gate::Or2, 16);
        n.add(Gate::Mux2, 16);
        n
    }
}

/// The historical branchy decoder, kept as the oracle for the table-driven
/// kernel.
#[cfg(test)]
mod reference {
    use super::*;

    pub fn decode(code: u32, side: u16) -> Decoded {
        let (sign, run) = Dream::unpack_side(side);
        let mask = Dream::mask_for_run(run);
        let corrupted = code & 0xFFFF;
        // The two parallel branches of Fig. 3 …
        let and_branch = corrupted & !mask; // clears the run (positive case)
        let or_branch = corrupted | mask; // sets the run (negative case)

        // … the sign-controlled 2:1 multiplexer …
        let mut out = if sign { or_branch } else { and_branch };
        // … and the "Set one bit" block: the first bit after the run always
        // holds the inverted sign, so its position (known from the mask ID)
        // is rebuilt with a NOT of the sign.
        if run < DATA_BITS {
            let guard = 1u32 << (DATA_BITS - 1 - run);
            if sign {
                out &= !guard;
            } else {
                out |= guard;
            }
        }
        let word = out as u16 as i16;
        let outcome = if out == corrupted {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::Corrected
        };
        Decoded { word, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(word: i16) -> i16 {
        let d = Dream::new();
        let e = d.encode(word);
        d.decode(e.code, e.side).word
    }

    #[test]
    fn exhaustive_decode_matches_branchy_reference() {
        // The decode domain is tiny — 2^16 codewords × 32 side words — so
        // the table-driven kernel is proven equal on *all* of it, outcome
        // classification included.
        let d = Dream::new();
        for side in 0..32u16 {
            for code in 0..=0xFFFFu32 {
                assert_eq!(
                    d.decode(code, side),
                    reference::decode(code, side),
                    "code {code:#06x} side {side:#04x}"
                );
            }
        }
    }

    #[test]
    fn decode_ignores_stray_upper_side_bits() {
        // The side array stores 5 meaningful bits; decode must mask, not
        // index out of the table.
        let d = Dream::new();
        let e = d.encode(-1234);
        assert_eq!(d.decode(e.code, e.side), d.decode(e.code, e.side | 0xFFE0));
    }

    #[test]
    fn identity_without_faults() {
        for w in [-32768i16, -30000, -256, -2, -1, 0, 1, 2, 255, 30000, 32767] {
            assert_eq!(round_trip(w), w);
        }
    }

    #[test]
    fn side_packing_matches_paper_layout() {
        let d = Dream::new();
        // +100 = 0000_0000_0110_0100: sign 0, run 9 -> id 8.
        assert_eq!(d.encode(100).side, 0b0_1000);
        // -100 = 1111_1111_1001_1100: sign 1, run 9 -> id 8.
        assert_eq!(d.encode(-100).side, 0b1_1000);
        // 0: sign 0, run 16 -> id 15.
        assert_eq!(d.encode(0).side, 0b0_1111);
        // i16::MIN = 1000...0: sign 1, run 1 -> id 0.
        assert_eq!(d.encode(i16::MIN).side, 0b1_0000);
    }

    #[test]
    fn corrects_every_fault_pattern_in_protected_region() {
        let d = Dream::new();
        for &word in &[0i16, -1, 5, -5, 1000, -1000, 12345, -12345] {
            let e = d.encode(word);
            let protected = Dream::protected_bits(word);
            let top_mask = if protected >= 16 {
                0xFFFF
            } else {
                (0xFFFF_u32 << (16 - protected)) & 0xFFFF
            };
            // Exhaust all patterns when small, else a spread of patterns.
            let patterns: Vec<u32> = if protected <= 10 {
                (0..(1u32 << protected))
                    .map(|p| p << (16 - protected))
                    .collect()
            } else {
                (0..1024u32)
                    .map(|p| (p.wrapping_mul(2_654_435_761) % (1 << protected)) << (16 - protected))
                    .collect()
            };
            for flip in patterns {
                assert_eq!(flip & !top_mask, 0);
                let dec = d.decode(e.code ^ flip, e.side);
                assert_eq!(dec.word, word, "word {word} flip {flip:#06x}");
            }
        }
    }

    #[test]
    fn lsb_faults_pass_through() {
        let d = Dream::new();
        let word = 1000i16; // run 6, protected = 7 top bits, LSB region = 9 bits
        let e = d.encode(word);
        let flip = 0b1; // LSB fault
        let dec = d.decode(e.code ^ flip, e.side);
        assert_eq!(dec.word, word ^ 1);
    }

    #[test]
    fn decode_reports_correction() {
        let d = Dream::new();
        let e = d.encode(100);
        assert_eq!(d.decode(e.code, e.side).outcome, DecodeOutcome::Clean);
        let dec = d.decode(e.code ^ 0x8000, e.side);
        assert_eq!(dec.outcome, DecodeOutcome::Corrected);
        assert_eq!(dec.word, 100);
    }

    #[test]
    fn all_sign_words_fully_protected() {
        let d = Dream::new();
        for word in [0i16, -1] {
            let e = d.encode(word);
            // Every bit stuck wrong: still recovered.
            let dec = d.decode(e.code ^ 0xFFFF, e.side);
            assert_eq!(dec.word, word);
        }
    }

    #[test]
    fn exhaustive_round_trip_all_words() {
        let d = Dream::new();
        for w in i16::MIN..=i16::MAX {
            let e = d.encode(w);
            assert_eq!(d.decode(e.code, e.side).word, w);
        }
    }

    mod batch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The broadcast-mask batch kernel matches the
            /// transpose-and-decode oracle bit for bit over random lanes
            /// and every side word (stray upper side bits included).
            #[test]
            fn batch_decode_matches_oracle_on_random_lanes(
                planes in prop::collection::vec(any::<u64>(), 16),
                side in any::<u16>(),
            ) {
                let d = Dream::new();
                prop_assert_eq!(
                    d.decode_batch(&planes, side),
                    crate::batch::scalar_decode_batch(&d, &planes, side)
                );
            }
        }
    }

    #[test]
    fn decoder_is_smaller_than_ecc_class_logic() {
        // Sanity floor: the netlists exist and are non-trivial.
        let d = Dream::new();
        assert!(d.encoder_netlist().area_ge() > 30.0);
        assert!(d.decoder_netlist().area_ge() > 60.0);
    }
}
