//! ECC SEC/DED baseline: extended Hamming (22,16).
//!
//! # The coverage-mask scheme
//!
//! A Hamming check bit `p ∈ {1, 2, 4, 8, 16}` is the parity of every
//! codeword position whose (1-based) index has bit `log2(p)` set. The
//! textbook formulation walks positions one by one (`for pos in 1..=21`)
//! with a nested membership test — O(positions × check bits) bit-serial
//! work per encode *and* per decode, which dominated campaign profiles.
//!
//! Since the coverage sets are fixed by the code, they are precomputed
//! here (at compile time) as five 21-bit **coverage masks** over the
//! storage-bit layout. Each parity is then a single
//! `(word & mask).count_ones() & 1` — one AND plus one popcount
//! instruction. Encoding evaluates 5 check masks + 1 overall parity
//! (6 popcounts); decoding re-evaluates the same 5 masks over the read
//! codeword to form the syndrome, plus the overall parity (6 popcounts).
//! Data bits scatter into / gather out of their Hamming positions with
//! four shift-AND terms, because consecutive data bits land on
//! consecutive storage bits between check-bit positions.
//!
//! The historical bit-serial implementation is retained in the
//! `reference` test module and the two are proven equivalent exhaustively
//! over all 65,536 data words and a dense sweep of corrupted codewords.

use dream_energy::{Gate, Netlist};

use crate::batch::BatchDecode;
use crate::emt::{DecodeOutcome, Decoded, EmtCodec, EmtKind, Encoded};

/// Single-Error-Correction / Double-Error-Detection extended Hamming code
/// over 16-bit data words.
///
/// The classic EMT the paper compares DREAM against ([14] in the paper):
/// five Hamming check bits plus one overall parity bit — `2 + log2(16) = 6`
/// extra bits per word — all stored **in the same faulty array** as the
/// data (the array widens from 16 to 22 bits, which is exactly where ECC's
/// extra array energy comes from, §VI-B).
///
/// Behaviour under faults, which drives the Fig. 4c curve:
///
/// * 1 stuck bit per word → corrected,
/// * 2 stuck bits per word → detected but **not** corrected (the raw data
///   bits are returned); below 0.55 V such words become common and ECC
///   "underperforms, as it will detect but not correct the errors as DREAM
///   does" (§VI-A),
/// * ≥3 stuck bits → may miscorrect (a real SEC/DED hazard, faithfully
///   modelled).
///
/// ```
/// use dream_core::{EccSecDed, EmtCodec, DecodeOutcome};
/// let ecc = EccSecDed::new();
/// let enc = ecc.encode(-1234);
/// // Any single flipped bit is corrected:
/// let dec = ecc.decode(enc.code ^ (1 << 7), enc.side);
/// assert_eq!(dec.word, -1234);
/// assert_eq!(dec.outcome, DecodeOutcome::Corrected);
/// // A double flip is detected but not repaired:
/// let dec2 = ecc.decode(enc.code ^ 0b11, enc.side);
/// assert_eq!(dec2.outcome, DecodeOutcome::DetectedUncorrectable);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccSecDed {
    _private: (),
}

/// Total codeword width: 16 data + 5 Hamming + 1 overall parity.
const CODE_BITS: u32 = 22;
/// Hamming positions run 1..=21; the overall parity lives in storage bit 21.
const OVERALL_BIT: u32 = 21;
/// Hamming positions (1-based) that hold data bits, in data-bit order.
const DATA_POSITIONS: [u32; 16] = [3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 17, 18, 19, 20, 21];
/// Hamming positions of the five check bits.
const PARITY_POSITIONS: [u32; 5] = [1, 2, 4, 8, 16];
/// Empirical common-subexpression sharing factor for synthesized XOR parity
/// trees (Design Compiler routinely merges shared pair terms).
const XOR_SHARING: f64 = 0.7;

/// Coverage mask of check bit `2^k` over the storage-bit layout: bit
/// `pos - 1` is set for every Hamming position `pos ∈ 1..=21` with
/// `pos & 2^k != 0` — including position `2^k` itself, so the same five
/// masks serve both the encoder (where the check-bit lanes are still
/// zero) and the decoder's syndrome computation (where they are not).
const fn coverage_masks() -> [u32; 5] {
    let mut masks = [0u32; 5];
    let mut k = 0;
    while k < 5 {
        let p = 1u32 << k;
        let mut pos = 1u32;
        while pos <= 21 {
            if pos & p != 0 {
                masks[k] |= 1 << (pos - 1);
            }
            pos += 1;
        }
        k += 1;
    }
    masks
}

/// The five check-bit coverage masks, fixed by the (22,16) code.
const COVERAGE_MASKS: [u32; 5] = coverage_masks();

/// Mask of the 21 Hamming positions (storage bits 0..=20); the overall
/// parity bit lives just above, in storage bit 21.
const HAMMING_MASK: u32 = (1 << OVERALL_BIT) - 1;

/// Scatters the 16 data bits into their Hamming positions.
///
/// `DATA_POSITIONS` maps data bit `i` to storage bit `DATA_POSITIONS[i]-1`:
/// runs of consecutive data bits land on consecutive storage bits between
/// the check-bit lanes, so the permutation is four shift-AND terms.
#[inline]
const fn scatter_data(data: u16) -> u32 {
    let d = data as u32;
    ((d & 0x0001) << 2) | ((d & 0x000E) << 3) | ((d & 0x07F0) << 4) | ((d & 0xF800) << 5)
}

/// Gathers the 16 data bits back out of their Hamming positions (the
/// inverse permutation of [`scatter_data`]).
#[inline]
const fn gather_data(code: u32) -> u16 {
    (((code >> 2) & 0x0001)
        | ((code >> 3) & 0x000E)
        | ((code >> 4) & 0x07F0)
        | ((code >> 5) & 0xF800)) as u16
}

/// Parity (0 or 1) of the covered bits of `word`.
#[inline]
const fn parity_over(word: u32, mask: u32) -> u32 {
    (word & mask).count_ones() & 1
}

impl EccSecDed {
    /// Creates the codec.
    pub fn new() -> Self {
        EccSecDed { _private: () }
    }

    /// Storage-bit index (0-based) of Hamming position `pos` (1-based).
    #[inline]
    fn bit_of_position(pos: u32) -> u32 {
        pos - 1
    }

    /// Number of data/check inputs feeding each encoder parity tree plus
    /// the overall tree — derived from the actual coverage sets so the
    /// netlist is counted, not asserted.
    fn encoder_tree_inputs() -> Vec<usize> {
        let mut trees: Vec<usize> = PARITY_POSITIONS
            .iter()
            .map(|&p| DATA_POSITIONS.iter().filter(|&&d| d & p != 0).count())
            .collect();
        // Overall parity covers all 21 Hamming positions.
        trees.push(21);
        trees
    }
}

impl EmtCodec for EccSecDed {
    fn name(&self) -> &'static str {
        "ECC SEC/DED"
    }

    fn kind(&self) -> EmtKind {
        EmtKind::EccSecDed
    }

    fn code_width(&self) -> u32 {
        CODE_BITS
    }

    fn side_bits(&self) -> u32 {
        0
    }

    #[inline]
    fn encode(&self, word: i16) -> Encoded {
        // Scatter data bits into their Hamming positions, then evaluate
        // the five check-bit coverage masks (the check-bit lanes are still
        // zero, so the masks see exactly the covered data bits) plus the
        // overall parity: 6 popcounts total.
        let mut code = scatter_data(word as u16);
        for (k, &mask) in COVERAGE_MASKS.iter().enumerate() {
            code |= parity_over(code, mask) << (PARITY_POSITIONS[k] - 1);
        }
        // Overall parity over positions 1..=21 (extends SEC to SEC/DED).
        code |= parity_over(code, HAMMING_MASK) << OVERALL_BIT;
        Encoded { code, side: 0 }
    }

    #[inline]
    fn decode(&self, code: u32, _side: u16) -> Decoded {
        let code = code & ((1u32 << CODE_BITS) - 1);
        // Syndrome bit k = parity of the read bits covered by check 2^k
        // (check bit included): 5 popcounts, plus 1 for the overall.
        let mut syndrome = 0u32;
        for (k, &mask) in COVERAGE_MASKS.iter().enumerate() {
            syndrome |= parity_over(code, mask) << k;
        }
        let overall_ok = code.count_ones() & 1 == 0;
        let (corrected_code, outcome) = match (syndrome, overall_ok) {
            (0, true) => (code, DecodeOutcome::Clean),
            // Error in the overall-parity bit itself: data unaffected.
            (0, false) => (code ^ (1 << OVERALL_BIT), DecodeOutcome::Corrected),
            // Odd number of errors with a syndrome: assume single, correct.
            (s, false) => {
                if (1..=21).contains(&s) {
                    (
                        code ^ (1 << Self::bit_of_position(s)),
                        DecodeOutcome::Corrected,
                    )
                } else {
                    // Syndrome points outside the code: >=3 errors.
                    (code, DecodeOutcome::DetectedUncorrectable)
                }
            }
            // Even number of errors, non-zero syndrome: double error.
            (_, true) => (code, DecodeOutcome::DetectedUncorrectable),
        };
        Decoded {
            word: gather_data(corrected_code) as i16,
            outcome,
        }
    }

    // The scalar decoder transposed: each coverage mask becomes an XOR
    // reduction over its covered planes, producing five *syndrome bit
    // planes* (bit *l* of `s[k]` is bit *k* of lane *l*'s syndrome), and the
    // scalar `match` on (syndrome, overall parity) becomes mask algebra:
    //
    // * `odd`    — lanes with odd overall parity (`overall_ok == false`),
    // * `s_zero` — lanes with syndrome 0,
    // * `gt21`   — lanes whose syndrome points outside the code (≥ 22,
    //   i.e. `s4 & (s3 | (s2 & s1))` over the syndrome bits),
    // * corrected lanes are exactly `odd & !gt21` (including the
    //   overall-parity-bit flip, which touches no data bit),
    // * uncorrectable lanes are `odd & gt21` (≥3 errors) plus
    //   `!odd & !s_zero` (double errors).
    //
    // A data bit flips only in corrected lanes whose syndrome equals its
    // Hamming position, computed as a 5-term AND over the syndrome planes.
    #[inline]
    fn decode_batch(&self, planes: &[u64], _side: u16) -> BatchDecode {
        assert_eq!(planes.len(), CODE_BITS as usize, "one plane per code bit");
        let mut s = [0u64; 5];
        for (k, &mask) in COVERAGE_MASKS.iter().enumerate() {
            let mut covered = mask;
            while covered != 0 {
                s[k] ^= planes[covered.trailing_zeros() as usize];
                covered &= covered - 1;
            }
        }
        let odd = planes.iter().fold(0u64, |acc, &p| acc ^ p);
        let s_zero = !(s[0] | s[1] | s[2] | s[3] | s[4]);
        let gt21 = s[4] & (s[3] | (s[2] & s[1]));
        let corrected = odd & !gt21;
        let mut out = BatchDecode::zero();
        out.corrected = corrected;
        out.uncorrectable = (odd & gt21) | (!odd & !s_zero);
        for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
            let mut eq = corrected;
            for (k, &sk) in s.iter().enumerate() {
                eq &= if pos >> k & 1 == 1 { sk } else { !sk };
            }
            out.data[i] = planes[Self::bit_of_position(pos) as usize] ^ eq;
        }
        out
    }

    fn encoder_netlist(&self) -> Netlist {
        let mut n = Netlist::new("ECC SEC/DED encoder");
        let raw_xors: usize = Self::encoder_tree_inputs()
            .iter()
            .map(|&inputs| inputs.saturating_sub(1))
            .sum();
        let shared = (raw_xors as f64 * XOR_SHARING).ceil() as usize;
        n.add(Gate::Xor2, shared);
        n
    }

    fn decoder_netlist(&self) -> Netlist {
        let mut n = Netlist::new("ECC SEC/DED decoder");
        // Syndrome trees re-compute each parity over its coverage set
        // *including* the stored check bit, plus the overall tree over all
        // 22 read bits.
        let raw_xors: usize = PARITY_POSITIONS
            .iter()
            .map(|&p| (1..=21u32).filter(|&pos| pos & p != 0).count())
            .map(|inputs| inputs.saturating_sub(1))
            .chain(std::iter::once(21usize)) // overall over 22 bits
            .sum();
        let shared = (raw_xors as f64 * XOR_SHARING).ceil() as usize;
        n.add(Gate::Xor2, shared);
        // Syndrome -> one-hot decode for all 22 correctable positions.
        n.add(Gate::AndN(5), 22);
        // Correction row.
        n.add(Gate::Xor2, 22);
        // Double-error-detected flag: syndrome != 0 AND overall parity even.
        n.add(Gate::OrN(5), 1);
        n.add(Gate::Not, 1);
        n.add(Gate::And2, 1);
        n
    }
}

/// The historical bit-serial implementation, kept verbatim as the oracle
/// the mask-based kernels are proven against.
#[cfg(test)]
mod reference {
    use super::*;

    pub fn encode(word: i16) -> Encoded {
        let data = word as u16;
        let mut code: u32 = 0;
        // Scatter data bits into their Hamming positions.
        for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
            if data & (1 << i) != 0 {
                code |= 1 << EccSecDed::bit_of_position(pos);
            }
        }
        // Hamming check bits: parity over all covered positions.
        for &p in &PARITY_POSITIONS {
            let mut parity = 0u32;
            for pos in 1..=21u32 {
                if pos != p && pos & p != 0 {
                    parity ^= (code >> EccSecDed::bit_of_position(pos)) & 1;
                }
            }
            if parity != 0 {
                code |= 1 << EccSecDed::bit_of_position(p);
            }
        }
        // Overall parity over positions 1..=21 (extends SEC to SEC/DED).
        let overall = (code & ((1 << OVERALL_BIT) - 1)).count_ones() & 1;
        if overall != 0 {
            code |= 1 << OVERALL_BIT;
        }
        Encoded { code, side: 0 }
    }

    pub fn decode(code: u32) -> Decoded {
        let code = code & ((1u32 << CODE_BITS) - 1);
        // Syndrome: XOR of the Hamming positions of all set bits.
        let mut syndrome = 0u32;
        for pos in 1..=21u32 {
            if code & (1 << EccSecDed::bit_of_position(pos)) != 0 {
                syndrome ^= pos;
            }
        }
        let overall_ok = code.count_ones() & 1 == 0;
        let (corrected_code, outcome) = match (syndrome, overall_ok) {
            (0, true) => (code, DecodeOutcome::Clean),
            (0, false) => (code ^ (1 << OVERALL_BIT), DecodeOutcome::Corrected),
            (s, false) => {
                if (1..=21).contains(&s) {
                    (
                        code ^ (1 << EccSecDed::bit_of_position(s)),
                        DecodeOutcome::Corrected,
                    )
                } else {
                    (code, DecodeOutcome::DetectedUncorrectable)
                }
            }
            (_, true) => (code, DecodeOutcome::DetectedUncorrectable),
        };
        let mut data: u16 = 0;
        for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
            if corrected_code & (1 << EccSecDed::bit_of_position(pos)) != 0 {
                data |= 1 << i;
            }
        }
        Decoded {
            word: data as i16,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> EccSecDed {
        EccSecDed::new()
    }

    #[test]
    fn exhaustive_encode_matches_bit_serial_reference() {
        // Every one of the 65,536 data words must produce the exact
        // codeword of the historical implementation.
        let c = codec();
        for w in i16::MIN..=i16::MAX {
            assert_eq!(c.encode(w), reference::encode(w), "word {w}");
        }
    }

    #[test]
    fn exhaustive_round_trip_matches_bit_serial_reference() {
        // All 65,536 words round-trip identically through both codecs.
        let c = codec();
        for w in i16::MIN..=i16::MAX {
            let e = c.encode(w);
            let got = c.decode(e.code, e.side);
            let want = reference::decode(reference::encode(w).code);
            assert_eq!(got, want, "word {w}");
            assert_eq!(got.word, w);
            assert_eq!(got.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn decode_matches_reference_on_dense_codeword_sweep() {
        // The decoders must agree on arbitrary (not necessarily valid)
        // 22-bit codewords, not just on encoder outputs: a dense stride
        // over the full 4.2M codeword space plus both all-zeros/ones.
        let c = codec();
        for code in (0u32..1 << CODE_BITS).step_by(7).chain([0, 0x3F_FFFF]) {
            assert_eq!(
                c.decode(code, 0),
                reference::decode(code),
                "code {code:#08x}"
            );
        }
    }

    mod equivalence_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Flipping up to two codeword bits of any encoded word yields
            /// the exact `Decoded` — word *and* `DecodeOutcome`
            /// classification — the bit-serial reference produces.
            #[test]
            fn le_two_flips_classified_identically(
                word in any::<i16>(),
                b1 in 0u32..22,
                b2 in 0u32..23,
            ) {
                let c = EccSecDed::new();
                // b2 == 22 means no second flip; b2 == b1 cancels back to
                // zero flips — the net is always 0..=2.
                let mut code = c.encode(word).code ^ (1 << b1);
                if b2 < 22 {
                    code ^= 1 << b2;
                }
                prop_assert_eq!(c.decode(code, 0), reference::decode(code));
            }

            /// The SWAR batch kernel over 64 *uniformly random* codeword
            /// lanes matches the transpose-and-decode oracle bit for bit
            /// (data planes and both outcome masks).
            #[test]
            fn batch_decode_matches_oracle_on_random_lanes(
                planes in prop::collection::vec(any::<u64>(), 22),
            ) {
                let c = EccSecDed::new();
                prop_assert_eq!(
                    c.decode_batch(&planes, 0),
                    crate::batch::scalar_decode_batch(&c, &planes, 0)
                );
            }

            /// Same pinning over lanes built as valid codewords with up to
            /// two flips each — dense coverage of the clean / corrected /
            /// double-error classification arms random planes rarely hit.
            #[test]
            fn batch_decode_matches_oracle_on_near_valid_lanes(
                lanes in prop::collection::vec(
                    (any::<i16>(), 0u32..22, 0u32..23),
                    64,
                ),
            ) {
                let c = EccSecDed::new();
                let mut planes = [0u64; 22];
                for (lane, &(word, b1, b2)) in lanes.iter().enumerate() {
                    let mut code = c.encode(word).code ^ (1 << b1);
                    if b2 < 22 {
                        code ^= 1 << b2;
                    }
                    for (p, plane) in planes.iter_mut().enumerate() {
                        *plane |= u64::from(code >> p & 1) << lane;
                    }
                }
                prop_assert_eq!(
                    c.decode_batch(&planes, 0),
                    crate::batch::scalar_decode_batch(&c, &planes, 0)
                );
            }
        }
    }

    #[test]
    fn coverage_masks_match_position_membership() {
        // Each mask is exactly the set of positions the textbook loop
        // visits for its check bit.
        for (k, &mask) in COVERAGE_MASKS.iter().enumerate() {
            let p = 1u32 << k;
            for pos in 1..=21u32 {
                let covered = mask & (1 << (pos - 1)) != 0;
                assert_eq!(covered, pos & p != 0, "check {p} position {pos}");
            }
            assert_eq!(mask >> 21, 0, "mask {k} leaks past the Hamming span");
        }
    }

    #[test]
    fn scatter_gather_are_inverse_permutations() {
        for w in [0u16, 1, 0xFFFF, 0xA5A5, 0x5A5A, 0x8001] {
            let scattered = scatter_data(w);
            assert_eq!(gather_data(scattered), w);
            // Scattered bits only occupy data positions.
            for &p in &PARITY_POSITIONS {
                assert_eq!(scattered & (1 << (p - 1)), 0, "check lane {p} dirty");
            }
            assert_eq!(scattered >> 21, 0);
        }
    }

    #[test]
    fn round_trip_without_faults() {
        let c = codec();
        for w in [-32768i16, -1, 0, 1, 32767, 21845, -21846] {
            let e = c.encode(w);
            let d = c.decode(e.code, e.side);
            assert_eq!(d.word, w);
            assert_eq!(d.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let c = codec();
        for w in [-32768i16, -1, 0, 12345, -12345, 32767] {
            let e = c.encode(w);
            for bit in 0..CODE_BITS {
                let d = c.decode(e.code ^ (1 << bit), e.side);
                assert_eq!(d.word, w, "word {w} bit {bit}");
                assert_eq!(d.outcome, DecodeOutcome::Corrected);
            }
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let c = codec();
        for w in [0i16, -1, 9876, -9876] {
            let e = c.encode(w);
            for b1 in 0..CODE_BITS {
                for b2 in (b1 + 1)..CODE_BITS {
                    let d = c.decode(e.code ^ (1 << b1) ^ (1 << b2), e.side);
                    assert_eq!(
                        d.outcome,
                        DecodeOutcome::DetectedUncorrectable,
                        "word {w} bits {b1},{b2} must be flagged, not miscorrected"
                    );
                }
            }
        }
    }

    #[test]
    fn minimum_distance_is_four() {
        // SEC/DED requires Hamming distance 4 between codewords; spot-check
        // against a sample of word pairs.
        let c = codec();
        let words = [
            0i16,
            1,
            2,
            3,
            -1,
            -2,
            255,
            256,
            0x5555u16 as i16,
            0x2AAAu16 as i16,
        ];
        for &a in &words {
            for &b in &words {
                if a == b {
                    continue;
                }
                let dist = (c.encode(a).code ^ c.encode(b).code).count_ones();
                assert!(dist >= 4, "{a} vs {b}: distance {dist}");
            }
        }
    }

    #[test]
    fn six_check_bits_as_formula_2() {
        // §V: 2 + log2(16) = 6 extra bits for ECC SEC/DED.
        assert_eq!(codec().code_width() - 16, 6);
    }

    #[test]
    fn triple_errors_may_miscorrect_but_never_panic() {
        let c = codec();
        let e = c.encode(4242);
        let mut miscorrected = 0u32;
        let mut flagged = 0u32;
        for b1 in 0..CODE_BITS {
            for b2 in (b1 + 1)..CODE_BITS {
                for b3 in (b2 + 1)..CODE_BITS {
                    let d = c.decode(e.code ^ (1 << b1) ^ (1 << b2) ^ (1 << b3), e.side);
                    match d.outcome {
                        DecodeOutcome::DetectedUncorrectable => flagged += 1,
                        _ => miscorrected += 1,
                    }
                }
            }
        }
        // Triple errors alias single-error syndromes most of the time — a
        // known SEC/DED limitation the low-voltage regime of Fig. 4c hits.
        assert!(miscorrected > 0);
        assert!(miscorrected + flagged == 22 * 21 * 20 / 6);
    }

    #[test]
    fn decoder_area_roughly_2_2x_dream_decoder() {
        use crate::Dream;
        let ecc_dec = codec().decoder_netlist().area_ge();
        let dream_dec = Dream::new().decoder_netlist().area_ge();
        let overhead = ecc_dec / dream_dec - 1.0;
        // Paper: ECC decoder needs ~120 % more area than DREAM's.
        assert!(
            (0.9..=1.5).contains(&overhead),
            "decoder area overhead {overhead:.2} out of the paper's ballpark"
        );
    }

    #[test]
    fn encoder_area_overhead_in_paper_ballpark() {
        use crate::Dream;
        let ecc_enc = codec().encoder_netlist().area_ge();
        let dream_enc = Dream::new().encoder_netlist().area_ge();
        let overhead = ecc_enc / dream_enc - 1.0;
        // Paper: ECC encoder needs ~28 % more area than DREAM's.
        assert!(
            (0.1..=0.6).contains(&overhead),
            "encoder area overhead {overhead:.2} out of the paper's ballpark"
        );
    }
}
