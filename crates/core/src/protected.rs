//! Protected-memory composition: codec + faulty data array + reliable side
//! array + statistics + energy accounting.
//!
//! # Anatomy of an access
//!
//! A write runs the encoder and stores `(code, side)`; a read loads the
//! code bits through the fault overlay and runs the decoder. Two
//! structural optimizations keep that pipeline off the campaign profiles:
//!
//! * **Monomorphization** — [`ProtectedMemory`] is generic over its codec
//!   `C: EmtCodec` (defaulting to the [`AnyCodec`] facade, so existing
//!   harness code is unchanged). Campaign arenas instantiate
//!   `ProtectedMemory<NoProtection>` etc., compiling every access down to
//!   the concrete codec kernel with no enum dispatch.
//! * **Clean-word fast path** — the overwhelming majority of words have no
//!   stuck cell at a given voltage, and a clean word reads back exactly the
//!   bits the encoder produced. The memory therefore keeps a *shadow* of
//!   the decode result each stored word would produce absent faults; when
//!   [`FaultySram::is_word_clean`] says no stuck lane touches the word, the
//!   read returns the shadow entry and skips the decoder entirely.
//!   Statistics (and therefore energy accounting) are bit-identical either
//!   way, because the shadow stores the full [`Decoded`] — including the
//!   outcome a decode of the reset state would report.

use std::sync::atomic::{AtomicBool, Ordering};

use dream_energy::{calib, EnergyBreakdown, SramEnergyModel};
use dream_mem::{BatchFaultPlanes, FaultMap, FaultySram, MemGeometry};

use crate::batch::TrialBatch;
use crate::emt::{AnyCodec, DecodeOutcome, Decoded, EmtCodec, EmtKind};

/// Process-wide kill switch for the clean-word fast path, for differential
/// tests that must compare fast-path and full-decoder behaviour of whole
/// campaigns. Memories sample it at construction and on
/// [`ProtectedMemory::reset_with_fault_map`].
static FORCE_FULL_DECODE: AtomicBool = AtomicBool::new(false);

/// Test-only: force every subsequently built (or re-armed) memory to run
/// the full decoder on every read, disabling the clean-word fast path.
///
/// Both settings are observationally equivalent by construction; the
/// differential suite in `tests/fast_path.rs` proves it on real campaigns.
pub fn force_full_decode(disable_fast_path: bool) {
    FORCE_FULL_DECODE.store(disable_fast_path, Ordering::SeqCst);
}

/// Running access/outcome counters of a [`ProtectedMemory`].
///
/// These are the observables the §VI analyses need: access counts price the
/// dynamic energy, outcome counts explain *why* an EMT's SNR curve bends
/// (how often ECC hit an uncorrectable word, how often DREAM actually had
/// to repair something).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
    /// Reads where the decoder changed at least one bit.
    pub corrected_reads: u64,
    /// Reads flagged uncorrectable (ECC double errors, parity hits).
    pub uncorrectable_reads: u64,
}

impl AccessStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The energy models priced against a run's [`AccessStats`].
///
/// Bundles the CACTI-substitute models for the main (voltage-scaled) data
/// array and the small always-at-nominal side array holding DREAM's mask
/// bits, per the calibration in `dream_energy::calib`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModelBundle {
    /// Model of the main data array.
    pub main: SramEnergyModel,
    /// Model of the side (mask) array.
    pub side: SramEnergyModel,
    /// Supply of the side array (pinned high so it stays error-free, §IV-A).
    pub side_supply_v: f64,
}

impl EnergyModelBundle {
    /// The calibrated 32 nm / 343 K models used throughout the reproduction.
    pub fn date16() -> Self {
        EnergyModelBundle {
            main: SramEnergyModel::date16_main(),
            side: SramEnergyModel::date16_side(),
            side_supply_v: calib::MASK_SUPPLY_VOLTAGE,
        }
    }

    /// Energy of a run described by `stats` on a memory of `words` words
    /// protected by `codec`, with the data array at `data_v` volts for
    /// `seconds` of wall-clock time.
    ///
    /// Codec logic is priced in the data-array voltage domain: standard
    /// cells retain far more margin than SRAM bit cells at near-threshold
    /// voltages, so the paper's codecs can ride the scaled rail while the
    /// bit cells are the reliability limiter.
    pub fn run_energy(
        &self,
        codec: &dyn EmtCodec,
        stats: &AccessStats,
        words: usize,
        data_v: f64,
        seconds: f64,
    ) -> EnergyBreakdown {
        let accesses = stats.accesses() as f64;
        let mut e = EnergyBreakdown::new();
        e.data_dynamic_pj = accesses * self.main.access_energy_pj(codec.code_width(), data_v);
        if codec.side_bits() > 0 {
            e.side_dynamic_pj = accesses
                * self
                    .side
                    .access_energy_pj(codec.side_bits(), self.side_supply_v);
        }
        let enc = codec.encoder_netlist().op_energy_pj(data_v);
        let dec = codec.decoder_netlist().op_energy_pj(data_v);
        e.codec_pj = stats.writes as f64 * enc + stats.reads as f64 * dec;
        let data_cells = words * codec.code_width() as usize;
        e.leakage_pj = self.main.leakage_energy_pj(data_cells, data_v, seconds);
        if codec.side_bits() > 0 {
            let side_cells = words * codec.side_bits() as usize;
            e.leakage_pj += self
                .side
                .leakage_energy_pj(side_cells, self.side_supply_v, seconds);
        }
        e
    }
}

impl Default for EnergyModelBundle {
    fn default() -> Self {
        Self::date16()
    }
}

/// A word-addressable data memory protected by an EMT.
///
/// Composition mirrors the paper's platform (§V): the data array is a
/// [`FaultySram`] running at a scaled (fault-inducing) supply; the side
/// array holding DREAM's sign + mask-ID bits is modelled as always
/// error-free because it runs at nominal voltage. Every write runs the
/// encoder, every read runs the decoder — or, for words untouched by any
/// stuck cell, the clean-word fast path (see the module docs) — and
/// [`AccessStats`] accumulates what happened.
///
/// The codec parameter defaults to the [`AnyCodec`] facade, so
/// `ProtectedMemory` with no type argument behaves exactly as before;
/// performance-critical callers monomorphize with
/// [`ProtectedMemory::with_codec`].
///
/// ```
/// use dream_core::{EmtKind, ProtectedMemory};
/// use dream_mem::{FaultMap, MemGeometry};
///
/// let geometry = MemGeometry::new(256, 16, 1);
/// // A memory at 0.55 V: draw stuck-at faults at the BER for that voltage.
/// let map = FaultMap::generate(256, 22, 1e-3, 7);
/// let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry, &map);
/// mem.write(3, -42);
/// let _ = mem.read(3); // corrected if the faults hit the sign-run
/// assert_eq!(mem.stats().reads, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ProtectedMemory<C: EmtCodec = AnyCodec> {
    codec: C,
    data: FaultySram,
    side: Vec<u16>,
    /// Per-address decode result the stored word produces absent faults:
    /// what the clean-word fast path returns instead of running the
    /// decoder. Writes refresh it with `(word, Clean)` — the round-trip
    /// identity every codec guarantees — and resets refresh it with the
    /// decode of the zeroed arrays.
    shadow: Vec<Decoded>,
    fast_path: bool,
    stats: AccessStats,
}

impl ProtectedMemory<AnyCodec> {
    /// Creates a fault-free protected memory over `geometry` (given for the
    /// *16-bit* base layout; the data array widens automatically for codecs
    /// with in-array redundancy).
    pub fn new(kind: EmtKind, geometry: MemGeometry) -> Self {
        Self::with_codec(kind.codec(), geometry)
    }

    /// Creates a protected memory whose data array carries the stuck-at
    /// faults of `map`.
    ///
    /// `map` must be at least as wide as the codec's codeword so that **the
    /// same fault locations** can be shared across EMTs, as the paper's
    /// methodology requires; the map is narrowed to the codec's width
    /// (ECC's check-bit cells see the extra fault lanes — they are real
    /// cells in the same array).
    ///
    /// # Panics
    ///
    /// Panics if the map covers a different word count or is narrower than
    /// the codeword.
    pub fn with_fault_map(kind: EmtKind, geometry: MemGeometry, map: &FaultMap) -> Self {
        Self::with_codec_and_fault_map(kind.codec(), geometry, map)
    }
}

impl<C: EmtCodec> ProtectedMemory<C> {
    /// Creates a fault-free protected memory monomorphized over `codec` —
    /// the zero-dispatch path campaign arenas use.
    pub fn with_codec(codec: C, geometry: MemGeometry) -> Self {
        let width = codec.code_width();
        Self::build(codec, geometry, FaultMap::empty(geometry.words(), width))
    }

    /// Monomorphized counterpart of [`ProtectedMemory::with_fault_map`].
    ///
    /// # Panics
    ///
    /// Panics if the map covers a different word count or is narrower than
    /// the codeword.
    pub fn with_codec_and_fault_map(codec: C, geometry: MemGeometry, map: &FaultMap) -> Self {
        let width = codec.code_width();
        assert_eq!(map.words(), geometry.words(), "fault map word count");
        assert!(
            map.width() >= width,
            "shared fault map must cover the widest codeword"
        );
        let map = map.with_width(width);
        Self::build(codec, geometry, map)
    }

    fn build(codec: C, geometry: MemGeometry, map: FaultMap) -> Self {
        let data_geometry = geometry.with_width(codec.code_width());
        let data = FaultySram::with_faults(data_geometry, map);
        let side = vec![0u16; geometry.words()];
        let shadow = vec![codec.decode(0, 0); geometry.words()];
        ProtectedMemory {
            codec,
            data,
            side,
            shadow,
            fast_path: !FORCE_FULL_DECODE.load(Ordering::Relaxed),
            stats: AccessStats::default(),
        }
    }

    /// Re-arms this memory for a fresh campaign trial: installs a
    /// width-narrowed copy of `map`, zeroes the data and side arrays, and
    /// clears the statistics.
    ///
    /// Observationally identical to rebuilding with
    /// [`ProtectedMemory::with_fault_map`] on the same geometry, but reuses
    /// every allocation — the executor's worker arenas call this once per
    /// trial instead of constructing a new memory. Any installed address
    /// scrambler is removed (fresh construction has none); trials that
    /// scramble must re-install their own key afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the map covers a different word count or is narrower than
    /// the codeword.
    pub fn reset_with_fault_map(&mut self, map: &FaultMap) {
        assert_eq!(map.words(), self.words(), "fault map word count");
        assert!(
            map.width() >= self.codec.code_width(),
            "shared fault map must cover the widest codeword"
        );
        self.data.reload_faults(map);
        self.data.fill(0);
        self.data
            .set_scrambler(dream_mem::AddressScrambler::identity(self.words()));
        self.side.fill(0);
        self.shadow.fill(self.codec.decode(0, 0));
        self.fast_path = !FORCE_FULL_DECODE.load(Ordering::Relaxed);
        self.stats = AccessStats::default();
    }

    /// The technique protecting this memory.
    pub fn kind(&self) -> EmtKind {
        self.codec.kind()
    }

    /// The codec instance (for netlists and widths).
    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.data.geometry().words()
    }

    /// Access statistics accumulated since construction or the last
    /// [`ProtectedMemory::reset_stats`].
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Clears the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// The underlying faulty array (for fault census in reports).
    pub fn data_array(&self) -> &FaultySram {
        &self.data
    }

    /// The raw code bits latched at `addr` — the stored codeword before
    /// any fault overlay. On a fault-free memory this is exactly what a
    /// read decodes; clean-trace recording snapshots it per read so a
    /// batched replay can re-decode the same code under per-lane faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn stored_code(&self, addr: usize) -> u32 {
        self.data.read_raw(addr)
    }

    /// The reliable side word at `addr` (DREAM's sign/mask-ID bits;
    /// zero for codecs without a side array).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn side_word(&self, addr: usize) -> u16 {
        self.side[addr]
    }

    /// Installs a logical→physical address scrambler on the data array
    /// (the paper's §V re-randomization logic). The side array is indexed
    /// logically — its cells are fault-free, so scrambling it would change
    /// nothing observable.
    ///
    /// # Panics
    ///
    /// Panics if the scrambler does not cover the whole array.
    pub fn set_scrambler(&mut self, scrambler: dream_mem::AddressScrambler) {
        self.data.set_scrambler(scrambler);
        // Remapping moves which latched bits a logical address sees, so the
        // fault-free decode shadow is rebuilt from the raw (unfaulted)
        // array contents — O(words), paid once per re-randomization.
        for addr in 0..self.shadow.len() {
            self.shadow[addr] = self.codec.decode(self.data.read_raw(addr), self.side[addr]);
        }
    }

    /// Test-only: enables or disables this memory's clean-word fast path
    /// (both settings are observationally identical; differential tests
    /// compare them).
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Writes a data word: encoder → faulty array (+ side array).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: usize, word: i16) {
        let enc = self.codec.encode(word);
        self.data.write(addr, enc.code);
        self.side[addr] = enc.side;
        // decode(encode(w)) == (w, Clean) for every codec (proven
        // exhaustively in the codec test suites), so the fast-path shadow
        // needs no decoder call here.
        self.shadow[addr] = Decoded {
            word,
            outcome: DecodeOutcome::Clean,
        };
        self.stats.writes += 1;
    }

    /// Reads a data word: faulty array (+ side array) → decoder.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn read(&mut self, addr: usize) -> i16 {
        self.read_decoded(addr).word
    }

    /// Reads a word together with the decoder's outcome classification.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn read_decoded(&mut self, addr: usize) -> Decoded {
        let decoded = if self.fast_path && self.data.is_word_clean(addr) {
            // No stuck lane touches this word: the stored code reads back
            // exactly as written and the shadow holds its decode.
            self.shadow[addr]
        } else {
            let code = self.data.read(addr);
            self.codec.decode(code, self.side[addr])
        };
        self.stats.reads += 1;
        match decoded.outcome {
            DecodeOutcome::Corrected => self.stats.corrected_reads += 1,
            DecodeOutcome::DetectedUncorrectable => self.stats.uncorrectable_reads += 1,
            DecodeOutcome::Clean => {}
        }
        decoded
    }

    /// Reads a data word on behalf of up to 64 trials at once.
    ///
    /// This memory plays the *clean pass* of a batched Monte-Carlo run: it
    /// carries no faults of its own, while each trial's stuck cells live in
    /// a lane of `faults`. The clean decode proceeds exactly as
    /// [`ProtectedMemory::read_decoded`] (statistics included — they are
    /// the clean baseline [`TrialBatch::lane_stats`] offsets). If any
    /// still-alive lane corrupts this address, the stored code is overlaid
    /// through the fault planes and decoded for all lanes at once
    /// ([`EmtCodec::decode_batch`]); lanes whose decoded word differs from
    /// the clean word are evicted from `batch`, surviving lanes accumulate
    /// their outcome deltas. The returned word is the clean word — which,
    /// by the divergence rule, is exactly what every surviving lane reads.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range, or if `faults` covers a different
    /// word count or fewer planes than the codec's codeword width.
    #[inline]
    pub fn read_batch(
        &mut self,
        addr: usize,
        faults: &BatchFaultPlanes,
        batch: &mut TrialBatch,
    ) -> i16 {
        let clean = self.read_decoded(addr);
        let active = faults.dirty_mask(addr) & batch.alive();
        if active != 0 {
            let width = self.codec.code_width() as usize;
            let mut planes = [0u64; 32];
            self.data.read_batch(addr, faults, &mut planes[..width]);
            let d = self.codec.decode_batch(&planes[..width], self.side[addr]);
            let clean_word = clean.word as u16;
            let mut diverged = 0u64;
            for (i, &plane) in d.data.iter().enumerate() {
                let clean_plane = 0u64.wrapping_sub(u64::from(clean_word >> i & 1));
                diverged |= plane ^ clean_plane;
            }
            batch.record_read(
                active,
                diverged,
                d.corrected,
                d.uncorrectable,
                clean.outcome,
            );
        }
        clean.word
    }

    /// Writes a data word on behalf of every trial of a batched pass at
    /// once — an explicit alias of [`ProtectedMemory::write`].
    ///
    /// Stuck-at faults corrupt *reads*, never the latched contents, and by
    /// the divergence rule every surviving lane computes exactly the clean
    /// pass's values — so one shared write covers all lanes, and a lane
    /// that would have written something else is caught (and evicted) at
    /// the read that first showed it a different word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write_batch(&mut self, addr: usize, word: i16) {
        self.write(addr, word);
    }

    /// Writes `data.len()` consecutive words starting at `base` — the
    /// block counterpart of [`ProtectedMemory::write`], with the bounds
    /// check hoisted out of the per-word loop. Statistics advance exactly
    /// as `data.len()` single writes would.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the memory.
    pub fn write_block(&mut self, base: usize, data: &[i16]) {
        let end = base
            .checked_add(data.len())
            .expect("block end overflows usize");
        assert!(end <= self.words(), "block write out of range");
        for (i, &word) in data.iter().enumerate() {
            let addr = base + i;
            let enc = self.codec.encode(word);
            self.data.write(addr, enc.code);
            self.side[addr] = enc.side;
            self.shadow[addr] = Decoded {
                word,
                outcome: DecodeOutcome::Clean,
            };
        }
        self.stats.writes += data.len() as u64;
    }

    /// Reads `out.len()` consecutive words starting at `base` — the block
    /// counterpart of [`ProtectedMemory::read`]. Statistics advance
    /// exactly as `out.len()` single reads would.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the memory.
    pub fn read_block(&mut self, base: usize, out: &mut [i16]) {
        let end = base
            .checked_add(out.len())
            .expect("block end overflows usize");
        assert!(end <= self.words(), "block read out of range");
        let mut corrected = 0u64;
        let mut uncorrectable = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let addr = base + i;
            let decoded = if self.fast_path && self.data.is_word_clean(addr) {
                self.shadow[addr]
            } else {
                let code = self.data.read(addr);
                self.codec.decode(code, self.side[addr])
            };
            match decoded.outcome {
                DecodeOutcome::Corrected => corrected += 1,
                DecodeOutcome::DetectedUncorrectable => uncorrectable += 1,
                DecodeOutcome::Clean => {}
            }
            *slot = decoded.word;
        }
        self.stats.reads += out.len() as u64;
        self.stats.corrected_reads += corrected;
        self.stats.uncorrectable_reads += uncorrectable;
    }

    /// Prices the accumulated statistics with `bundle` at supply `data_v`
    /// over `seconds` of run time.
    pub fn energy(&self, bundle: &EnergyModelBundle, data_v: f64, seconds: f64) -> EnergyBreakdown {
        bundle.run_energy(&self.codec, &self.stats, self.words(), data_v, seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_mem::StuckAt;

    fn geometry() -> MemGeometry {
        MemGeometry::new(64, 16, 1)
    }

    #[test]
    fn clean_memory_round_trips_all_emts() {
        for kind in EmtKind::all() {
            let mut mem = ProtectedMemory::new(kind, geometry());
            for (i, w) in [-32768i16, -100, 0, 100, 32767].iter().enumerate() {
                mem.write(i, *w);
            }
            for (i, w) in [-32768i16, -100, 0, 100, 32767].iter().enumerate() {
                assert_eq!(mem.read(i), *w, "{kind}");
            }
        }
    }

    #[test]
    fn dream_corrects_msb_fault_none_does_not() {
        let mut map = FaultMap::empty(64, 22);
        map.inject(0, 15, StuckAt::One); // sign-region fault
        let mut raw = ProtectedMemory::with_fault_map(EmtKind::None, geometry(), &map);
        raw.write(0, 100);
        assert_ne!(raw.read(0), 100);

        let mut dream = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        dream.write(0, 100);
        assert_eq!(dream.read(0), 100);
        assert_eq!(dream.stats().corrected_reads, 1);
    }

    #[test]
    fn ecc_corrects_single_fails_double() {
        let mut map = FaultMap::empty(64, 22);
        map.inject(0, 4, StuckAt::One);
        map.inject(1, 4, StuckAt::One);
        map.inject(1, 9, StuckAt::One);
        let mut ecc = ProtectedMemory::with_fault_map(EmtKind::EccSecDed, geometry(), &map);
        ecc.write(0, 0);
        ecc.write(1, 0);
        let single = ecc.read_decoded(0);
        assert_eq!(single.word, 0);
        // Word 1 has two stuck-at-1 cells on a zero word: double error.
        let double = ecc.read_decoded(1);
        assert_eq!(double.outcome, DecodeOutcome::DetectedUncorrectable);
        assert_eq!(ecc.stats().uncorrectable_reads, 1);
    }

    #[test]
    fn stats_count_accesses() {
        let mut mem = ProtectedMemory::new(EmtKind::Dream, geometry());
        for i in 0..10 {
            mem.write(i, i as i16);
        }
        for i in 0..5 {
            let _ = mem.read(i);
        }
        let s = mem.stats();
        assert_eq!(s.writes, 10);
        assert_eq!(s.reads, 5);
        assert_eq!(s.accesses(), 15);
        mem.reset_stats();
        assert_eq!(mem.stats().accesses(), 0);
    }

    #[test]
    fn reset_is_equivalent_to_fresh_construction() {
        let wide = FaultMap::generate(64, 22, 0.02, 5);
        for kind in EmtKind::paper_set() {
            // A reused memory carrying stale data, stats, faults and a
            // stale address scrambler…
            let stale = FaultMap::generate(64, 22, 0.05, 99);
            let mut reused = ProtectedMemory::with_fault_map(kind, geometry(), &stale);
            reused.set_scrambler(dream_mem::AddressScrambler::new(64, 0xBAD));
            for i in 0..64 {
                reused.write(i, (i as i16) - 31);
                let _ = reused.read(i);
            }
            reused.reset_with_fault_map(&wide);
            // …must behave exactly like a freshly built one.
            let mut fresh = ProtectedMemory::with_fault_map(kind, geometry(), &wide);
            assert_eq!(reused.stats(), AccessStats::default(), "{kind}");
            for i in 0..64 {
                reused.write(i, (i as i16) * 3 - 90);
                fresh.write(i, (i as i16) * 3 - 90);
            }
            for i in 0..64 {
                assert_eq!(reused.read(i), fresh.read(i), "{kind} word {i}");
            }
            assert_eq!(reused.stats(), fresh.stats(), "{kind}");
        }
    }

    #[test]
    fn energy_ordering_matches_paper_vi_b() {
        // Same workload on each EMT at 0.7 V: DREAM must cost less than
        // ECC, and both more than no protection.
        let bundle = EnergyModelBundle::date16();
        let mut totals = Vec::new();
        for kind in EmtKind::paper_set() {
            let mut mem = ProtectedMemory::new(kind, geometry());
            for i in 0..64 {
                mem.write(i, (i * 17) as i16);
            }
            for _ in 0..2 {
                for i in 0..64 {
                    let _ = mem.read(i);
                }
            }
            totals.push((kind, mem.energy(&bundle, 0.7, 1e-4).total_pj()));
        }
        let none = totals[0].1;
        let dream = totals[1].1;
        let ecc = totals[2].1;
        assert!(none < dream, "protection must cost something");
        assert!(dream < ecc, "DREAM must undercut ECC (paper §VI-B)");
    }

    #[test]
    #[should_panic(expected = "widest codeword")]
    fn narrow_shared_map_rejected() {
        let map = FaultMap::empty(64, 16);
        let _ = ProtectedMemory::with_fault_map(EmtKind::EccSecDed, geometry(), &map);
    }

    #[test]
    fn block_transfers_match_word_at_a_time_accesses() {
        let map = FaultMap::generate(64, 22, 0.02, 17);
        for kind in EmtKind::all() {
            let mut word_mem = ProtectedMemory::with_fault_map(kind, geometry(), &map);
            let mut block_mem = ProtectedMemory::with_fault_map(kind, geometry(), &map);
            let data: Vec<i16> = (0..40).map(|i| (i * 997 - 11_000) as i16).collect();
            for (i, &w) in data.iter().enumerate() {
                word_mem.write(3 + i, w);
            }
            block_mem.write_block(3, &data);
            let word_reads: Vec<i16> = (0..40).map(|i| word_mem.read(3 + i)).collect();
            let mut block_reads = vec![0i16; 40];
            block_mem.read_block(3, &mut block_reads);
            assert_eq!(word_reads, block_reads, "{kind}");
            assert_eq!(word_mem.stats(), block_mem.stats(), "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "block read out of range")]
    fn overrunning_block_read_rejected() {
        let mut mem = ProtectedMemory::new(EmtKind::Dream, geometry());
        let mut buf = vec![0i16; 8];
        mem.read_block(60, &mut buf);
    }

    #[test]
    fn uninitialized_reads_identical_with_and_without_fast_path() {
        // Reading a never-written word decodes the zeroed arrays — for
        // DREAM that is a *Corrected* non-zero word (side word 0 means
        // "run of 1, positive"), which the shadow must reproduce exactly.
        for kind in EmtKind::all() {
            let run = |fast: bool| {
                let mut mem = ProtectedMemory::new(kind, geometry());
                mem.set_fast_path(fast);
                let decoded: Vec<_> = (0..8).map(|a| mem.read_decoded(a)).collect();
                (decoded, mem.stats())
            };
            assert_eq!(run(true), run(false), "{kind}");
        }
    }

    #[test]
    fn scrambler_install_rebuilds_the_fast_path_shadow() {
        // Installing a scrambler *after* writes remaps which latched bits
        // each logical address sees; fast-path reads must still match the
        // full decoder exactly.
        let map = FaultMap::generate(64, 22, 0.05, 23);
        for kind in EmtKind::paper_set() {
            let run = |fast: bool| {
                let mut mem = ProtectedMemory::with_fault_map(kind, geometry(), &map);
                mem.set_fast_path(fast);
                for i in 0..64 {
                    mem.write(i, (i as i16) * 411 - 13_000);
                }
                mem.set_scrambler(dream_mem::AddressScrambler::new(64, 0xC0FFEE));
                let reads: Vec<_> = (0..64).map(|a| mem.read_decoded(a)).collect();
                (reads, mem.stats())
            };
            assert_eq!(run(true), run(false), "{kind}");
        }
    }

    #[test]
    fn batched_reads_match_per_lane_scalar_memories() {
        // The clean memory + fault planes + TrialBatch trio must agree
        // with eight independent scalar memories carrying the same fault
        // maps: identical words while a lane survives, eviction at the
        // first read whose decoded word differs, and — for lanes that
        // survive the whole sweep — identical final statistics.
        let lanes = 8;
        let mut total_survived = 0usize;
        let mut total_evicted = 0usize;
        for kind in EmtKind::all() {
            let mut clean = ProtectedMemory::new(kind, geometry());
            let mut planes = BatchFaultPlanes::new(64, 22);
            let mut scalars: Vec<_> = (0..lanes)
                .map(|l| {
                    let map = FaultMap::generate(64, 22, 0.002, 100 + l as u64);
                    planes.add_lane(l, &map, None);
                    ProtectedMemory::with_fault_map(kind, geometry(), &map)
                })
                .collect();
            let mut batch = TrialBatch::new(lanes);
            for i in 0..64 {
                let w = (i as i16) * 411 - 13_000;
                clean.write_batch(i, w);
                for m in scalars.iter_mut() {
                    m.write(i, w);
                }
            }
            for _pass in 0..2 {
                for i in 0..64 {
                    let alive_before = batch.alive();
                    let w = clean.read_batch(i, &planes, &mut batch);
                    for (l, m) in scalars.iter_mut().enumerate() {
                        let d = m.read_decoded(i);
                        if alive_before >> l & 1 == 1 {
                            assert_eq!(
                                batch.is_alive(l),
                                d.word == w,
                                "{kind} lane {l} addr {i}: eviction iff divergence"
                            );
                        }
                    }
                }
            }
            let clean_stats = clean.stats();
            for (l, m) in scalars.iter().enumerate() {
                if batch.is_alive(l) {
                    total_survived += 1;
                    assert_eq!(
                        batch.lane_stats(l, &clean_stats),
                        m.stats(),
                        "{kind} lane {l} statistics"
                    );
                } else {
                    total_evicted += 1;
                }
            }
        }
        // The fixed seeds must exercise both outcomes of the rule.
        assert!(total_survived > 0, "no lane survived anywhere");
        assert!(total_evicted > 0, "no lane diverged anywhere");
    }

    #[test]
    fn monomorphized_memory_matches_facade() {
        use crate::Dream;
        let map = FaultMap::generate(64, 22, 0.03, 31);
        let mut facade = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        let mut typed = ProtectedMemory::with_codec_and_fault_map(Dream::new(), geometry(), &map);
        assert_eq!(typed.kind(), EmtKind::Dream);
        for i in 0..64 {
            facade.write(i, (i as i16) - 32);
            typed.write(i, (i as i16) - 32);
        }
        for i in 0..64 {
            assert_eq!(facade.read_decoded(i), typed.read_decoded(i), "word {i}");
        }
        assert_eq!(facade.stats(), typed.stats());
    }
}
