//! Property-based tests for the ECG substrate.

use dream_ecg::{Adc, Database, EcgSynth, NoiseModel, Pathology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_pathology() -> impl Strategy<Value = Pathology> {
    prop::sample::select(Pathology::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator is a pure function of (pathology, fs, seed).
    #[test]
    fn synthesis_is_deterministic(p in any_pathology(), seed in any::<u64>()) {
        let mut a = EcgSynth::new(p, 360.0, seed);
        let mut b = EcgSynth::new(p, 360.0, seed);
        prop_assert_eq!(a.generate_mv(200), b.generate_mv(200));
    }

    /// Waveforms stay within physiological millivolt bounds for any seed.
    #[test]
    fn amplitudes_bounded(p in any_pathology(), seed in any::<u64>()) {
        let mut synth = EcgSynth::new(p, 250.0, seed);
        for v in synth.generate_mv(1000) {
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() < 10.0, "{v} mV is not an ECG");
        }
    }

    /// Generating in chunks equals generating in one call (the synthesizer
    /// carries its state correctly).
    #[test]
    fn chunked_generation_is_seamless(seed in any::<u64>(), split in 1usize..399) {
        let mut whole = EcgSynth::new(Pathology::NormalSinus, 360.0, seed);
        let expected = whole.generate_mv(400);
        let mut parts = EcgSynth::new(Pathology::NormalSinus, 360.0, seed);
        let mut got = parts.generate_mv(split);
        got.extend(parts.generate_mv(400 - split));
        for (a, b) in expected.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The ADC transfer function is monotone and saturating.
    #[test]
    fn adc_monotone(a in -4.0f64..4.0, b in -4.0f64..4.0) {
        let adc = Adc::date16();
        if a <= b {
            prop_assert!(adc.quantize(a) <= adc.quantize(b));
        } else {
            prop_assert!(adc.quantize(a) >= adc.quantize(b));
        }
    }

    /// Noise is additive: applying it to a signal equals signal plus the
    /// noise applied to zeros (same RNG stream).
    #[test]
    fn noise_is_additive(seed in any::<u64>()) {
        let signal: Vec<f64> = (0..256).map(|i| f64::from(i) * 0.001).collect();
        let zeros = vec![0.0; 256];
        let model = NoiseModel::date16();
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let noisy = model.apply(&signal, 360.0, &mut rng1);
        let noise = model.apply(&zeros, 360.0, &mut rng2);
        for i in 0..256 {
            prop_assert!((noisy[i] - signal[i] - noise[i]).abs() < 1e-12);
        }
    }

    /// Every record id in the suite range produces a valid record of the
    /// requested length with finite statistics.
    #[test]
    fn records_well_formed(id in 100u16..140, len in 64usize..512) {
        let r = Database::record(id, len);
        prop_assert_eq!(r.samples.len(), len);
        prop_assert!(r.fs > 0.0);
        let frac = r.negative_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }
}
