//! Synthetic ECG substrate.
//!
//! The paper drives its five applications with traces from the MIT-BIH
//! Arrhythmia database, "different ECG signals with different pathologies"
//! (§III). That data cannot ship with this reproduction, so this crate
//! synthesizes equivalent inputs:
//!
//! * [`EcgSynth`] — a dynamical-model generator (McSharry et al.'s ECGSYN
//!   limit-cycle model integrated with RK4) producing millivolt-scale
//!   waveforms with P-QRS-T morphology and beat-to-beat variability,
//! * [`Pathology`] — morphology/rhythm presets (normal sinus, bradycardia,
//!   tachycardia, premature ventricular contractions, atrial
//!   fibrillation), standing in for the database's pathology diversity,
//! * [`NoiseModel`] — baseline wander, mains interference and EMG noise,
//!   the "noisy analog sources" of §III,
//! * [`Adc`] — the 16-bit acquisition front-end. Its default transfer
//!   function leaves the isoelectric baseline slightly **below zero**, so
//!   most samples are negative — the signal statistic behind the paper's
//!   observation that MSB stuck-at-1 faults are often hidden (§III),
//! * [`Record`] / [`Database`] — a deterministic, seeded record suite with
//!   MIT-BIH-style numbering for the experiment campaigns.
//!
//! # Example
//!
//! ```
//! use dream_ecg::{Database, Pathology};
//!
//! let record = Database::record(100, 1024); // 1024 samples, normal sinus
//! assert_eq!(record.pathology, Pathology::NormalSinus);
//! // Mostly-negative samples (the asymmetry Fig. 2 exploits):
//! let neg = record.samples.iter().filter(|&&s| s < 0).count();
//! assert!(neg * 2 > record.samples.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod database;
mod noise;
mod pathology;
mod synth;

pub use adc::Adc;
pub use database::{Database, Record};
pub use noise::NoiseModel;
pub use pathology::{MorphologyParams, Pathology};
pub use synth::EcgSynth;

/// Default sampling rate of the synthetic records (Hz). MIT-BIH records
/// are sampled at 360 Hz.
pub const DEFAULT_FS: f64 = 360.0;
