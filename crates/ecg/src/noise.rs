//! Acquisition noise: the "noisy analog sources" of §III.

use rand::Rng;

/// Additive noise applied to the clean dynamical-model waveform before
/// quantization.
///
/// Three components cover the disturbances the paper's §II-4 lists as the
/// motivation for morphological filtering: slow **baseline wander**
/// (electrode/respiration drift), **mains interference** (AC supply pickup)
/// and broadband **EMG noise** (muscle activity).
///
/// ```
/// use dream_ecg::NoiseModel;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let clean = vec![0.0f64; 720];
/// let noisy = NoiseModel::date16().apply(&clean, 360.0, &mut rng);
/// assert!(noisy.iter().any(|v| v.abs() > 1e-3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Peak amplitude of the baseline wander (mV).
    pub baseline_mv: f64,
    /// Baseline wander frequency (Hz).
    pub baseline_hz: f64,
    /// Peak amplitude of the mains pickup (mV).
    pub mains_mv: f64,
    /// Mains frequency (Hz) — 50 Hz in the paper's European setting.
    pub mains_hz: f64,
    /// RMS amplitude of the white EMG noise (mV).
    pub emg_rms_mv: f64,
}

impl NoiseModel {
    /// A noise-free model (for golden references and unit tests).
    pub fn clean() -> Self {
        NoiseModel {
            baseline_mv: 0.0,
            baseline_hz: 0.33,
            mains_mv: 0.0,
            mains_hz: 50.0,
            emg_rms_mv: 0.0,
        }
    }

    /// Ambulatory-grade noise: visible wander and hum, mild EMG — the
    /// conditions wearable WBSN front-ends face.
    pub fn date16() -> Self {
        NoiseModel {
            baseline_mv: 0.12,
            baseline_hz: 0.33,
            mains_mv: 0.04,
            mains_hz: 50.0,
            emg_rms_mv: 0.02,
        }
    }

    /// Scales every noise amplitude by `factor` (0.0 = clean, 1.0 =
    /// unchanged) — the knob behind the `noise-sweep` scenario, which
    /// stresses how input quality shifts each EMT's fault sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "noise scale must be a non-negative finite number, got {factor}"
        );
        NoiseModel {
            baseline_mv: self.baseline_mv * factor,
            mains_mv: self.mains_mv * factor,
            emg_rms_mv: self.emg_rms_mv * factor,
            ..*self
        }
    }

    /// Returns `signal` plus noise, sampled at `fs` Hz.
    pub fn apply<R: Rng>(&self, signal: &[f64], fs: f64, rng: &mut R) -> Vec<f64> {
        let two_pi = 2.0 * std::f64::consts::PI;
        // Random phases decorrelate records drawn with different RNG states.
        let phase_b: f64 = rng.gen_range(0.0..two_pi);
        let phase_m: f64 = rng.gen_range(0.0..two_pi);
        signal
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let t = i as f64 / fs;
                let wander = self.baseline_mv * (two_pi * self.baseline_hz * t + phase_b).sin();
                let mains = self.mains_mv * (two_pi * self.mains_hz * t + phase_m).sin();
                // Uniform noise scaled to the requested RMS (var of U(-a,a)
                // is a²/3, so a = rms * sqrt(3)).
                let a = self.emg_rms_mv * 3f64.sqrt();
                let emg = if a > 0.0 { rng.gen_range(-a..a) } else { 0.0 };
                s + wander + mains + emg
            })
            .collect()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::date16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let signal: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.01).collect();
        assert_eq!(NoiseModel::clean().apply(&signal, 360.0, &mut rng), signal);
    }

    #[test]
    fn noise_amplitude_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let zeros = vec![0.0; 7200];
        let m = NoiseModel::date16();
        let noisy = m.apply(&zeros, 360.0, &mut rng);
        let bound = m.baseline_mv + m.mains_mv + m.emg_rms_mv * 3f64.sqrt() + 1e-9;
        for v in noisy {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn wander_dominates_low_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let zeros = vec![0.0; 3600];
        let m = NoiseModel {
            emg_rms_mv: 0.0,
            mains_mv: 0.0,
            ..NoiseModel::date16()
        };
        let noisy = m.apply(&zeros, 360.0, &mut rng);
        // Pure slow sinusoid: adjacent samples differ very little.
        for pair in noisy.windows(2) {
            assert!((pair[1] - pair[0]).abs() < 1e-3);
        }
    }

    #[test]
    fn scaling_is_linear_and_zero_is_clean() {
        let m = NoiseModel::date16();
        let doubled = m.scaled(2.0);
        assert_eq!(doubled.baseline_mv, m.baseline_mv * 2.0);
        assert_eq!(doubled.mains_mv, m.mains_mv * 2.0);
        assert_eq!(doubled.emg_rms_mv, m.emg_rms_mv * 2.0);
        assert_eq!(doubled.baseline_hz, m.baseline_hz);
        assert_eq!(m.scaled(1.0), m);
        let zero = m.scaled(0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let signal: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.01).collect();
        assert_eq!(zero.apply(&signal, 360.0, &mut rng), signal);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_rejected() {
        let _ = NoiseModel::date16().scaled(-1.0);
    }

    #[test]
    fn emg_noise_rms_close_to_spec() {
        let mut rng = StdRng::seed_from_u64(4);
        let zeros = vec![0.0; 50_000];
        let m = NoiseModel {
            baseline_mv: 0.0,
            mains_mv: 0.0,
            emg_rms_mv: 0.05,
            ..NoiseModel::date16()
        };
        let noisy = m.apply(&zeros, 360.0, &mut rng);
        let rms = (noisy.iter().map(|v| v * v).sum::<f64>() / noisy.len() as f64).sqrt();
        assert!((rms - 0.05).abs() < 0.005, "rms {rms}");
    }
}
