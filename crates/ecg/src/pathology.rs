//! Pathology presets: morphology and rhythm parameters.

use rand::Rng;

/// Parameters of one beat's morphology in the ECGSYN dynamical model:
/// five Gaussian event attractors (P, Q, R, S, T) on the unit limit cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MorphologyParams {
    /// Angular positions of the P, Q, R, S, T events (radians).
    pub thetas: [f64; 5],
    /// Event amplitudes (model units ≈ millivolts).
    pub amplitudes: [f64; 5],
    /// Event angular widths (radians).
    pub widths: [f64; 5],
}

impl MorphologyParams {
    /// The canonical normal-beat parameters from McSharry et al. (2003).
    pub fn normal() -> Self {
        use std::f64::consts::PI;
        MorphologyParams {
            thetas: [-PI / 3.0, -PI / 12.0, 0.0, PI / 12.0, PI / 2.0],
            amplitudes: [1.2, -5.0, 30.0, -7.5, 0.75],
            widths: [0.25, 0.1, 0.1, 0.1, 0.4],
        }
    }

    /// A ventricular ectopic beat: no P wave, broad high-energy QRS,
    /// discordant (inverted) T.
    pub fn ventricular_ectopic() -> Self {
        use std::f64::consts::PI;
        MorphologyParams {
            thetas: [-PI / 3.0, -PI / 9.0, 0.0, PI / 9.0, PI / 2.0],
            amplitudes: [0.0, -8.0, 22.0, -9.0, -1.2],
            widths: [0.25, 0.18, 0.22, 0.18, 0.5],
        }
    }

    /// A beat with the P wave suppressed (atrial fibrillation conducts
    /// without organized atrial activity).
    pub fn without_p_wave(self) -> Self {
        let mut m = self;
        m.amplitudes[0] = 0.0;
        m
    }
}

/// The rhythm/morphology classes the record suite covers.
///
/// The paper averages its characterization over "different ECG signals with
/// different pathologies" (§III); these presets provide that diversity with
/// clinically plausible heart rates and beat statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pathology {
    /// Normal sinus rhythm, ~70 bpm, mild respiratory variability.
    NormalSinus,
    /// Sinus bradycardia, ~45 bpm.
    Bradycardia,
    /// Sinus tachycardia, ~150 bpm.
    Tachycardia,
    /// Normal rhythm with interspersed premature ventricular contractions.
    PrematureVentricular,
    /// Atrial fibrillation: irregularly irregular RR, absent P waves.
    AtrialFibrillation,
}

impl Pathology {
    /// All presets (the record suite iterates these).
    pub fn all() -> [Pathology; 5] {
        [
            Pathology::NormalSinus,
            Pathology::Bradycardia,
            Pathology::Tachycardia,
            Pathology::PrematureVentricular,
            Pathology::AtrialFibrillation,
        ]
    }

    /// Mean RR interval in seconds.
    pub fn mean_rr(self) -> f64 {
        match self {
            Pathology::NormalSinus => 60.0 / 70.0,
            Pathology::Bradycardia => 60.0 / 45.0,
            Pathology::Tachycardia => 60.0 / 150.0,
            Pathology::PrematureVentricular => 60.0 / 75.0,
            Pathology::AtrialFibrillation => 60.0 / 110.0,
        }
    }

    /// Coefficient of variation of the RR interval.
    pub fn rr_cv(self) -> f64 {
        match self {
            Pathology::NormalSinus => 0.05,
            Pathology::Bradycardia => 0.04,
            Pathology::Tachycardia => 0.03,
            Pathology::PrematureVentricular => 0.06,
            Pathology::AtrialFibrillation => 0.24,
        }
    }

    /// Draws the next beat's RR interval (seconds) and morphology.
    pub fn next_beat<R: Rng>(self, rng: &mut R) -> (f64, MorphologyParams) {
        let base = self.mean_rr();
        let cv = self.rr_cv();
        // Gaussian via Box-Muller on two uniforms; clamped to a plausible
        // physiological band.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let rr = (base * (1.0 + cv * gauss)).clamp(0.25, 2.5);
        let morphology = match self {
            Pathology::PrematureVentricular => {
                // ~1 in 6 beats is an early, wide ectopic.
                if rng.gen_range(0.0..1.0) < 1.0 / 6.0 {
                    return (0.7 * base, MorphologyParams::ventricular_ectopic());
                }
                MorphologyParams::normal()
            }
            Pathology::AtrialFibrillation => MorphologyParams::normal().without_p_wave(),
            _ => MorphologyParams::normal(),
        };
        (rr, morphology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_morphology_has_dominant_r() {
        let m = MorphologyParams::normal();
        let r = m.amplitudes[2];
        assert!(m.amplitudes.iter().all(|a| a.abs() <= r.abs()));
        assert!(r > 0.0);
    }

    #[test]
    fn rates_are_clinically_ordered() {
        assert!(Pathology::Bradycardia.mean_rr() > Pathology::NormalSinus.mean_rr());
        assert!(Pathology::Tachycardia.mean_rr() < Pathology::NormalSinus.mean_rr());
    }

    #[test]
    fn af_is_most_irregular() {
        for p in Pathology::all() {
            if p != Pathology::AtrialFibrillation {
                assert!(p.rr_cv() < Pathology::AtrialFibrillation.rr_cv());
            }
        }
    }

    #[test]
    fn af_beats_lack_p_waves() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let (_, m) = Pathology::AtrialFibrillation.next_beat(&mut rng);
            assert_eq!(m.amplitudes[0], 0.0);
        }
    }

    #[test]
    fn pvc_mixes_ectopics_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ectopics = 0;
        for _ in 0..600 {
            let (_, m) = Pathology::PrematureVentricular.next_beat(&mut rng);
            if m.amplitudes[0] == 0.0 {
                ectopics += 1;
            }
        }
        // Expect roughly 100 of 600; allow a broad band.
        assert!((40..200).contains(&ectopics), "{ectopics}");
    }

    #[test]
    fn rr_draws_stay_physiological() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in Pathology::all() {
            for _ in 0..200 {
                let (rr, _) = p.next_beat(&mut rng);
                assert!((0.25..=2.5).contains(&rr));
            }
        }
    }
}
