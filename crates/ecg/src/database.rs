//! The deterministic record suite (MIT-BIH substitute).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Adc, EcgSynth, NoiseModel, Pathology, DEFAULT_FS};

/// One acquired ECG record: 16-bit samples plus provenance.
///
/// Mirrors what the applications consume from the MIT-BIH Arrhythmia
/// database: a numbered record with a known sampling rate and pathology.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Record number (MIT-BIH-style: 100, 101, …).
    pub id: u16,
    /// The rhythm/morphology class of this record.
    pub pathology: Pathology,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// 16-bit ADC samples.
    pub samples: Vec<i16>,
}

impl Record {
    /// Fraction of samples that are negative (the statistic behind the
    /// Fig. 2 stuck-at-1 asymmetry).
    pub fn negative_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s < 0).count() as f64 / self.samples.len() as f64
    }
}

/// Deterministic factory for the record suite.
///
/// Record IDs follow the MIT-BIH convention of starting at 100. Each ID
/// maps to a fixed `(pathology, seed)` pair, so every experiment in the
/// repository sees bit-identical inputs.
///
/// ```
/// use dream_ecg::Database;
/// let a = Database::record(104, 512);
/// let b = Database::record(104, 512);
/// assert_eq!(a.samples, b.samples);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Database;

/// First record number of the suite.
const FIRST_ID: u16 = 100;

impl Database {
    /// Number of records in the standard suite (two per pathology).
    pub const SUITE_SIZE: usize = 10;

    /// Generates record `id` with `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `id` is below 100.
    pub fn record(id: u16, len: usize) -> Record {
        Self::record_with_noise(id, len, &NoiseModel::date16())
    }

    /// Generates record `id` with `len` samples under an explicit noise
    /// model — same waveform and RNG streams as [`Database::record`], only
    /// the additive disturbances differ. `NoiseModel::date16()` reproduces
    /// the standard suite bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `id` is below 100.
    pub fn record_with_noise(id: u16, len: usize, noise: &NoiseModel) -> Record {
        assert!(id >= FIRST_ID, "record numbers start at {FIRST_ID}");
        let index = usize::from(id - FIRST_ID);
        let pathology = Pathology::all()[index % Pathology::all().len()];
        // Seed derived from the record id; the noise RNG is split off so
        // waveform and noise stay independent.
        let seed = 0xD8EA_u64 << 16 | u64::from(id);
        let mut synth = EcgSynth::new(pathology, DEFAULT_FS, seed);
        let clean = synth.generate_mv(len);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
        let noisy = noise.apply(&clean, DEFAULT_FS, &mut noise_rng);
        Record {
            id,
            pathology,
            fs: DEFAULT_FS,
            samples: Adc::date16().quantize_all(&noisy),
        }
    }

    /// The standard evaluation suite: [`Database::SUITE_SIZE`] records of
    /// `len` samples covering every pathology twice — the "different ECG
    /// signals with different pathologies" the paper averages over (§III).
    pub fn date16_suite(len: usize) -> Vec<Record> {
        (0..Self::SUITE_SIZE as u16)
            .map(|i| Self::record(FIRST_ID + i, len))
            .collect()
    }

    /// [`Database::date16_suite`] under an explicit noise model.
    pub fn date16_suite_with_noise(len: usize, noise: &NoiseModel) -> Vec<Record> {
        (0..Self::SUITE_SIZE as u16)
            .map(|i| Self::record_with_noise(FIRST_ID + i, len, noise))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_pathologies() {
        let suite = Database::date16_suite(256);
        assert_eq!(suite.len(), Database::SUITE_SIZE);
        for p in Pathology::all() {
            assert!(suite.iter().any(|r| r.pathology == p), "{p:?} missing");
        }
    }

    #[test]
    fn records_are_deterministic() {
        assert_eq!(Database::record(107, 300), Database::record(107, 300));
    }

    #[test]
    fn unit_noise_scale_reproduces_standard_records() {
        let standard = Database::record(103, 400);
        let scaled = Database::record_with_noise(103, 400, &NoiseModel::date16().scaled(1.0));
        assert_eq!(standard, scaled);
    }

    #[test]
    fn heavier_noise_changes_samples_but_not_waveform_seed() {
        let standard = Database::record(103, 400);
        let noisy = Database::record_with_noise(103, 400, &NoiseModel::date16().scaled(4.0));
        assert_eq!(standard.pathology, noisy.pathology);
        assert_ne!(standard.samples, noisy.samples);
        let clean = Database::record_with_noise(103, 400, &NoiseModel::clean());
        // Same underlying waveform: the clean record correlates strongly
        // with the standard one (noise is a small perturbation).
        let diff: i64 = standard
            .samples
            .iter()
            .zip(&clean.samples)
            .map(|(&a, &b)| i64::from(a) - i64::from(b))
            .map(i64::abs)
            .sum();
        assert!((diff / standard.samples.len() as i64) < 1000);
    }

    #[test]
    fn distinct_ids_give_distinct_signals() {
        let a = Database::record(100, 300);
        let b = Database::record(105, 300);
        assert_eq!(a.pathology, b.pathology); // same class, different seed
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn samples_are_mostly_negative() {
        // The §III asymmetry argument: "most of the biosignal samples
        // employed during the experiments are negative".
        for r in Database::date16_suite(2048) {
            assert!(
                r.negative_fraction() > 0.5,
                "record {} only {:.2} negative",
                r.id,
                r.negative_fraction()
            );
        }
    }

    #[test]
    fn samples_leave_sign_run_headroom() {
        // DREAM's premise: samples do not use the full 16-bit range.
        let r = Database::record(100, 2048);
        let max_abs = r.samples.iter().map(|s| i32::from(*s).abs()).max().unwrap();
        assert!(max_abs < 20_000, "peak {max_abs} leaves no headroom");
        assert!(max_abs > 2_000, "signal suspiciously small: {max_abs}");
    }

    #[test]
    #[should_panic(expected = "record numbers start at")]
    fn low_ids_rejected() {
        let _ = Database::record(42, 10);
    }
}
