//! The 16-bit acquisition front-end.

/// Models the analog-to-digital converter that turns millivolt waveforms
/// into the 16-bit samples the applications store in data memory.
///
/// Two properties of the default transfer function matter to the paper's
/// analysis:
///
/// * **headroom** — the gain leaves the R peaks well inside the 16-bit
///   range, so "most of the samples … contain series of bits with the same
///   value on the MSB positions" (§IV): long sign-extension runs are what
///   DREAM protects;
/// * **negative baseline** — a small negative offset parks the isoelectric
///   line below zero, making most samples negative. That reproduces the
///   §III observation that stuck-at-**1** faults on MSBs are often hidden
///   (the bits are already 1 in two's complement).
///
/// ```
/// use dream_ecg::Adc;
/// let adc = Adc::date16();
/// assert!(adc.quantize(0.0) < 0);          // baseline below zero
/// assert!(adc.quantize(1.0) > 0);          // R peaks go positive
/// assert_eq!(adc.quantize(100.0), i16::MAX); // saturates, never wraps
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adc {
    /// Conversion gain (counts per millivolt).
    pub counts_per_mv: f64,
    /// Input-referred offset (millivolts) added before conversion.
    pub offset_mv: f64,
}

impl Adc {
    /// The front-end used throughout the reproduction: 8192 counts/mV with
    /// a −0.12 mV offset.
    pub fn date16() -> Self {
        Adc {
            counts_per_mv: 8192.0,
            offset_mv: -0.12,
        }
    }

    /// Quantizes one millivolt value to a 16-bit sample (round to nearest,
    /// saturating).
    pub fn quantize(&self, mv: f64) -> i16 {
        let counts = ((mv + self.offset_mv) * self.counts_per_mv).round();
        counts.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
    }

    /// Quantizes a whole waveform.
    pub fn quantize_all(&self, mv: &[f64]) -> Vec<i16> {
        mv.iter().map(|&v| self.quantize(v)).collect()
    }

    /// The inverse transfer function (for plotting/debugging; lossy by one
    /// quantization step).
    pub fn to_mv(&self, sample: i16) -> f64 {
        f64::from(sample) / self.counts_per_mv - self.offset_mv
    }
}

impl Default for Adc {
    fn default() -> Self {
        Self::date16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_is_half_lsb() {
        let adc = Adc::date16();
        for i in -50..50 {
            let mv = f64::from(i) * 0.0137;
            let q = adc.quantize(mv);
            let back = adc.to_mv(q);
            assert!((back - mv).abs() <= 0.5 / adc.counts_per_mv + 1e-12);
        }
    }

    #[test]
    fn saturates_at_rails() {
        let adc = Adc::date16();
        assert_eq!(adc.quantize(10.0), i16::MAX);
        assert_eq!(adc.quantize(-10.0), i16::MIN);
    }

    #[test]
    fn baseline_maps_negative() {
        let adc = Adc::date16();
        assert!(adc.quantize(0.0) < 0);
        assert!(adc.quantize(0.05) < 0);
    }

    #[test]
    fn typical_samples_leave_msb_headroom() {
        let adc = Adc::date16();
        // A 1.2 mV R peak uses ~2^13 counts: at least two sign bits spare.
        let peak = adc.quantize(1.2);
        assert!(peak.abs() < i16::MAX / 3);
    }
}
