//! The ECGSYN-style dynamical-model waveform generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{MorphologyParams, Pathology};

/// Synthesizes millivolt-scale ECG waveforms from a three-dimensional
/// dynamical system (McSharry, Clifford, Tarassenko & Smith, 2003).
///
/// A trajectory circles the unit limit cycle in the `(x, y)` plane — one
/// revolution per heartbeat — while five Gaussian attractors placed at the
/// P, Q, R, S and T angles pull the `z` coordinate up and down; `z` is the
/// ECG. The angular velocity is re-drawn per beat from the active
/// [`Pathology`], which also switches beat morphology (e.g. ectopics).
/// Integration is classic RK4 at the output sampling rate.
///
/// Everything is deterministic in the seed — the experiment campaigns rely
/// on regenerating identical inputs across EMTs and voltages.
///
/// ```
/// use dream_ecg::{EcgSynth, Pathology};
/// let mut synth = EcgSynth::new(Pathology::NormalSinus, 360.0, 7);
/// let wave = synth.generate_mv(720); // two seconds
/// let peak = wave.iter().cloned().fold(f64::MIN, f64::max);
/// assert!(peak > 0.5, "R peaks should rise above baseline: {peak}");
/// ```
#[derive(Clone, Debug)]
pub struct EcgSynth {
    pathology: Pathology,
    fs: f64,
    rng: StdRng,
    /// Dynamical state (x, y, z).
    state: [f64; 3],
    /// Elapsed time (s), drives the respiratory baseline term.
    t: f64,
    /// Angular velocity of the current beat (rad/s).
    omega: f64,
    /// Morphology of the current beat.
    morphology: MorphologyParams,
}

/// Respiratory baseline oscillation frequency (Hz).
const RESP_FREQ_HZ: f64 = 0.25;
/// Respiratory baseline amplitude (model units; ~0.05 mV after gain).
const RESP_AMP_MV: f64 = 0.002;
/// Relaxation rate of z toward the baseline (1/s).
const Z_RELAX: f64 = 1.0;
/// Output gain from model units to millivolts. The attractor amplitudes of
/// McSharry et al. yield event heights of a·b²/2π model units (≈0.05 for
/// the R wave); ECGSYN rescales its output the same way to reach clinical
/// millivolt amplitudes.
const Z_OUTPUT_GAIN: f64 = 25.0;

impl EcgSynth {
    /// Creates a generator for the given pathology, sampling rate (Hz) and
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn new(pathology: Pathology, fs: f64, seed: u64) -> Self {
        assert!(fs > 0.0, "sampling rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let (rr, morphology) = pathology.next_beat(&mut rng);
        EcgSynth {
            pathology,
            fs,
            rng,
            state: [-1.0, 0.0, 0.0],
            t: 0.0,
            omega: 2.0 * std::f64::consts::PI / rr,
            morphology,
        }
    }

    /// The active pathology.
    pub fn pathology(&self) -> Pathology {
        self.pathology
    }

    /// The sampling rate (Hz).
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Generates the next `n` samples in millivolts.
    pub fn generate_mv(&mut self, n: usize) -> Vec<f64> {
        let h = 1.0 / self.fs;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let before = angle(self.state);
            self.rk4_step(h);
            let after = angle(self.state);
            // Beat boundary: the trajectory crosses θ = π (wrap from +π to
            // -π). Re-draw RR and morphology for the new beat.
            if wrapped(before, after) {
                let (rr, morphology) = self.pathology.next_beat(&mut self.rng);
                self.omega = 2.0 * std::f64::consts::PI / rr;
                self.morphology = morphology;
            }
            self.t += h;
            out.push(self.state[2] * Z_OUTPUT_GAIN);
        }
        out
    }

    fn rk4_step(&mut self, h: f64) {
        let s = self.state;
        let t = self.t;
        let k1 = self.derivatives(s, t);
        let k2 = self.derivatives(add(s, scale(k1, h / 2.0)), t + h / 2.0);
        let k3 = self.derivatives(add(s, scale(k2, h / 2.0)), t + h / 2.0);
        let k4 = self.derivatives(add(s, scale(k3, h)), t + h);
        for i in 0..3 {
            self.state[i] = s[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    fn derivatives(&self, s: [f64; 3], t: f64) -> [f64; 3] {
        let [x, y, z] = s;
        let alpha = 1.0 - (x * x + y * y).sqrt();
        let theta = y.atan2(x);
        let dx = alpha * x - self.omega * y;
        let dy = alpha * y + self.omega * x;
        let mut dz = 0.0;
        let m = &self.morphology;
        for i in 0..5 {
            let dtheta = wrap_angle(theta - m.thetas[i]);
            let w = m.widths[i];
            dz -= m.amplitudes[i] * dtheta * (-dtheta * dtheta / (2.0 * w * w)).exp();
        }
        // Normalize the event drive by the angular rate: the trajectory
        // spends time ∝ 1/ω near each attractor, so without this factor a
        // tachycardic beat would shrink with the RR interval instead of
        // keeping its clinical amplitude.
        dz *= self.omega / (2.0 * std::f64::consts::PI);
        let z0 = RESP_AMP_MV * (2.0 * std::f64::consts::PI * RESP_FREQ_HZ * t).sin();
        dz -= Z_RELAX * (z - z0);
        [dx, dy, dz]
    }
}

#[inline]
fn angle(s: [f64; 3]) -> f64 {
    s[1].atan2(s[0])
}

/// Did the trajectory wrap past θ = ±π between two samples?
#[inline]
fn wrapped(before: f64, after: f64) -> bool {
    before > 2.0 && after < -2.0
}

#[inline]
fn wrap_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * std::f64::consts::PI);
    if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    } else if a < -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    }
    a
}

#[inline]
fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

#[inline]
fn scale(a: [f64; 3], k: f64) -> [f64; 3] {
    [a[0] * k, a[1] * k, a[2] * k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = EcgSynth::new(Pathology::NormalSinus, 360.0, 5);
        let mut b = EcgSynth::new(Pathology::NormalSinus, 360.0, 5);
        assert_eq!(a.generate_mv(500), b.generate_mv(500));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = EcgSynth::new(Pathology::NormalSinus, 360.0, 5);
        let mut b = EcgSynth::new(Pathology::NormalSinus, 360.0, 6);
        assert_ne!(a.generate_mv(500), b.generate_mv(500));
    }

    #[test]
    fn r_peak_rate_tracks_pathology() {
        // Count prominent positive peaks over 20 s and compare to the
        // pathology's heart rate.
        for (p, lo, hi) in [
            (Pathology::NormalSinus, 18, 30),
            (Pathology::Bradycardia, 10, 20),
            (Pathology::Tachycardia, 40, 60),
        ] {
            let mut synth = EcgSynth::new(p, 250.0, 11);
            let wave = synth.generate_mv(5000);
            let max = wave.iter().cloned().fold(f64::MIN, f64::max);
            let thresh = 0.5 * max;
            let mut peaks = 0;
            let mut above = false;
            for &v in &wave {
                if v > thresh && !above {
                    peaks += 1;
                    above = true;
                } else if v < thresh / 2.0 {
                    above = false;
                }
            }
            assert!(
                (lo..=hi).contains(&peaks),
                "{p:?}: {peaks} beats in 20 s not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn amplitude_stays_in_millivolt_range() {
        for p in Pathology::all() {
            let mut synth = EcgSynth::new(p, 360.0, 3);
            let wave = synth.generate_mv(3600);
            for &v in &wave {
                assert!(v.abs() < 5.0, "{p:?} produced {v} mV");
            }
        }
    }

    #[test]
    fn baseline_spends_most_time_near_zero() {
        let mut synth = EcgSynth::new(Pathology::NormalSinus, 360.0, 9);
        let wave = synth.generate_mv(3600);
        let near = wave.iter().filter(|v| v.abs() < 0.3).count();
        assert!(near * 3 > wave.len() * 2, "{near} of {}", wave.len());
    }
}
