//! The `dream` CLI: one front door for every campaign.
//!
//! ```text
//! dream list
//! dream run <scenario|spec.json> [--smoke] [--threads N] [--batch [on|off]] [--progress]
//!           [--sink table|csv:DIR|jsonl:DIR[,append]]
//!           [--window N] [--records N] [--trials N] [--runs N]
//!           [--seed N] [--tolerance DB] [--emt none|parity|dream|ecc]
//!           [--fault-model iid|burst[:LEN]|column[:WEIGHT]|bank-voltage[:AMP]]
//! dream spec <scenario|spec.json> [--smoke] [overrides…]
//! dream serve [--addr HOST:PORT] [--store DIR] [--workers N|HOST:PORT,…] [--threads N]
//!            [--queue N] [--timeout-ms N] [--deadline-ms N] [--retry-after SECS]
//!            [--shards K] [--worker]
//! dream fetch <scenario|spec.json> [--addr HOST:PORT] [--out FILE]
//!            [--retries N] [--smoke] [overrides…]
//! dream drain [--addr HOST:PORT] [--exit]
//! dream compare <a> <b> [--store DIR]
//! ```
//!
//! `run` resolves its target against the scenario registry first; a
//! target containing a path separator or ending in `.json` is read as a
//! spec file instead. Rows stream to the selected sink as grid points
//! complete; with a `DIR` sink they stream to
//! `DIR/<scenario>.<csv|jsonl|txt>` and an aligned table still prints to
//! stdout. `--sink` uses the same grammar as the campaign service's sink
//! negotiation ([`dream_sim::scenario::SinkSpec::parse`]); the historical
//! `--format`/`--out`/`--append` spellings remain as aliases.
//!
//! `spec` prints the fully resolved scenario JSON — the exact payload to
//! `POST /campaigns` on a `dream serve` instance. `fetch` POSTs that
//! payload through the retrying client ([`dream_serve::client`]): it
//! backs off with jitter on transport faults, honors `Retry-After` when
//! the service sheds load, and resumes interrupted streams so the output
//! is the complete artifact. `drain` asks a running service to stop
//! admitting and cancel in-flight campaigns (`--exit` also terminates
//! the process once idle).
//!
//! `compare` diffs two row sets field by field — each argument is a
//! CSV/JSONL artifact path or, when no such file exists, a campaign id in
//! the artifact store (`--store DIR`, default `results/store`). The
//! process exits non-zero on any mismatch, so scripted equivalence checks
//! (batched vs scalar runs, resumed vs clean artifacts) can gate on it.
//!
//! The historical per-figure binaries (`fig2`, `fig4`, `energy`,
//! `tradeoff`, `ablation`) are shims over [`legacy_shim`], which maps
//! their original flags onto the same path.

use std::io::{self, Write};
use std::path::PathBuf;

use dream_sim::report::{CsvSink, JsonlSink, TableSink};
use dream_sim::scenario::{
    emt_from_token, registry, CampaignRunner, FaultModelSpec, Scenario, ScenarioOutcome, ShardPlan,
    SinkFormat, SinkSpec,
};

use crate::Args;

/// Entry point of the `dream` binary: dispatches on the first positional
/// argument.
///
/// # Panics
///
/// Panics with a readable message on unknown subcommands, unknown
/// scenarios, malformed spec files, or I/O failures — the binary's error
/// reporting.
pub fn main_from_env() {
    let args = Args::from_env();
    match args.positional(0) {
        Some("list") => list(),
        Some("run") => {
            let target = args
                .positional(1)
                .unwrap_or_else(|| panic!("usage: dream run <scenario|spec.json> [flags]"));
            run(target, &args);
        }
        Some("spec") => {
            let target = args
                .positional(1)
                .unwrap_or_else(|| panic!("usage: dream spec <scenario|spec.json> [flags]"));
            let mut sc = resolve(target, args.switch("smoke"));
            apply_overrides(&mut sc, &args);
            sc.validate()
                .unwrap_or_else(|e| panic!("scenario {}: {e}", sc.name));
            println!("{}", sc.to_json());
        }
        Some("serve") => serve(&args),
        Some("fetch") => {
            let target = args
                .positional(1)
                .unwrap_or_else(|| panic!("usage: dream fetch <scenario|spec.json> [flags]"));
            fetch(target, &args);
        }
        Some("drain") => drain(&args),
        Some("compare") => {
            let (Some(a), Some(b)) = (args.positional(1), args.positional(2)) else {
                panic!("usage: dream compare <a> <b> [--store DIR]")
            };
            compare(a, b, &args);
        }
        Some(other) => {
            panic!("unknown subcommand {other:?} (expected `list`, `run`, `spec`, `serve`, `fetch`, `drain`, or `compare`)")
        }
        None => {
            list();
            eprintln!("\nusage: dream run <scenario|spec.json> [--smoke] [--threads N] [--sink table|csv:DIR|jsonl:DIR[,append]]");
            eprintln!(
                "       dream spec <scenario|spec.json> [--smoke]   dream serve [--addr HOST:PORT]"
            );
            eprintln!(
                "       dream fetch <scenario|spec.json> [--addr HOST:PORT] [--out FILE]   dream drain [--exit]"
            );
            eprintln!("       dream compare <a> <b> [--store DIR]");
        }
    }
}

/// Submits a campaign through the retrying client and streams its rows
/// to stdout or `--out FILE`, surviving sheds and broken streams.
fn fetch(target: &str, args: &Args) {
    let addr = args.value("addr").unwrap_or("127.0.0.1:7163").to_string();
    let mut sc = resolve(target, args.switch("smoke"));
    apply_overrides(&mut sc, args);
    sc.validate()
        .unwrap_or_else(|e| panic!("scenario {}: {e}", sc.name));
    let spec_json = sc.to_json();
    let policy = dream_serve::RetryPolicy {
        max_attempts: u32::try_from(args.number("retries", 8)).unwrap_or(8).max(1),
        ..dream_serve::RetryPolicy::default()
    };
    let outcome = match args.value("out") {
        Some(path) => {
            let mut file =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            let outcome = dream_serve::fetch_campaign(&addr, &spec_json, &mut file, &policy)
                .unwrap_or_else(|e| panic!("fetch {}: {e}", sc.name));
            eprintln!("wrote {path}");
            outcome
        }
        None => {
            let stdout = io::stdout();
            let mut lock = stdout.lock();
            dream_serve::fetch_campaign(&addr, &spec_json, &mut lock, &policy)
                .unwrap_or_else(|e| panic!("fetch {}: {e}", sc.name))
        }
    };
    eprintln!(
        "fetch {}: {} rows in {} attempt(s) ({} throttled, {} rows resumed, cache {})",
        sc.name,
        outcome.rows,
        outcome.attempts,
        outcome.throttled,
        outcome.resumed_rows,
        outcome.cache.as_deref().unwrap_or("?"),
    );
}

/// Diffs two row sets (artifact paths or store ids) and exits non-zero
/// on any mismatch.
fn compare(a: &str, b: &str, args: &Args) {
    let read = |target: &str| -> String {
        let path = std::path::Path::new(target);
        if path.is_file() {
            return std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {target}: {e}"));
        }
        // Not a file: try the artifact store (the ids `dream serve` mints).
        let store_dir = args
            .value("store")
            .map(PathBuf::from)
            .unwrap_or_else(|| crate::results_dir().join("store"));
        let store = dream_serve::Store::open(&store_dir)
            .unwrap_or_else(|e| panic!("cannot open store {}: {e}", store_dir.display()));
        let rows = store.rows_path(target);
        std::fs::read_to_string(&rows).unwrap_or_else(|_| {
            panic!(
                "{target:?} is neither a readable file nor a campaign id in {}",
                store_dir.display()
            )
        })
    };
    let parsed_a = crate::compare::parse_rows(&read(a)).unwrap_or_else(|e| panic!("{a}: {e}"));
    let parsed_b = crate::compare::parse_rows(&read(b)).unwrap_or_else(|e| panic!("{b}: {e}"));
    let diffs = crate::compare::diff(&parsed_a, &parsed_b);
    if diffs.is_empty() {
        println!(
            "identical: {} rows × {} columns",
            parsed_a.rows.len(),
            parsed_a.columns.len()
        );
        return;
    }
    const SHOWN: usize = 25;
    for d in diffs.iter().take(SHOWN) {
        println!("{d}");
    }
    if diffs.len() > SHOWN {
        println!("… and {} more differences", diffs.len() - SHOWN);
    }
    eprintln!("compare: {} difference(s) between {a} and {b}", diffs.len());
    std::process::exit(1);
}

/// Asks a running service to drain (`--exit` to also shut down).
fn drain(args: &Args) {
    let addr = args.value("addr").unwrap_or("127.0.0.1:7163").to_string();
    let path = if args.switch("exit") {
        "/admin/shutdown"
    } else {
        "/admin/drain"
    };
    let resp = dream_serve::http::client_request(&addr, "POST", path, b"")
        .unwrap_or_else(|e| panic!("cannot reach {addr}: {e}"));
    assert!(
        resp.status == 200,
        "drain: {addr} answered HTTP {}: {}",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );
    println!("{}", String::from_utf8_lossy(&resp.body).trim_end());
}

/// Boots the campaign service: a content-addressed artifact store plus a
/// worker pool, serving the HTTP API of [`dream_serve`].
///
/// With `--shards K` (K > 1) the instance is a sharding coordinator:
/// each campaign is partitioned with [`ShardPlan`] and fanned out —
/// `--workers HOST:PORT,…` addresses already-running shard workers,
/// otherwise K local worker processes are spawned from this executable.
/// `--worker` runs the instance as a shard worker (direct execution,
/// never re-sharding).
fn serve(args: &Args) {
    let addr = args.value("addr").unwrap_or("127.0.0.1:7163").to_string();
    let store_dir = args
        .value("store")
        .map(PathBuf::from)
        .unwrap_or_else(|| crate::results_dir().join("store"));
    let defaults = dream_serve::ServeConfig::default();
    // `--workers` is overloaded: a plain number sizes the campaign worker
    // pool; anything with a `:` is a comma list of shard-worker addresses
    // for a coordinator.
    let (workers, worker_addrs) = match args.value("workers") {
        Some(v) if v.contains(':') => (
            defaults.workers,
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>(),
        ),
        Some(v) => (
            v.parse().unwrap_or_else(|_| {
                panic!("--workers expects a number or host:port list, got {v:?}")
            }),
            Vec::new(),
        ),
        None => (defaults.workers, Vec::new()),
    };
    let shards = args.number("shards", defaults.shards).max(1);
    let threads = crate::apply_threads(args);
    let queue_depth = args.number("queue", defaults.queue_depth);
    let socket_timeout = std::time::Duration::from_millis(
        args.number("timeout-ms", defaults.read_timeout.as_millis() as usize) as u64,
    );
    let request_deadline = std::time::Duration::from_millis(args.number(
        "deadline-ms",
        defaults.request_deadline.as_millis() as usize,
    ) as u64);
    let retry_after = std::time::Duration::from_secs(
        args.number("retry-after", defaults.retry_after.as_secs() as usize) as u64,
    );
    let config = dream_serve::ServeConfig {
        addr: addr.clone(),
        store_dir: store_dir.clone(),
        workers,
        threads,
        queue_depth,
        read_timeout: socket_timeout,
        write_timeout: socket_timeout,
        request_deadline,
        retry_after,
        shards,
        worker_addrs,
        worker: args.switch("worker"),
        worker_exe: std::env::current_exe().ok(),
    };
    let server =
        dream_serve::Server::bind(config).unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    // Machine-readable line on stdout: a coordinator spawning local shard
    // workers discovers each child's port (`--addr 127.0.0.1:0`) from it.
    println!("dream serve: listening on {}", server.local_addr());
    let _ = io::stdout().flush();
    eprintln!(
        "dream serve listening on http://{} (store {}, {workers} workers × {threads} threads, queue {queue_depth}, shards {shards})",
        server.local_addr(),
        store_dir.display()
    );
    server.run().unwrap_or_else(|e| panic!("serve: {e}"));
}

/// Prints the scenario registry as an aligned table.
pub fn list() {
    let rows: Vec<Vec<String>> = registry::catalog()
        .into_iter()
        .map(|(name, kind, axis, points, title)| {
            vec![
                name,
                kind.to_string(),
                axis.to_string(),
                points.to_string(),
                title,
            ]
        })
        .collect();
    println!(
        "{}",
        dream_sim::report::format_table(
            &["scenario", "kind", "axis", "points", "description"],
            &rows
        )
    );
    println!("run one with: dream run <scenario> [--smoke]   (or pass a spec.json)");
}

/// Resolves a `run` target: registry name first, then spec file.
fn resolve(target: &str, smoke: bool) -> Scenario {
    if let Ok(sc) = registry::get(target, smoke) {
        return sc;
    }
    let looks_like_path = target.ends_with(".json") || target.contains('/');
    if !looks_like_path {
        panic!(
            "unknown scenario {target:?} — `dream list` shows the registry; spec files must end in .json"
        );
    }
    if smoke {
        panic!(
            "--smoke only applies to registry scenarios; spec files are explicit about their scale"
        );
    }
    let text = std::fs::read_to_string(target)
        .unwrap_or_else(|e| panic!("cannot read spec file {target:?}: {e}"));
    Scenario::from_json(&text).unwrap_or_else(|e| panic!("bad spec file {target:?}: {e}"))
}

/// Applies the CLI's override flags onto a resolved scenario.
fn apply_overrides(sc: &mut Scenario, args: &Args) {
    if let Some(w) = args.value("window") {
        sc.window = w
            .parse()
            .unwrap_or_else(|_| panic!("--window expects a number, got {w:?}"));
    }
    if let Some(r) = args.value("records") {
        sc.records = r
            .parse()
            .unwrap_or_else(|_| panic!("--records expects a number, got {r:?}"));
    }
    // `--trials` and `--runs` are synonyms: fig2 historically said trials,
    // fig4 said runs.
    for key in ["trials", "runs"] {
        if let Some(t) = args.value(key) {
            sc.trials = t
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number, got {t:?}"));
        }
    }
    if let Some(s) = args.value("seed") {
        sc.seed = s
            .parse()
            .unwrap_or_else(|_| panic!("--seed expects a number, got {s:?}"));
    }
    if let Some(t) = args.value("tolerance") {
        sc.tolerance_db = Some(
            t.parse()
                .unwrap_or_else(|_| panic!("--tolerance expects dB, got {t:?}")),
        );
    }
    if let Some(token) = args.value("emt") {
        let emt = emt_from_token(token)
            .unwrap_or_else(|| panic!("unknown --emt {token:?} (none|parity|dream|ecc)"));
        sc.emts = vec![emt];
    }
    if let Some(token) = args.value("fault-model") {
        sc.fault.model = parse_fault_model(token);
    }
    // Legacy sink spellings first, so the consolidated `--sink` wins when
    // both are given.
    if let Some(f) = args.value("format") {
        sc.sink.format = SinkFormat::from_token(f)
            .unwrap_or_else(|| panic!("unknown --format {f:?} (table|csv|jsonl)"));
    }
    if let Some(o) = args.value("out") {
        sc.sink.out = Some(o.to_string());
    }
    if args.switch("append") {
        sc.sink.append = true;
    }
    if let Some(token) = args.value("sink") {
        sc.sink = SinkSpec::parse(token).unwrap_or_else(|e| panic!("--sink: {e}"));
    }
}

/// Parses the `--fault-model` token: a kind name with an optional `:`
/// parameter — `iid`, `burst[:mean_run_len]` (default 8),
/// `column[:weight]` (default 0.5), `bank-voltage[:ramp_amplitude_v]`
/// (default 0.05, the registry preset's ±50 mV ramp).
///
/// # Panics
///
/// Panics with a readable message on unknown kinds or malformed
/// parameters.
fn parse_fault_model(token: &str) -> FaultModelSpec {
    let (kind, param) = match token.split_once(':') {
        Some((k, p)) => {
            let value: f64 = p
                .parse()
                .unwrap_or_else(|_| panic!("--fault-model {token:?}: {p:?} is not a number"));
            (k, Some(value))
        }
        None => (token, None),
    };
    match kind {
        "iid" => {
            assert!(param.is_none(), "--fault-model iid takes no parameter");
            FaultModelSpec::Iid
        }
        "burst" => FaultModelSpec::Burst {
            mean_run_len: param.unwrap_or(8.0),
        },
        "column" => FaultModelSpec::ColumnCorrelated {
            column_weight: param.unwrap_or(0.5),
        },
        "bank-voltage" => FaultModelSpec::PerBankVoltage {
            bank_offsets: FaultModelSpec::bank_ramp(param.unwrap_or(0.05)),
        },
        other => panic!("unknown --fault-model {other:?} (iid|burst|column|bank-voltage)"),
    }
}

/// Runs a resolved target with the standard flag vocabulary and prints
/// the outcome. Returns the outcome for callers that post-process.
pub fn run(target: &str, args: &Args) -> ScenarioOutcome {
    let mut sc = resolve(target, args.switch("smoke"));
    apply_overrides(&mut sc, args);
    let threads = crate::apply_threads(args);
    let batch = crate::apply_batch(args);
    eprintln!(
        "dream run {}: kind={} axis={} points={} trials={} window={} fault-model={} threads={threads} batch={batch}",
        sc.name,
        sc.kind.token(),
        sc.grid.axis_token(),
        sc.grid.len(),
        sc.trials,
        sc.window,
        sc.fault.model.kind_token(),
    );
    execute(&sc, args.switch("progress"))
}

/// Builds the campaign runner every `dream run` goes through; `--progress`
/// attaches a stderr reporter that redraws one `\r` status line with
/// rows streamed, total rows, and percent complete (families whose row
/// total is data-dependent fall back to a line per batch).
fn runner_for(sc: &Scenario, progress: bool) -> CampaignRunner {
    let mut runner = CampaignRunner::new(sc.clone());
    if progress {
        let name = sc.name.clone();
        // A trivial (K=1) shard plan knows the campaign's exact row count
        // up front for every grid-structured family.
        let total_rows = ShardPlan::new(sc, 1).ok().and_then(|p| p.total_rows());
        runner = runner.on_progress(move |p| match total_rows {
            Some(total) if total > 0 => {
                let pct = 100.0 * p.rows as f64 / total as f64;
                eprint!(
                    "\r[{name}] {}/{total} rows ({pct:.0}%) — {} trials",
                    p.rows, p.trials_total
                );
                if p.rows >= total {
                    eprintln!();
                }
            }
            _ => eprintln!(
                "[{name}] batch {}: {} rows streamed ({} trials total)",
                p.batches, p.rows, p.trials_total
            ),
        });
    }
    runner
}

/// Executes a scenario against its configured sink, echoing a table to
/// stdout when rows stream to a file.
fn execute(sc: &Scenario, progress: bool) -> ScenarioOutcome {
    // Validate before any artifact is opened: a bad flag combination
    // (e.g. `,append` without jsonl) must not truncate the very file a
    // resumed campaign was accumulating.
    sc.validate()
        .unwrap_or_else(|e| panic!("scenario {}: {e}", sc.name));
    let runner = runner_for(sc, progress);
    let format = sc.sink.format;
    let outcome = match &sc.sink.out {
        None => {
            // Stream straight to stdout.
            let stdout = io::stdout();
            let outcome = match format {
                SinkFormat::Table => {
                    let mut sink = TableSink::new(stdout.lock());
                    runner.run(&mut sink)
                }
                SinkFormat::Csv => {
                    let mut sink = CsvSink::new(stdout.lock());
                    runner.run(&mut sink)
                }
                SinkFormat::Jsonl => {
                    let mut sink = JsonlSink::new(stdout.lock());
                    runner.run(&mut sink)
                }
            };
            outcome.unwrap_or_else(|e| panic!("scenario {}: {e}", sc.name))
        }
        Some(dir) => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
            let path = dir.join(format!("{}.{}", sc.name, format.extension()));
            let outcome = match format {
                // `,append` is jsonl-only (spec validation enforces it),
                // so the header-writing formats always truncate.
                SinkFormat::Jsonl if sc.sink.append => {
                    let mut sink = JsonlSink::append(&path)
                        .unwrap_or_else(|e| panic!("cannot append to {}: {e}", path.display()));
                    runner.run(&mut sink)
                }
                _ => {
                    let file = std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
                    match format {
                        SinkFormat::Table => {
                            let mut sink = TableSink::new(file);
                            runner.run(&mut sink)
                        }
                        SinkFormat::Csv => {
                            let mut sink = CsvSink::new(file);
                            runner.run(&mut sink)
                        }
                        SinkFormat::Jsonl => {
                            let mut sink = JsonlSink::new(file);
                            runner.run(&mut sink)
                        }
                    }
                }
            };
            let outcome = outcome.unwrap_or_else(|e| panic!("scenario {}: {e}", sc.name));
            // Humans still get the aligned table on stdout.
            if format != SinkFormat::Table {
                println!(
                    "{}",
                    dream_sim::report::format_table(&outcome.headers, &outcome.rows)
                );
            }
            eprintln!("wrote {}", path.display());
            outcome
        }
    };
    let mut err = io::stderr();
    let _ = writeln!(err, "{}: {}", sc.name, outcome.summary());
    outcome
}

/// Entry point of the historical per-figure binaries: maps their original
/// flag vocabulary onto `dream run <preset> --format csv --out results/`,
/// preserving the CSV artifact location and the stdout table.
pub fn legacy_shim(preset: &str) {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let base = Args::parse(raw.iter().cloned());
    // `energy --area` printed the codec area table only; keep that exit.
    if preset == "energy" && base.switch("area") {
        print_area_table();
        return;
    }
    // Historical defaults: CSV artifact in results/, table on stdout.
    if base.value("out").is_none() {
        raw.extend([
            "--out".to_string(),
            crate::results_dir().display().to_string(),
        ]);
    }
    if base.value("format").is_none() {
        raw.extend(["--format".to_string(), "csv".to_string()]);
    }
    run(preset, &Args::parse(raw.into_iter()));
}

/// The §VI-B codec area table (the `energy --area` fast path).
fn print_area_table() {
    use dream_sim::energy_table::{area_table, ecc_vs_dream_area};
    let area_rows = area_table(&dream_core::EmtKind::paper_set());
    println!("\n§VI-B — codec area (gate equivalents) and redundancy");
    let table: Vec<Vec<String>> = area_rows
        .iter()
        .map(|r| {
            vec![
                r.emt.to_string(),
                format!("{:.1}", r.encoder_ge),
                format!("{:.1}", r.decoder_ge),
                r.extra_bits.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        dream_sim::report::format_table(
            &["EMT", "encoder GE", "decoder GE", "extra bits/word"],
            &table
        )
    );
    let (enc, dec) = ecc_vs_dream_area(&area_rows);
    println!(
        "ECC vs DREAM area overhead: encoder {}, decoder {}   (paper: +28%, +120%)",
        dream_sim::report::pct(enc),
        dream_sim::report::pct(dec)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_registry_names() {
        let sc = resolve("fig2", true);
        assert_eq!(sc.name, "fig2");
        assert_eq!(sc.window, 512); // smoke variant
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn resolve_rejects_unknown_names() {
        let _ = resolve("figure-nine", false);
    }

    #[test]
    fn resolve_reads_spec_files() {
        let dir = std::env::temp_dir().join("dream_cli_resolve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.json");
        let sc = registry::get("noise-sweep", true).unwrap();
        std::fs::write(&path, sc.to_json()).unwrap();
        let loaded = resolve(path.to_str().unwrap(), false);
        assert_eq!(loaded, sc);
    }

    #[test]
    fn overrides_rewrite_the_axes() {
        let mut sc = registry::get("fig4", true).unwrap();
        let args = Args::parse(
            [
                "--runs", "2", "--window", "768", "--emt", "dream", "--format", "jsonl",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        apply_overrides(&mut sc, &args);
        assert_eq!(sc.trials, 2);
        assert_eq!(sc.window, 768);
        assert_eq!(sc.emts, vec![dream_core::EmtKind::Dream]);
        assert_eq!(sc.sink.format, SinkFormat::Jsonl);
    }

    #[test]
    fn fault_model_and_append_flags_rewrite_the_sink_and_model() {
        let mut sc = registry::get("fig4", true).unwrap();
        let args = Args::parse(
            [
                "--fault-model",
                "burst:4",
                "--format",
                "jsonl",
                "--out",
                "results/x",
                "--append",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        apply_overrides(&mut sc, &args);
        assert_eq!(sc.fault.model, FaultModelSpec::Burst { mean_run_len: 4.0 });
        assert!(sc.sink.append);
        sc.validate().expect("append+jsonl+out validates");
    }

    #[test]
    fn consolidated_sink_flag_wins_over_legacy_spellings() {
        let mut sc = registry::get("fig4", true).unwrap();
        let args = Args::parse(
            [
                "--format",
                "csv",
                "--out",
                "legacy",
                "--sink",
                "jsonl:results/x,append",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        apply_overrides(&mut sc, &args);
        assert_eq!(sc.sink, SinkSpec::parse("jsonl:results/x,append").unwrap());
        assert_eq!(sc.sink.token(), "jsonl:results/x,append");
    }

    #[test]
    fn fault_model_tokens_parse_with_and_without_parameters() {
        assert_eq!(parse_fault_model("iid"), FaultModelSpec::Iid);
        assert_eq!(
            parse_fault_model("burst"),
            FaultModelSpec::Burst { mean_run_len: 8.0 }
        );
        assert_eq!(
            parse_fault_model("column:0.9"),
            FaultModelSpec::ColumnCorrelated { column_weight: 0.9 }
        );
        assert_eq!(
            parse_fault_model("bank-voltage:0.03"),
            FaultModelSpec::PerBankVoltage {
                bank_offsets: FaultModelSpec::bank_ramp(0.03)
            }
        );
    }

    #[test]
    #[should_panic(expected = "unknown --fault-model")]
    fn unknown_fault_model_is_rejected() {
        let _ = parse_fault_model("gamma-ray");
    }
}
