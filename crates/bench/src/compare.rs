//! Field-level diffing of two campaign row sets — the engine of
//! `dream compare`.
//!
//! Both CSV artifacts (header line + comma-separated rows, as written by
//! [`dream_sim::report::CsvSink`]) and JSONL artifacts (one flat object
//! per line, as written by [`dream_sim::report::JsonlSink`] and stored by
//! the campaign service) parse into the same [`RowSet`] shape, so any
//! pairing of the two formats compares cell for cell. Numeric cells
//! compare by value (a JSONL `35.0` equals a CSV `35.000`); everything
//! else compares as text.

use dream_sim::scenario::json::Json;

/// A parsed row artifact: ordered column names plus rows of cell strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSet {
    /// Column names, in artifact order.
    pub columns: Vec<String>,
    /// Row cells, in artifact order, one entry per column.
    pub rows: Vec<Vec<String>>,
}

/// Parses a row artifact, auto-detecting CSV vs JSONL from the first
/// non-empty line.
///
/// # Errors
///
/// Returns a readable message for empty input, malformed JSONL lines,
/// non-object JSONL lines, or CSV rows whose cell count does not match
/// the header.
pub fn parse_rows(text: &str) -> Result<RowSet, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty()).peekable();
    let first = lines.peek().ok_or("artifact is empty")?;
    if first.trim_start().starts_with('{') {
        parse_jsonl(lines)
    } else {
        parse_csv(lines)
    }
}

/// Renders a JSON scalar the way the diff compares it: strings verbatim,
/// numbers through `f64` display (so equal values in different notations
/// render identically on both sides).
fn render(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        Json::Num(n) => n.to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Null => "null".into(),
        composite => format!("{composite:?}"),
    }
}

fn parse_jsonl<'a>(lines: impl Iterator<Item = &'a str>) -> Result<RowSet, String> {
    let mut columns: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let Json::Obj(fields) = obj else {
            return Err(format!("line {}: not a JSON object", i + 1));
        };
        if columns.is_empty() {
            columns = fields.iter().map(|(k, _)| k.clone()).collect();
        } else if fields.len() != columns.len()
            || fields.iter().zip(&columns).any(|((k, _), c)| k != c)
        {
            return Err(format!(
                "line {}: fields [{}] do not match the first line's [{}]",
                i + 1,
                fields
                    .iter()
                    .map(|(k, _)| k.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                columns.join(", ")
            ));
        }
        rows.push(fields.iter().map(|(_, v)| render(v)).collect());
    }
    Ok(RowSet { columns, rows })
}

fn parse_csv<'a>(mut lines: impl Iterator<Item = &'a str>) -> Result<RowSet, String> {
    let header = lines.next().ok_or("artifact is empty")?;
    let columns: Vec<String> = header.split(',').map(str::to_string).collect();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let cells: Vec<String> = line.split(',').map(str::to_string).collect();
        if cells.len() != columns.len() {
            return Err(format!(
                "row {}: {} cells but {} header columns",
                i + 1,
                cells.len(),
                columns.len()
            ));
        }
        rows.push(cells);
    }
    Ok(RowSet { columns, rows })
}

/// Whether two cells agree: textually, or — when both parse — as `f64`
/// values (bridges CSV's fixed-point formatting and JSONL's shortest
/// float notation).
fn cells_equal(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

/// Compares two row sets and returns one human-readable message per
/// difference: column-layout mismatches, row-count mismatches, and
/// cell-level deltas (with the numeric difference where both sides
/// parse). An empty result means the sets match.
pub fn diff(a: &RowSet, b: &RowSet) -> Vec<String> {
    let mut out = Vec::new();
    if a.columns != b.columns {
        out.push(format!(
            "column mismatch: [{}] vs [{}]",
            a.columns.join(", "),
            b.columns.join(", ")
        ));
    }
    if a.rows.len() != b.rows.len() {
        out.push(format!(
            "row count mismatch: {} vs {}",
            a.rows.len(),
            b.rows.len()
        ));
    }
    let columns = a.columns.len().min(b.columns.len());
    for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        for (j, (ca, cb)) in ra.iter().zip(rb).take(columns).enumerate() {
            if !cells_equal(ca, cb) {
                let delta = match (ca.parse::<f64>(), cb.parse::<f64>()) {
                    (Ok(x), Ok(y)) => format!(" (delta {:+e})", y - x),
                    _ => String::new(),
                };
                out.push(format!(
                    "row {i}, {}: {ca:?} vs {cb:?}{delta}",
                    a.columns.get(j).map_or("?", |c| c.as_str())
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "app,bit,snr_db\ndwt,0,35.000\ndwt,1,12.500\n";

    #[test]
    fn csv_parses_into_columns_and_rows() {
        let set = parse_rows(CSV).unwrap();
        assert_eq!(set.columns, vec!["app", "bit", "snr_db"]);
        assert_eq!(set.rows.len(), 2);
        assert_eq!(set.rows[1], vec!["dwt", "1", "12.500"]);
    }

    #[test]
    fn jsonl_parses_and_matches_its_csv_twin() {
        let jsonl = "{\"app\":\"dwt\",\"bit\":0,\"snr_db\":35.0}\n{\"app\":\"dwt\",\"bit\":1,\"snr_db\":12.5}\n";
        let a = parse_rows(CSV).unwrap();
        let b = parse_rows(jsonl).unwrap();
        assert_eq!(diff(&a, &b), Vec::<String>::new());
    }

    #[test]
    fn cell_deltas_are_reported_per_field() {
        let a = parse_rows("app,snr_db\ndwt,35.000\n").unwrap();
        let b = parse_rows("app,snr_db\ndwt,34.000\n").unwrap();
        let diffs = diff(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("snr_db"), "{diffs:?}");
        assert!(diffs[0].contains("delta"), "{diffs:?}");
    }

    #[test]
    fn layout_mismatches_are_reported() {
        let a = parse_rows("app,snr_db\ndwt,35.000\n").unwrap();
        let b = parse_rows("app,bit\ndwt,3\ndwt,4\n").unwrap();
        let diffs = diff(&a, &b);
        assert!(diffs.iter().any(|d| d.contains("column mismatch")));
        assert!(diffs.iter().any(|d| d.contains("row count mismatch")));
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(parse_rows("").is_err());
        assert!(parse_rows("{not json}\n").is_err());
        assert!(parse_rows("a,b\n1,2,3\n").is_err());
        assert!(parse_rows("{\"a\":1}\n{\"b\":2}\n").is_err());
    }
}
