//! Shared plumbing for the `dream` CLI and the table/figure shims.
//!
//! The real content lives in `dream-sim`; this crate parses the tiny
//! command-line vocabulary the binaries share ([`Args`]), hosts the
//! scenario-driving CLI ([`cli`]), and decides where artifacts land
//! (`results/` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod compare;

use std::path::PathBuf;

/// Minimal flag parser: `--key value` pairs, bare `--switch`es, and
/// positional arguments (subcommands and targets).
///
/// ```
/// let args = dream_bench::Args::parse(["run", "fig2", "--runs", "8", "--smoke"].iter().map(|s| s.to_string()));
/// assert_eq!(args.positional(0), Some("run"));
/// assert_eq!(args.positional(1), Some("fig2"));
/// assert_eq!(args.value("runs"), Some("8"));
/// assert!(args.switch("smoke"));
/// assert!(!args.switch("area"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    pub fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut pairs = Vec::new();
        let mut positionals = Vec::new();
        let mut iter = raw.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next(),
                    _ => None,
                };
                pairs.push((key.to_string(), value));
            } else {
                positionals.push(a);
            }
        }
        Args { pairs, positionals }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The value of `--key value`, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// True when `--key` was given (with or without a value).
    pub fn switch(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    /// The `i`-th positional argument (subcommand, target, …).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Parses `--key` as a number, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value does not parse.
    pub fn number(&self, key: &str, default: usize) -> usize {
        match self.value(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")),
        }
    }
}

/// Applies the `--threads N` flag every campaign binary shares: pins the
/// executor's worker count (otherwise `DREAM_THREADS` / auto-detection
/// decides) and returns the resolved count for banner lines.
pub fn apply_threads(args: &Args) -> usize {
    if let Some(n) = args.value("threads") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| panic!("--threads expects a positive integer, got {n:?}"));
        dream_sim::exec::set_thread_override(Some(n));
    }
    dream_sim::exec::thread_count()
}

/// Applies the `--batch [on|off]` flag shared by the campaign binaries:
/// bare `--batch` (or `on`/`true`/`1`) pins bit-sliced trial batching on,
/// `off`/`false`/`0` pins it off; without the flag the `DREAM_BATCH`
/// environment variable decides (batching defaults **on** — set
/// `DREAM_BATCH=0` to opt out). Returns the resolved setting for banner
/// lines. Batching changes scheduling only — output bytes are identical
/// either way.
pub fn apply_batch(args: &Args) -> bool {
    if args.switch("batch") {
        let enabled = match args.value("batch") {
            None => true,
            Some("on" | "true" | "1") => true,
            Some("off" | "false" | "0") => false,
            Some(other) => panic!("--batch expects on|off, got {other:?}"),
        };
        dream_sim::exec::set_batch_override(Some(enabled));
    }
    dream_sim::exec::batch_enabled()
}

/// The workspace root (where `BENCH_campaigns.json` and `results/` live).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Directory where the binaries drop their CSV artifacts (`results/`,
/// created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flags() {
        let a = Args::parse(
            ["--runs", "16", "--area", "--emt", "dream"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.number("runs", 1), 16);
        assert!(a.switch("area"));
        assert_eq!(a.value("emt"), Some("dream"));
        assert_eq!(a.number("missing", 7), 7);
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn bad_number_panics() {
        let a = Args::parse(["--runs", "many"].iter().map(|s| s.to_string()));
        let _ = a.number("runs", 1);
    }
}
