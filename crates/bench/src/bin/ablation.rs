//! Shim over `dream run ablation` — kept so `cargo run --bin ablation`
//! and its historical flags (`--window`, `--runs`, `--threads`) keep
//! working; see [`dream_bench::cli`].

fn main() {
    dream_bench::cli::legacy_shim("ablation");
}
