//! Ablation studies on the reproduction's design choices (beyond the
//! paper's own tables): DREAM's protected-bits census, the address
//! scrambler, the BER-slope sensitivity, and the mask-supply pinning.
//!
//! ```text
//! cargo run --release -p dream-bench --bin ablation [--window N] [--runs N] [--threads N]
//! ```

use dream_bench::Args;
use dream_sim::ablation::{
    ber_sensitivity, mask_supply_ablation, mean_protected_bits, protected_bits_histogram,
    scrambler_ablation,
};
use dream_sim::report;

fn main() {
    let args = Args::from_env();
    let window = args.number("window", 1024);
    let runs = args.number("runs", 12);
    let threads = dream_bench::apply_threads(&args);
    eprintln!("ablation: window={window} runs={runs} threads={threads}");

    // A1 — how much of each word DREAM can rebuild on real ECG data (§IV).
    let histogram = protected_bits_histogram(window);
    println!("\nA1 — DREAM protected bits per word over the ECG suite");
    let total: u64 = histogram.iter().sum();
    let rows: Vec<Vec<String>> = (2..=16)
        .map(|k| {
            let share = histogram[k] as f64 / total as f64;
            vec![
                k.to_string(),
                histogram[k].to_string(),
                report::pct(share),
                "#".repeat((share * 60.0).round() as usize),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(&["bits", "samples", "share", ""], &rows)
    );
    println!(
        "mean: {:.1} of 16 bits rebuildable",
        mean_protected_bits(&histogram)
    );

    // A2 — the §V address scrambler: one die, many runs.
    let scrambler = scrambler_ablation(window, 0.55, runs);
    println!(
        "\nA2 — address scrambling at 0.55 V (one physical die, {runs} runs, unprotected DWT)"
    );
    println!(
        "  fixed logical mapping : std {:.2} dB (every run hits the same words)",
        scrambler.fixed_mapping_std()
    );
    println!(
        "  re-scrambled per run  : std {:.2} dB (fresh fault-location draw per run)",
        scrambler.scrambled_std()
    );

    // A3 — BER-slope sensitivity of the DREAM DWT curve.
    let slopes = [10.0, 13.0, 16.0];
    let points = ber_sensitivity(window, runs.min(8), &slopes);
    println!("\nA3 — Fig. 4b (DWT under DREAM) vs BER slope (decades/V; default 13.0)");
    let voltages: Vec<f64> = dream_suite_voltages();
    let rows: Vec<Vec<String>> = voltages
        .iter()
        .map(|&v| {
            let mut row = vec![format!("{v:.2}")];
            for &s in &slopes {
                let p = points
                    .iter()
                    .find(|p| p.slope == s && (p.voltage - v).abs() < 1e-9)
                    .expect("grid");
                row.push(report::snr(p.mean_snr_db));
            }
            row
        })
        .collect();
    println!(
        "{}",
        report::format_table(&["V", "slope 10", "slope 13", "slope 16"], &rows)
    );

    // A4 — pinning the mask-memory supply vs letting it track the rail.
    println!("\nA4 — DREAM energy overhead: mask memory pinned at 0.9 V (paper) vs tracking the data rail");
    let rows: Vec<Vec<String>> = mask_supply_ablation(window)
        .into_iter()
        .map(|(v, pinned, tracking)| {
            vec![
                format!("{v:.2}"),
                report::pct(pinned),
                report::pct(tracking),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(&["V", "pinned (paper)", "tracking"], &rows)
    );
    println!(
        "pinning keeps the side array error-free but dominates DREAM's overhead at deep scaling —\n\
         the trade the paper accepts to avoid protecting the protector."
    );
}

fn dream_suite_voltages() -> Vec<f64> {
    dream_mem::BerModel::paper_voltages()
}
