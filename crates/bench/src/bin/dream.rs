//! The `dream` CLI: `dream list` shows the scenario registry, `dream run
//! <scenario|spec.json>` executes any campaign through any sink — see
//! [`dream_bench::cli`] for the flag vocabulary.

fn main() {
    dream_bench::cli::main_from_env();
}
