//! Runs **every scenario in the registry** end to end and prints a
//! compact per-scenario summary (the source of `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p dream-bench --bin all [--list] [--smoke]
//!     [--threads N] [--format csv|jsonl|table] [--out DIR]
//! ```
//!
//! `--list` prints the registry and exits. Defaults reproduce the paper's
//! scale and drop one CSV per scenario into `results/`; `--smoke` runs the
//! reduced variants in seconds.

use dream_bench::{cli, results_dir, Args};

fn main() {
    let base = Args::from_env();
    if base.switch("list") {
        cli::list();
        return;
    }
    let names = dream_sim::scenario::registry::names();
    // Default artifact location/format mirror the historical binaries.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if base.value("out").is_none() {
        raw.extend(["--out".to_string(), results_dir().display().to_string()]);
    }
    if base.value("format").is_none() {
        raw.extend(["--format".to_string(), "csv".to_string()]);
    }
    let args = Args::parse(raw.into_iter());
    let mut summaries = Vec::new();
    for (i, name) in names.iter().enumerate() {
        eprintln!("[{}/{}] {name}…", i + 1, names.len());
        let outcome = cli::run(name, &args);
        summaries.push(format!("{name}: {}", outcome.summary()));
    }
    println!("\n=== registry summary ===");
    for line in &summaries {
        println!("{line}");
    }
}
