//! Runs **every experiment** of the paper end to end and prints a compact
//! paper-vs-measured summary (the source of `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p dream-bench --bin all [--runs N] [--window N] [--trials N] [--threads N]
//! ```
//!
//! Defaults reproduce the paper's scale (200 fault maps per voltage);
//! `--runs 25` finishes in a few minutes on a laptop with the same shapes.

use dream_bench::{results_dir, Args};
use dream_core::EmtKind;
use dream_dsp::AppKind;
use dream_sim::energy_table::{
    area_table, average_overhead, ecc_vs_dream_area, run_energy_table, EnergyConfig,
};
use dream_sim::fig2::{cs_tolerance, run_fig2, Fig2Config};
use dream_sim::fig4::{curve, run_fig4, Fig4Config};
use dream_sim::report;
use dream_sim::tradeoff::explore;

fn main() {
    let args = Args::from_env();
    let window = args.number("window", 1024);
    let runs = args.number("runs", 200);
    let trials = args.number("trials", 8);
    let threads = dream_bench::apply_threads(&args);
    eprintln!("all: window={window} runs={runs} trials={trials} threads={threads}");

    // E1 / E9 — Fig. 2 and the CS tolerance thresholds.
    eprintln!("[1/4] Fig. 2 characterization…");
    let fig2_rows = run_fig2(&Fig2Config {
        window,
        fault_trials: trials,
        ..Default::default()
    });
    let (sa0, sa1) = cs_tolerance(&fig2_rows, 35.0);
    println!(
        "E1/E9  Fig. 2: CS tolerates stuck-at-0 to bit {}, stuck-at-1 to bit {}  (paper: 10, 12)",
        sa0.map_or("-".into(), |b| b.to_string()),
        sa1.map_or("-".into(), |b| b.to_string())
    );

    // E2–E4 — Fig. 4 sweeps.
    eprintln!("[2/4] Fig. 4 voltage sweeps ({runs} runs/voltage)…");
    let fig4_points = run_fig4(&Fig4Config {
        window,
        runs,
        ..Default::default()
    });
    for emt in EmtKind::paper_set() {
        let c = curve(&fig4_points, AppKind::Dwt, emt);
        let at = |v: f64| {
            c.iter()
                .find(|p| (p.voltage - v).abs() < 1e-9)
                .map_or(f64::NAN, |p| p.mean_snr_db)
        };
        println!(
            "E2-E4  Fig. 4 {emt:12} DWT SNR: 0.9V={}, 0.7V={}, 0.55V={}, 0.5V={}",
            report::snr(at(0.9)),
            report::snr(at(0.7)),
            report::snr(at(0.55)),
            report::snr(at(0.5)),
        );
    }

    // E5/E6/E8 — energy and area.
    eprintln!("[3/4] Energy/area analysis…");
    let energy_rows = run_energy_table(&EnergyConfig {
        window,
        ..Default::default()
    });
    let dream = average_overhead(&energy_rows, EmtKind::Dream);
    let ecc = average_overhead(&energy_rows, EmtKind::EccSecDed);
    println!(
        "E5     energy overhead: DREAM {}, ECC {}  (paper: 34%, 55%)",
        report::pct(dream),
        report::pct(ecc)
    );
    let (enc, dec) = ecc_vs_dream_area(&area_table(&EmtKind::paper_set()));
    println!(
        "E6     ECC vs DREAM area: encoder {}, decoder {}  (paper: +28%, +120%)",
        report::pct(enc),
        report::pct(dec)
    );
    println!("E8     extra bits/word: DREAM 5, ECC 6  (Formula 2)");

    // E7 — trade-off policy.
    eprintln!("[4/4] §VI-C trade-off exploration…");
    let policies = explore(AppKind::Dwt, 1.0, &fig4_points, &energy_rows);
    for p in &policies {
        println!(
            "E7     {:12} min voltage {}, savings {}",
            p.emt.to_string(),
            p.min_voltage.map_or("-".into(), |v| format!("{v:.2} V")),
            p.savings_vs_nominal.map_or("-".into(), report::pct)
        );
    }
    println!("       (paper: none 0.85 V/12.7%, DREAM 0.65 V/30.6%, ECC 0.55 V/39.5%)");

    // Drop the full grids as CSV for EXPERIMENTS.md and plotting.
    let dir = results_dir();
    report::write_csv(
        &dir.join("fig2.csv"),
        &["app", "stuck", "bit", "snr_db"],
        &fig2_rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    format!("{:?}", r.stuck),
                    r.bit.to_string(),
                    format!("{:.3}", r.snr_db),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write fig2.csv");
    report::write_csv(
        &dir.join("fig4.csv"),
        &[
            "app",
            "emt",
            "voltage",
            "mean_snr_db",
            "min_snr_db",
            "corrected_rate",
            "uncorrectable_rate",
        ],
        &fig4_points
            .iter()
            .map(|p| {
                vec![
                    p.app.to_string(),
                    p.emt.to_string(),
                    format!("{:.2}", p.voltage),
                    format!("{:.3}", p.mean_snr_db),
                    format!("{:.3}", p.min_snr_db),
                    format!("{:.6}", p.corrected_rate),
                    format!("{:.6}", p.uncorrectable_rate),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write fig4.csv");
    eprintln!("wrote {}", dir.display());
}
