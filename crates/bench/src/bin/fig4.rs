//! Regenerates **Fig. 4**: output SNR versus memory supply voltage for
//! every application under (a) no protection, (b) DREAM, (c) ECC SEC/DED.
//!
//! ```text
//! cargo run --release -p dream-bench --bin fig4 [--runs N] [--window N] [--smoke] [--emt none|dream|ecc] [--threads N]
//! ```
//!
//! The full configuration (200 runs × 9 voltages × 5 apps × 3 EMTs) is the
//! paper's; `--smoke` runs a reduced sweep in seconds.

use dream_bench::{results_dir, Args};
use dream_core::EmtKind;
use dream_sim::fig4::{curve, run_fig4, Fig4Config};
use dream_sim::report;

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.switch("smoke") {
        Fig4Config::smoke()
    } else {
        Fig4Config::default()
    };
    cfg.runs = args.number("runs", cfg.runs);
    cfg.window = args.number("window", cfg.window);
    if let Some(emt) = args.value("emt") {
        cfg.emts = vec![match emt {
            "none" => EmtKind::None,
            "dream" => EmtKind::Dream,
            "ecc" => EmtKind::EccSecDed,
            "parity" => EmtKind::Parity,
            other => panic!("unknown --emt {other:?} (none|dream|ecc|parity)"),
        }];
    }
    let threads = dream_bench::apply_threads(&args);
    eprintln!(
        "fig4: runs={} window={} voltages={:?} emts={:?} threads={}",
        cfg.runs, cfg.window, cfg.voltages, cfg.emts, threads
    );
    let points = run_fig4(&cfg);

    for &emt in &cfg.emts {
        let mut headers = vec!["V".to_string()];
        headers.extend(cfg.apps.iter().map(|a| a.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Vec::new();
        for &v in &cfg.voltages {
            let mut row = vec![format!("{v:.2}")];
            for &app in &cfg.apps {
                let c = curve(&points, app, emt);
                let p = c
                    .iter()
                    .find(|p| (p.voltage - v).abs() < 1e-9)
                    .expect("full grid");
                row.push(report::snr(p.mean_snr_db));
            }
            table.push(row);
        }
        println!("\nFig. 4 — mean SNR (dB) vs supply voltage, {emt}");
        println!("{}", report::format_table(&header_refs, &table));
    }

    let csv: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.app.to_string(),
                p.emt.to_string(),
                format!("{:.2}", p.voltage),
                format!("{:.3}", p.mean_snr_db),
                format!("{:.3}", p.min_snr_db),
                format!("{:.6}", p.corrected_rate),
                format!("{:.6}", p.uncorrectable_rate),
            ]
        })
        .collect();
    let path = results_dir().join("fig4.csv");
    report::write_csv(
        &path,
        &[
            "app",
            "emt",
            "voltage",
            "mean_snr_db",
            "min_snr_db",
            "corrected_rate",
            "uncorrectable_rate",
        ],
        &csv,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}
