//! Shim over `dream run fig4` — kept so `cargo run --bin fig4` and its
//! historical flags (`--runs`, `--window`, `--smoke`, `--emt`,
//! `--threads`) keep working; see [`dream_bench::cli`].

fn main() {
    dream_bench::cli::legacy_shim("fig4");
}
