//! Regenerates the **§VI-C trade-off exploration**: for the DWT
//! application and a −1 dB output-degradation tolerance, find the voltage
//! range each EMT can serve and the energy saved against running
//! unprotected at the nominal 0.9 V (paper: ~12.7 % with no protection at
//! 0.85 V, ~30.6 % with DREAM at 0.65 V, ~39.5 % with ECC at 0.55 V).
//!
//! ```text
//! cargo run --release -p dream-bench --bin tradeoff [--runs N] [--window N] [--tolerance DB] [--threads N]
//! ```

use dream_bench::{results_dir, Args};
use dream_dsp::AppKind;
use dream_sim::energy_table::{run_energy_table, EnergyConfig};
use dream_sim::fig4::{run_fig4, Fig4Config};
use dream_sim::report;
use dream_sim::tradeoff::explore;

fn main() {
    let args = Args::from_env();
    let window = args.number("window", 1024);
    let runs = args.number("runs", 100);
    let tolerance_db = args
        .value("tolerance")
        .map(|v| v.parse::<f64>().expect("--tolerance expects dB"))
        .unwrap_or(1.0);
    let app = AppKind::Dwt;
    let threads = dream_bench::apply_threads(&args);
    eprintln!(
        "tradeoff: app={app} window={window} runs={runs} tolerance={tolerance_db} dB threads={threads}"
    );

    let fig4_cfg = Fig4Config {
        window,
        runs,
        apps: vec![app],
        ..Default::default()
    };
    let points = run_fig4(&fig4_cfg);
    let energy_cfg = EnergyConfig {
        app,
        window,
        ..Default::default()
    };
    let energy = run_energy_table(&energy_cfg);
    let policies = explore(app, tolerance_db, &points, &energy);

    println!("\n§VI-C — {app} with a -{tolerance_db} dB tolerance (savings vs 0.9 V unprotected)");
    let table: Vec<Vec<String>> = policies
        .iter()
        .map(|p| {
            vec![
                p.emt.to_string(),
                p.min_voltage
                    .map_or("unusable".into(), |v| format!("{v:.2} V")),
                p.savings_vs_nominal.map_or("-".into(), report::pct),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(&["EMT", "min voltage", "energy savings"], &table)
    );
    println!(
        "paper: no protection -> 0.85 V / 12.7%, DREAM -> 0.65 V / 30.6%, ECC -> 0.55 V / 39.5%"
    );

    let csv: Vec<Vec<String>> = policies
        .iter()
        .map(|p| {
            vec![
                p.emt.to_string(),
                p.min_voltage.map_or(String::new(), |v| format!("{v:.2}")),
                p.savings_vs_nominal
                    .map_or(String::new(), |s| format!("{s:.4}")),
            ]
        })
        .collect();
    let path = results_dir().join("tradeoff.csv");
    report::write_csv(&path, &["emt", "min_voltage", "savings"], &csv).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
