//! Shim over `dream run tradeoff` — kept so `cargo run --bin tradeoff`
//! and its historical flags (`--runs`, `--window`, `--tolerance`,
//! `--threads`) keep working; see [`dream_bench::cli`].

fn main() {
    dream_bench::cli::legacy_shim("tradeoff");
}
