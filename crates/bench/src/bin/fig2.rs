//! Shim over `dream run fig2` — kept so `cargo run --bin fig2` and its
//! historical flags (`--window`, `--records`, `--trials`, `--threads`)
//! keep working; see [`dream_bench::cli`].

fn main() {
    dream_bench::cli::legacy_shim("fig2");
}
