//! Regenerates **Fig. 2**: output SNR versus the bit position of an
//! injected stuck-at error, for all five applications and both fault
//! polarities, plus the §III compressed-sensing tolerance thresholds.
//!
//! ```text
//! cargo run --release -p dream-bench --bin fig2 [--window N] [--records N] [--trials N] [--threads N]
//! ```

use dream_bench::{results_dir, Args};
use dream_mem::StuckAt;
use dream_sim::fig2::{cs_tolerance, run_fig2, Fig2Config};
use dream_sim::report;

fn main() {
    let args = Args::from_env();
    let cfg = Fig2Config {
        window: args.number("window", 1024),
        records: args.number("records", 10),
        fault_trials: args.number("trials", 8),
        ..Default::default()
    };
    let threads = dream_bench::apply_threads(&args);
    eprintln!(
        "fig2: window={} records={} trials={} threads={}",
        cfg.window, cfg.records, cfg.fault_trials, threads
    );
    let rows = run_fig2(&cfg);

    // One table per polarity: apps as columns, bits as rows (the x-axis of
    // the figure).
    for stuck in [StuckAt::Zero, StuckAt::One] {
        let mut headers = vec!["bit".to_string()];
        headers.extend(cfg.apps.iter().map(|a| a.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Vec::new();
        for bit in 0..16u32 {
            let mut row = vec![bit.to_string()];
            for app in &cfg.apps {
                let point = rows
                    .iter()
                    .find(|r| r.app == *app && r.stuck == stuck && r.bit == bit)
                    .expect("full grid");
                row.push(report::snr(point.snr_db));
            }
            table.push(row);
        }
        println!(
            "\nFig. 2 — SNR (dB) vs bit position, stuck-at-{}",
            match stuck {
                StuckAt::Zero => 0,
                StuckAt::One => 1,
            }
        );
        println!("{}", report::format_table(&header_refs, &table));
    }

    // §III footer: CS tolerance at the two thresholds from the paper.
    for (threshold, label) in [(35.0, "multi-lead (35 dB)"), (40.0, "single-lead (40 dB)")] {
        let (sa0, sa1) = cs_tolerance(&rows, threshold);
        println!(
            "CS tolerance at {label}: stuck-at-0 up to bit {}, stuck-at-1 up to bit {}   (paper at 35 dB: 10 and 12)",
            sa0.map_or("-".into(), |b| b.to_string()),
            sa1.map_or("-".into(), |b| b.to_string()),
        );
    }

    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                format!("{:?}", r.stuck),
                r.bit.to_string(),
                format!("{:.3}", r.snr_db),
            ]
        })
        .collect();
    let path = results_dir().join("fig2.csv");
    report::write_csv(&path, &["app", "stuck", "bit", "snr_db"], &csv).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
