//! Shim over `dream run energy` — kept so `cargo run --bin energy` and
//! its historical flags (`--window`, `--area`, `--threads`) keep
//! working; see [`dream_bench::cli`].

fn main() {
    dream_bench::cli::legacy_shim("energy");
}
