//! Regenerates the **§VI-B energy and area analysis**: per-voltage energy
//! of one application run under each EMT, the sweep-averaged overheads
//! (paper: ECC ≈ +55 %, DREAM ≈ +34 %), the codec area comparison (paper:
//! ECC encoder +28 %, decoder +120 % vs DREAM) and the Formula 2 extra-bit
//! counts.
//!
//! ```text
//! cargo run --release -p dream-bench --bin energy [--window N] [--area] [--threads N]
//! ```

use dream_bench::{results_dir, Args};
use dream_core::EmtKind;
use dream_sim::energy_table::{
    area_table, average_overhead, ecc_vs_dream_area, run_energy_table, EnergyConfig,
};
use dream_sim::report;

fn main() {
    let args = Args::from_env();
    dream_bench::apply_threads(&args);
    let area_rows = area_table(&EmtKind::paper_set());
    println!("\n§VI-B — codec area (gate equivalents) and redundancy");
    let table: Vec<Vec<String>> = area_rows
        .iter()
        .map(|r| {
            vec![
                r.emt.to_string(),
                format!("{:.1}", r.encoder_ge),
                format!("{:.1}", r.decoder_ge),
                r.extra_bits.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(
            &["EMT", "encoder GE", "decoder GE", "extra bits/word"],
            &table
        )
    );
    let (enc, dec) = ecc_vs_dream_area(&area_rows);
    println!(
        "ECC vs DREAM area overhead: encoder {}, decoder {}   (paper: +28%, +120%)",
        report::pct(enc),
        report::pct(dec)
    );
    if args.switch("area") {
        return;
    }

    let cfg = EnergyConfig {
        window: args.number("window", 1024),
        ..Default::default()
    };
    let rows = run_energy_table(&cfg);
    println!(
        "\n§VI-B — energy of one {} run (window {})",
        cfg.app, cfg.window
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.voltage),
                r.emt.to_string(),
                format!("{:.1}", r.energy.total_nj()),
                format!("{:.1}", r.energy.data_dynamic_pj * 1e-3),
                format!("{:.1}", r.energy.side_dynamic_pj * 1e-3),
                format!("{:.1}", r.energy.codec_pj * 1e-3),
                format!("{:.1}", r.energy.leakage_pj * 1e-3),
                report::pct(r.overhead_vs_none),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(
            &["V", "EMT", "total nJ", "data nJ", "mask nJ", "codec nJ", "leak nJ", "overhead"],
            &table
        )
    );
    let dream = average_overhead(&rows, EmtKind::Dream);
    let ecc = average_overhead(&rows, EmtKind::EccSecDed);
    println!(
        "sweep-averaged overhead: DREAM {}, ECC SEC/DED {}, gap {:.1} points   (paper: 34%, 55%, 21 points)",
        report::pct(dream),
        report::pct(ecc),
        (ecc - dream) * 100.0
    );

    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.emt.to_string(),
                format!("{:.2}", r.voltage),
                format!("{:.3}", r.energy.total_pj()),
                format!("{:.3}", r.energy.data_dynamic_pj),
                format!("{:.3}", r.energy.side_dynamic_pj),
                format!("{:.3}", r.energy.codec_pj),
                format!("{:.3}", r.energy.leakage_pj),
                format!("{:.4}", r.overhead_vs_none),
            ]
        })
        .collect();
    let path = results_dir().join("energy.csv");
    report::write_csv(
        &path,
        &[
            "emt", "voltage", "total_pj", "data_pj", "mask_pj", "codec_pj", "leak_pj", "overhead",
        ],
        &csv,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}
