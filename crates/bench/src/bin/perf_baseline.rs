//! Times the four experiment campaigns serial vs. parallel, verifies that
//! both paths produce **identical** output, and **appends** the results to
//! the `trajectory` array of `BENCH_campaigns.json` at the workspace root,
//! so the perf history accumulates across PRs instead of overwriting
//! itself.
//!
//! ```text
//! cargo run --release -p dream-bench --bin perf_baseline [--smoke] [--threads N] [--window N]
//!           [--campaigns fig2,fig4,…] [--shards K]
//! ```
//!
//! `--smoke` runs a reduced scale for CI and appends to the gitignored
//! `results/BENCH_campaigns_smoke.json` instead (only full-scale runs
//! update the tracked trajectory); `--threads` picks the parallel worker
//! count (default: `DREAM_THREADS` or the machine's parallelism);
//! `--campaigns` restricts timing to a comma-separated subset of the
//! campaign names (`fig2`, `fig2_scenario`, `fig4`, `fig4_scenario`,
//! `ablation`, `tradeoff`).
//!
//! `--shards K` switches to the sharded-execution baseline instead: the
//! fig2/fig4 scenario campaigns are partitioned with
//! [`dream_sim::scenario::ShardPlan`] at 1/2/4 shards (capped at K), each
//! shard runs on its own thread, and the reassembled rows are asserted
//! **byte-identical** to the serial artifact before any timing is
//! recorded — the same invariant `dream serve --shards` relies on. Each
//! trajectory entry carries the shard count, per-shard row counts and
//! wall times, and the batch-telemetry counters of the pass.
//!
//! Every selected campaign is timed twice — bit-sliced trial batching off
//! and on — after asserting that both modes produce identical rows, and
//! each pass appends its own trajectory entry (tagged `"batch"` and with
//! the current `"git_commit"`), so the history tracks the batching win
//! alongside the threading one.
//!
//! Besides trials/s, every campaign reports **accesses/s**: the protected
//! memory traffic it drives per wall-clock second, derived from clean-run
//! access counts of each (application, record) pair (fault-dependent
//! detector paths can shift per-trial counts by a handful of words; the
//! clean-run figure is the stable denominator).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use dream_bench::{workspace_root, Args};
use dream_dsp::{AppKind, VecStorage, WordStorage};
use dream_ecg::Database;
use dream_sim::ablation::ber_sensitivity;
use dream_sim::campaign::record_suite;
use dream_sim::energy_table::{run_energy_table, EnergyConfig};
use dream_sim::exec;
use dream_sim::fig2::{run_fig2, Fig2Config};
use dream_sim::fig4::{run_fig4, Fig4Config};
use dream_sim::report::JsonlSink;
use dream_sim::scenario;
use dream_sim::telemetry::{self, BatchTelemetry};
use dream_sim::tradeoff::explore;

struct Timing {
    name: &'static str,
    trials: usize,
    accesses: u64,
    serial_s: f64,
    parallel_s: f64,
    /// Batched-executor counters drained over the *serial* run (empty on
    /// scalar passes): lane eviction/bail-out rates and clean-pass reuse,
    /// so a trajectory entry explains why batching won or lost.
    telemetry: BatchTelemetry,
}

impl Timing {
    fn serial_rate(&self) -> f64 {
        self.trials as f64 / self.serial_s
    }

    fn parallel_rate(&self) -> f64 {
        self.trials as f64 / self.parallel_s
    }

    fn serial_access_rate(&self) -> f64 {
        self.accesses as f64 / self.serial_s
    }

    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }
}

/// Runs `campaign` once with 1 worker and once with `threads`, asserts the
/// outputs are identical (the executor's determinism contract), and
/// returns both wall times.
fn time_campaign<R: PartialEq>(
    name: &'static str,
    trials: usize,
    accesses: u64,
    threads: usize,
    campaign: impl Fn() -> R,
) -> Timing {
    eprintln!("[{name}] serial ({trials} trials)…");
    exec::set_thread_override(Some(1));
    let _ = telemetry::take();
    let t0 = Instant::now();
    let serial = campaign();
    let serial_s = t0.elapsed().as_secs_f64();
    let tel = telemetry::take();
    eprintln!("[{name}] parallel ({threads} threads)…");
    exec::set_thread_override(Some(threads));
    let t0 = Instant::now();
    let parallel = campaign();
    let parallel_s = t0.elapsed().as_secs_f64();
    exec::set_thread_override(None);
    let _ = telemetry::take();
    assert!(
        serial == parallel,
        "{name}: parallel output diverged from serial — determinism bug"
    );
    Timing {
        name,
        trials,
        accesses,
        serial_s,
        parallel_s,
        telemetry: tel,
    }
}

/// Word storage that counts accesses on top of a plain vector — the probe
/// behind the campaigns' accesses/s metric.
struct CountingStorage {
    inner: VecStorage,
    accesses: u64,
}

impl WordStorage for CountingStorage {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn read(&mut self, addr: usize) -> i16 {
        self.accesses += 1;
        self.inner.read(addr)
    }

    fn write(&mut self, addr: usize, value: i16) {
        self.accesses += 1;
        self.inner.write(addr, value);
    }
    // Block transfers inherit the per-word defaults, so every streamed
    // word is counted exactly like a protected-memory access.
}

/// Runs a fig2-shaped spec through the scenario engine, returning the
/// typed rows of the legacy entry point for equality checks.
fn run_fig2_scenario(sc: &scenario::Scenario) -> Vec<dream_sim::fig2::Fig2Row> {
    let outcome = scenario::CampaignRunner::new(sc.clone())
        .run_discarding()
        .expect("valid fig2 scenario");
    match outcome.data {
        scenario::OutcomeData::Injection(rows) => rows
            .into_iter()
            .map(|r| dream_sim::fig2::Fig2Row {
                app: r.app,
                stuck: r.stuck,
                bit: r.bit,
                snr_db: r.snr_db,
            })
            .collect(),
        other => unreachable!("fig2 scenarios yield injection rows, got {other:?}"),
    }
}

/// Runs a fig4-shaped spec through the scenario engine.
fn run_fig4_scenario(sc: &scenario::Scenario) -> Vec<dream_sim::fig4::Fig4Point> {
    let outcome = scenario::CampaignRunner::new(sc.clone())
        .run_discarding()
        .expect("valid fig4 scenario");
    match outcome.data {
        scenario::OutcomeData::Fig4(points) => points,
        other => unreachable!("fig4 scenarios yield Fig. 4 points, got {other:?}"),
    }
}

/// Clean-run access count of one `app` run over `input`.
fn accesses_per_run(app: AppKind, window: usize, input: &[i16]) -> u64 {
    let app = app.instantiate(window);
    let mut mem = CountingStorage {
        inner: VecStorage::new(app.memory_words()),
        accesses: 0,
    };
    let _ = app.run(input, &mut mem);
    mem.accesses
}

/// The short hash of the checked-out commit, or `"unknown"` outside a git
/// work tree — stamps trajectory entries so a perf step traces back to
/// the change that caused it.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Formats a unix timestamp as an ISO-8601 UTC date-time (civil-from-days,
/// Howard Hinnant's algorithm — the workspace is intentionally
/// dependency-free).
fn iso8601_utc(unix: u64) -> String {
    let days = (unix / 86_400) as i64;
    let secs = unix % 86_400;
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mon = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mon <= 2 { y + 1 } else { y };
    format!("{y:04}-{mon:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Appends `entry` to the `trajectory` array of the JSON file at `path`.
///
/// A legacy single-run file (the pre-trajectory format) is preserved as
/// the first trajectory entry; a missing or unrecognized file starts a
/// fresh trajectory.
fn append_trajectory(path: &std::path::Path, entry: &str) -> String {
    const HEADER: &str = "{\n  \"generator\": \"cargo run --release -p dream-bench --bin perf_baseline\",\n  \"trajectory\": [\n";
    const FOOTER: &str = "\n  ]\n}\n";
    match std::fs::read_to_string(path) {
        Ok(old) if old.contains("\"trajectory\"") => {
            // Splice the new entry before the file's last closing bracket
            // (the trajectory array's — every campaigns array closes
            // earlier). Formatting-tolerant: any indentation survives.
            let idx = old.rfind(']').unwrap_or_else(|| {
                // Never clobber accumulated history: a trajectory-marked
                // file without a closing bracket is corrupt — bail out.
                panic!(
                    "{} mentions \"trajectory\" but has no closing ']' — \
                     refusing to overwrite the perf history; repair or \
                     remove the file and re-run",
                    path.display()
                )
            });
            let head = old[..idx].trim_end();
            // An empty trajectory array gets no separating comma.
            let sep = if head.ends_with('[') { "\n" } else { ",\n" };
            format!("{head}{sep}{entry}\n  {}", &old[idx..])
        }
        Ok(legacy) => {
            // Wrap the pre-trajectory baseline as the first entry so the
            // history keeps its origin point.
            let legacy = legacy.trim();
            format!("{HEADER}    {legacy},\n{entry}{FOOTER}")
        }
        Err(_) => format!("{HEADER}{entry}{FOOTER}"),
    }
}

/// One shard-count pass over a campaign: total wall time, per-shard row
/// counts and wall times, and the batch-telemetry counters it drained.
struct ShardRun {
    shards: usize,
    seconds: f64,
    per_shard_rows: Vec<usize>,
    per_shard_s: Vec<f64>,
    telemetry: BatchTelemetry,
}

/// The sharded baseline of one campaign: the serial reference plus one
/// [`ShardRun`] per shard count, every one byte-identical to the serial
/// artifact.
struct ShardTiming {
    name: String,
    rows: usize,
    serial_s: f64,
    runs: Vec<ShardRun>,
}

/// Runs a spec serially on one engine thread and returns its exact JSONL
/// bytes — the reassembly reference.
fn shard_jsonl(sc: &scenario::Scenario) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    scenario::CampaignRunner::new(sc.clone())
        .threads(1)
        .run(&mut sink)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
    String::from_utf8(sink.into_inner()).expect("jsonl is UTF-8")
}

/// Times one campaign at every shard count, asserting byte-identical
/// reassembly against the serial artifact before trusting any number.
fn time_sharded(sc: &scenario::Scenario, shard_counts: &[usize]) -> ShardTiming {
    eprintln!("[{}] serial reference…", sc.name);
    let _ = telemetry::take();
    let t0 = Instant::now();
    let reference = shard_jsonl(sc);
    let serial_s = t0.elapsed().as_secs_f64();
    let _ = telemetry::take();
    let mut runs = Vec::new();
    for &k in shard_counts {
        let plan = scenario::ShardPlan::new(sc, k).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        eprintln!(
            "[{}] {k} shards ({} planned, one thread each)…",
            sc.name,
            plan.len()
        );
        let t0 = Instant::now();
        let parts: Vec<(String, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .shards()
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let t = Instant::now();
                        let body = shard_jsonl(&shard.spec);
                        (body, t.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread"))
                .collect()
        });
        let seconds = t0.elapsed().as_secs_f64();
        let tel = telemetry::take();
        let mut reassembled = String::new();
        let mut per_shard_rows = Vec::new();
        let mut per_shard_s = Vec::new();
        for (body, secs) in &parts {
            per_shard_rows.push(body.lines().count());
            per_shard_s.push(*secs);
            reassembled.push_str(body);
        }
        assert_eq!(
            reference, reassembled,
            "{}: {k}-shard reassembly diverged from the serial artifact",
            sc.name
        );
        runs.push(ShardRun {
            shards: plan.len(),
            seconds,
            per_shard_rows,
            per_shard_s,
            telemetry: tel,
        });
    }
    ShardTiming {
        name: sc.name.clone(),
        rows: reference.lines().count(),
        serial_s,
        runs,
    }
}

/// The `--shards K` mode: shard-scaling baseline over the fig2/fig4
/// scenario campaigns, appended to the trajectory as `"mode": "sharded"`
/// entries.
fn shard_baseline(args: &Args, smoke: bool, window: usize, hw: usize, max_shards: usize) {
    let selected: Option<Vec<&str>> = args.value("campaigns").map(|s| s.split(',').collect());
    let wanted = |name: &str| selected.as_ref().is_none_or(|l| l.contains(&name));
    let (fig2_records, fig2_trials) = if smoke { (2, 2) } else { (10, 8) };
    let fig4_runs = if smoke { 4 } else { 24 };
    let mut specs = Vec::new();
    if wanted("fig2") {
        specs.push(
            Fig2Config {
                window,
                records: fig2_records,
                apps: AppKind::all().to_vec(),
                fault_trials: fig2_trials,
            }
            .to_scenario(),
        );
    }
    if wanted("fig4") {
        specs.push(
            Fig4Config {
                window,
                runs: fig4_runs,
                apps: AppKind::all().to_vec(),
                ..Default::default()
            }
            .to_scenario(),
        );
    }
    assert!(
        !specs.is_empty(),
        "--campaigns selected no shardable campaign (fig2, fig4)"
    );
    let shard_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&k| k <= max_shards.max(1))
        .collect();
    let timings: Vec<ShardTiming> = specs
        .iter()
        .map(|sc| time_sharded(sc, &shard_counts))
        .collect();

    println!("\nSharded execution (one thread per shard; byte-identical reassembly verified)");
    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "campaign", "rows", "serial s", "shards", "wall s", "speedup"
    );
    for t in &timings {
        for run in &t.runs {
            println!(
                "{:<14} {:>8} {:>10.2} {:>8} {:>10.2} {:>7.2}x",
                t.name,
                t.rows,
                t.serial_s,
                run.shards,
                run.seconds,
                t.serial_s / run.seconds
            );
        }
    }
    if hw < 4 {
        eprintln!(
            "note: {hw} hardware thread(s) — shard speedups near 1x are expected here; \
             the byte-identity assertion is the load-bearing check"
        );
    }

    let unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let commit = git_commit();
    let path = if smoke {
        dream_bench::results_dir().join("BENCH_campaigns_smoke.json")
    } else {
        workspace_root().join("BENCH_campaigns.json")
    };
    let campaigns: Vec<String> = timings
        .iter()
        .map(|t| {
            let runs: Vec<String> = t
                .runs
                .iter()
                .map(|r| {
                    let rows: Vec<String> =
                        r.per_shard_rows.iter().map(|n| n.to_string()).collect();
                    let secs: Vec<String> =
                        r.per_shard_s.iter().map(|s| format!("{s:.3}")).collect();
                    format!(
                        "          {{\"shards\": {}, \"seconds\": {:.3}, \"speedup_vs_serial\": {:.3}, \
                         \"per_shard_rows\": [{}], \"per_shard_s\": [{}], \
                         \"lanes\": {}, \"lane_eviction_rate\": {:.4}, \"lane_bailout_rate\": {:.4}, \
                         \"clean_pass_replays\": {}}}",
                        r.shards,
                        r.seconds,
                        t.serial_s / r.seconds,
                        rows.join(", "),
                        secs.join(", "),
                        r.telemetry.lanes,
                        r.telemetry.eviction_rate(),
                        r.telemetry.bailout_rate(),
                        r.telemetry.clean_replays,
                    )
                })
                .collect();
            format!(
                "        {{\"name\": \"{}\", \"rows\": {}, \"serial_s\": {:.3}, \"runs\": [\n{}\n        ]}}",
                t.name,
                t.rows,
                t.serial_s,
                runs.join(",\n")
            )
        })
        .collect();
    let entry = format!(
        "    {{\n      \"unix_time\": {unix},\n      \"date_utc\": \"{}\",\n      \
         \"git_commit\": \"{commit}\",\n      \"mode\": \"sharded\",\n      \
         \"hardware_parallelism\": {hw},\n      \"window\": {window},\n      \
         \"shard_campaigns\": [\n{}\n      ]\n    }}",
        iso8601_utc(unix),
        campaigns.join(",\n")
    );
    let json = append_trajectory(&path, &entry);
    std::fs::write(&path, json).expect("write campaign baseline JSON");
    eprintln!("appended sharded trajectory entry to {}", path.display());
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let threads = args.number("threads", exec::thread_count().max(2));
    let window = args.number("window", if smoke { 512 } else { 1024 });
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("perf_baseline: smoke={smoke} threads={threads} window={window} hw_parallelism={hw}");

    if let Some(k) = args.value("shards") {
        let max: usize = k
            .parse()
            .unwrap_or_else(|_| panic!("--shards expects a number, got {k:?}"));
        shard_baseline(&args, smoke, window, hw, max);
        return;
    }

    if threads > hw {
        eprintln!(
            "warning: timing {threads} workers on {hw} hardware thread(s) — \
             expect ~1x speedup; rerun on multi-core hardware for a scaling baseline"
        );
    }

    // Campaign scales: --smoke keeps CI in seconds; the full fig2 scale
    // matches the stable paper-claims reduction (10 records × 8 trials).
    let (fig2_records, fig2_trials) = if smoke { (2, 2) } else { (10, 8) };
    let fig4_runs = if smoke { 4 } else { 24 };
    let ber_runs = if smoke { 2 } else { 8 };
    let ber_slopes: &[f64] = if smoke {
        &[10.0, 16.0]
    } else {
        &[10.0, 13.0, 16.0]
    };
    let voltages = dream_mem::BerModel::paper_voltages();

    let fig2_cfg = Fig2Config {
        window,
        records: fig2_records,
        apps: AppKind::all().to_vec(),
        fault_trials: fig2_trials,
    };
    let fig2_trial_count = fig2_cfg.apps.len() * 2 * 16 * fig2_records * fig2_trials;
    let fig4_cfg = Fig4Config {
        window,
        runs: fig4_runs,
        apps: AppKind::all().to_vec(),
        ..Default::default()
    };
    let fig4_trial_count = fig4_cfg.voltages.len() * fig4_runs;
    let energy_cfg = EnergyConfig {
        window,
        ..Default::default()
    };

    // Clean-run access counts per (app, record): the denominators of the
    // accesses/s columns. fig2 averages over its (possibly truncated)
    // record subset, while run_fig4 always cycles over the full suite —
    // so each campaign's counts come from the suite it actually runs.
    let full_suite = record_suite(window, usize::MAX);
    let per_app_record: Vec<Vec<u64>> = AppKind::all()
        .iter()
        .map(|&app| {
            full_suite
                .iter()
                .map(|r| accesses_per_run(app, window, &r.samples))
                .collect()
        })
        .collect();
    // fig2: every (app, polarity, bit, record, fault trial) runs the app
    // once on that record.
    let fig2_accesses: u64 = per_app_record
        .iter()
        .map(|counts| {
            counts[..fig2_records.min(counts.len())].iter().sum::<u64>()
                * 2
                * 16
                * fig2_trials as u64
        })
        .sum();
    // fig4: every (voltage, run) trial runs all EMTs × apps once on the
    // full-suite record the run cycles to.
    let fig4_record = |run: usize| run % full_suite.len();
    let fig4_accesses_all_apps: u64 = (0..fig4_runs)
        .map(|run| {
            per_app_record
                .iter()
                .map(|counts| counts[fig4_record(run)])
                .sum::<u64>()
        })
        .sum::<u64>()
        * fig4_cfg.emts.len() as u64
        * fig4_cfg.voltages.len() as u64;
    // ablation (BER sensitivity) and the tradeoff's fig4 reuse are
    // DWT-only sweeps over the record-100 window.
    let dwt_rec100 = accesses_per_run(AppKind::Dwt, window, &Database::record(100, window).samples);
    let ablation_accesses = dwt_rec100 * (ber_slopes.len() * voltages.len() * ber_runs) as u64;
    let dwt_idx = AppKind::all()
        .iter()
        .position(|&a| a == AppKind::Dwt)
        .expect("Dwt is in the standard app set");
    let tradeoff_accesses: u64 = (0..fig4_runs)
        .map(|run| per_app_record[dwt_idx][fig4_record(run)])
        .sum::<u64>()
        * fig4_cfg.emts.len() as u64
        * fig4_cfg.voltages.len() as u64;

    // `--campaigns fig2,fig4` restricts both the equality pre-checks and
    // the timed set (CI's perf smoke times only fig2).
    let selected: Option<Vec<&str>> = args.value("campaigns").map(|s| s.split(',').collect());
    let wanted = |name: &str| selected.as_ref().is_none_or(|l| l.contains(&name));

    // The scenario-engine path: the registry-preset-shaped specs compiled
    // from the same configs. Timed alongside the legacy entry points (and
    // checked for identical rows below) to prove the declarative layer
    // adds no dispatch overhead.
    let fig2_scenario = fig2_cfg.to_scenario();
    let fig4_scenario = fig4_cfg.to_scenario();
    // Equality pre-checks, before any timing is trusted: the engine path
    // must match the legacy entry point, and the batched executor must
    // match the scalar one row for row.
    exec::set_batch_override(Some(false));
    if wanted("fig2") || wanted("fig2_scenario") {
        let legacy = run_fig2(&fig2_cfg);
        let via_engine = run_fig2_scenario(&fig2_scenario);
        assert_eq!(
            legacy, via_engine,
            "preset-compiled fig2 diverged from the legacy entry point"
        );
        exec::set_batch_override(Some(true));
        let batched = run_fig2_scenario(&fig2_scenario);
        exec::set_batch_override(Some(false));
        assert_eq!(
            via_engine, batched,
            "batched fig2 diverged from the scalar path"
        );
    }
    if wanted("fig4") || wanted("fig4_scenario") || wanted("tradeoff") {
        let legacy = run_fig4(&fig4_cfg);
        let via_engine = run_fig4_scenario(&fig4_scenario);
        assert_eq!(
            legacy, via_engine,
            "preset-compiled fig4 diverged from the legacy entry point"
        );
        exec::set_batch_override(Some(true));
        let batched = run_fig4_scenario(&fig4_scenario);
        exec::set_batch_override(Some(false));
        assert_eq!(
            via_engine, batched,
            "batched fig4 diverged from the scalar path"
        );
    }
    exec::set_batch_override(None);

    let time_set = |batch: bool| -> Vec<Timing> {
        exec::set_batch_override(Some(batch));
        eprintln!("=== batching {} ===", if batch { "ON" } else { "OFF" });
        let mut timings = Vec::new();
        if wanted("fig2") {
            timings.push(time_campaign(
                "fig2",
                fig2_trial_count,
                fig2_accesses,
                threads,
                || run_fig2(&fig2_cfg),
            ));
        }
        if wanted("fig2_scenario") {
            timings.push(time_campaign(
                "fig2_scenario",
                fig2_trial_count,
                fig2_accesses,
                threads,
                || run_fig2_scenario(&fig2_scenario),
            ));
        }
        if wanted("fig4") {
            timings.push(time_campaign(
                "fig4",
                fig4_trial_count,
                fig4_accesses_all_apps,
                threads,
                || run_fig4(&fig4_cfg),
            ));
        }
        if wanted("fig4_scenario") {
            timings.push(time_campaign(
                "fig4_scenario",
                fig4_trial_count,
                fig4_accesses_all_apps,
                threads,
                || run_fig4_scenario(&fig4_scenario),
            ));
        }
        if wanted("ablation") {
            timings.push(time_campaign(
                "ablation",
                ber_slopes.len() * voltages.len() * ber_runs,
                ablation_accesses,
                threads,
                || ber_sensitivity(window, ber_runs, ber_slopes),
            ));
        }
        if wanted("tradeoff") {
            timings.push(time_campaign(
                "tradeoff",
                fig4_trial_count,
                tradeoff_accesses,
                threads,
                || {
                    let points = run_fig4(&Fig4Config {
                        apps: vec![AppKind::Dwt],
                        ..fig4_cfg.clone()
                    });
                    let energy = run_energy_table(&energy_cfg);
                    explore(AppKind::Dwt, 1.0, &points, &energy)
                },
            ));
        }
        exec::set_batch_override(None);
        assert!(
            !timings.is_empty(),
            "--campaigns selected no known campaign (fig2, fig2_scenario, fig4, fig4_scenario, ablation, tradeoff)"
        );
        timings
    };
    let scalar_timings = time_set(false);
    let batched_timings = time_set(true);

    for (batch, timings) in [(false, &scalar_timings), (true, &batched_timings)] {
        println!(
            "\nCampaign throughput, batching {} (serial vs {threads} threads; identical outputs verified)",
            if batch { "ON" } else { "OFF" }
        );
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>12} {:>12} {:>14} {:>8}",
            "campaign",
            "trials",
            "serial s",
            "par s",
            "ser tr/s",
            "par tr/s",
            "ser accs/s",
            "speedup"
        );
        for t in timings {
            println!(
                "{:<14} {:>8} {:>10.2} {:>10.2} {:>12.1} {:>12.1} {:>14.0} {:>7.2}x",
                t.name,
                t.trials,
                t.serial_s,
                t.parallel_s,
                t.serial_rate(),
                t.parallel_rate(),
                t.serial_access_rate(),
                t.speedup()
            );
        }
    }
    println!("\nBatching win (serial trials/s, batch-on / batch-off)");
    for (off, on) in scalar_timings.iter().zip(&batched_timings) {
        println!(
            "{:<14} {:>7.2}x  ({:.1} -> {:.1} trials/s; {:.1}% evicted, {:.1}% bailed, {} clean-pass replays)",
            off.name,
            on.serial_rate() / off.serial_rate(),
            off.serial_rate(),
            on.serial_rate(),
            on.telemetry.eviction_rate() * 100.0,
            on.telemetry.bailout_rate() * 100.0,
            on.telemetry.clean_replays,
        );
    }

    let unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let commit = git_commit();
    // Smoke runs land in the gitignored results/ directory so they never
    // clobber the tracked full-scale trajectory at the workspace root.
    let path = if smoke {
        dream_bench::results_dir().join("BENCH_campaigns_smoke.json")
    } else {
        workspace_root().join("BENCH_campaigns.json")
    };
    for (batch, timings) in [(false, &scalar_timings), (true, &batched_timings)] {
        // Hand-rolled JSON (the workspace is intentionally dependency-free).
        let campaigns: Vec<String> = timings
            .iter()
            .map(|t| {
                format!(
                    "        {{\"name\": \"{}\", \"trials\": {}, \"accesses\": {}, \"serial_s\": {:.3}, \
                     \"parallel_s\": {:.3}, \"serial_trials_per_s\": {:.2}, \"parallel_trials_per_s\": {:.2}, \
                     \"serial_accesses_per_s\": {:.0}, \"speedup\": {:.3}, \
                     \"lanes\": {}, \"lane_eviction_rate\": {:.4}, \"lane_bailout_rate\": {:.4}, \
                     \"clean_pass_replays\": {}, \"traces_recorded\": {}}}",
                    t.name,
                    t.trials,
                    t.accesses,
                    t.serial_s,
                    t.parallel_s,
                    t.serial_rate(),
                    t.parallel_rate(),
                    t.serial_access_rate(),
                    t.speedup(),
                    t.telemetry.lanes,
                    t.telemetry.eviction_rate(),
                    t.telemetry.bailout_rate(),
                    t.telemetry.clean_replays,
                    t.telemetry.traces_recorded,
                )
            })
            .collect();
        let entry = format!(
            "    {{\n      \"unix_time\": {unix},\n      \"date_utc\": \"{}\",\n      \
             \"git_commit\": \"{commit}\",\n      \"batch\": {batch},\n      \
             \"threads\": {threads},\n      \"hardware_parallelism\": {hw},\n      \
             \"window\": {window},\n      \"campaigns\": [\n{}\n      ]\n    }}",
            iso8601_utc(unix),
            campaigns.join(",\n")
        );
        let json = append_trajectory(&path, &entry);
        std::fs::write(&path, json).expect("write campaign baseline JSON");
    }
    eprintln!(
        "appended batch-off and batch-on trajectory entries to {}",
        path.display()
    );
}
