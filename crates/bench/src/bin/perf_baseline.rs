//! Times the four experiment campaigns serial vs. parallel, verifies that
//! both paths produce **identical** output, and writes the results to
//! `BENCH_campaigns.json` at the workspace root so future PRs have a perf
//! trajectory to compare against.
//!
//! ```text
//! cargo run --release -p dream-bench --bin perf_baseline [--smoke] [--threads N] [--window N]
//! ```
//!
//! `--smoke` runs a reduced scale for CI and writes to the gitignored
//! `results/BENCH_campaigns_smoke.json` instead (only full-scale runs
//! update the tracked trajectory); `--threads` picks the parallel worker
//! count (default: `DREAM_THREADS` or the machine's parallelism).

use std::time::Instant;

use dream_bench::{workspace_root, Args};
use dream_dsp::AppKind;
use dream_sim::ablation::ber_sensitivity;
use dream_sim::energy_table::{run_energy_table, EnergyConfig};
use dream_sim::exec;
use dream_sim::fig2::{run_fig2, Fig2Config};
use dream_sim::fig4::{run_fig4, Fig4Config};
use dream_sim::tradeoff::explore;

struct Timing {
    name: &'static str,
    trials: usize,
    serial_s: f64,
    parallel_s: f64,
}

impl Timing {
    fn serial_rate(&self) -> f64 {
        self.trials as f64 / self.serial_s
    }

    fn parallel_rate(&self) -> f64 {
        self.trials as f64 / self.parallel_s
    }

    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }
}

/// Runs `campaign` once with 1 worker and once with `threads`, asserts the
/// outputs are identical (the executor's determinism contract), and
/// returns both wall times.
fn time_campaign<R: PartialEq>(
    name: &'static str,
    trials: usize,
    threads: usize,
    campaign: impl Fn() -> R,
) -> Timing {
    eprintln!("[{name}] serial ({trials} trials)…");
    exec::set_thread_override(Some(1));
    let t0 = Instant::now();
    let serial = campaign();
    let serial_s = t0.elapsed().as_secs_f64();
    eprintln!("[{name}] parallel ({threads} threads)…");
    exec::set_thread_override(Some(threads));
    let t0 = Instant::now();
    let parallel = campaign();
    let parallel_s = t0.elapsed().as_secs_f64();
    exec::set_thread_override(None);
    assert!(
        serial == parallel,
        "{name}: parallel output diverged from serial — determinism bug"
    );
    Timing {
        name,
        trials,
        serial_s,
        parallel_s,
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let threads = args.number("threads", exec::thread_count().max(2));
    let window = args.number("window", if smoke { 512 } else { 1024 });
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("perf_baseline: smoke={smoke} threads={threads} window={window} hw_parallelism={hw}");

    if threads > hw {
        eprintln!(
            "warning: timing {threads} workers on {hw} hardware thread(s) — \
             expect ~1x speedup; rerun on multi-core hardware for a scaling baseline"
        );
    }

    // Campaign scales: --smoke keeps CI in seconds; the full fig2 scale
    // matches the stable paper-claims reduction (10 records × 8 trials).
    let (fig2_records, fig2_trials) = if smoke { (2, 2) } else { (10, 8) };
    let fig4_runs = if smoke { 4 } else { 24 };
    let ber_runs = if smoke { 2 } else { 8 };
    let ber_slopes: &[f64] = if smoke {
        &[10.0, 16.0]
    } else {
        &[10.0, 13.0, 16.0]
    };
    let voltages = dream_mem::BerModel::paper_voltages();

    let fig2_cfg = Fig2Config {
        window,
        records: fig2_records,
        apps: AppKind::all().to_vec(),
        fault_trials: fig2_trials,
    };
    let fig2_trial_count = fig2_cfg.apps.len() * 2 * 16 * fig2_records * fig2_trials;
    let fig4_cfg = Fig4Config {
        window,
        runs: fig4_runs,
        apps: AppKind::all().to_vec(),
        ..Default::default()
    };
    let fig4_trial_count = fig4_cfg.voltages.len() * fig4_runs;
    let energy_cfg = EnergyConfig {
        window,
        ..Default::default()
    };

    let timings = vec![
        time_campaign("fig2", fig2_trial_count, threads, || run_fig2(&fig2_cfg)),
        time_campaign("fig4", fig4_trial_count, threads, || run_fig4(&fig4_cfg)),
        time_campaign(
            "ablation",
            ber_slopes.len() * voltages.len() * ber_runs,
            threads,
            || ber_sensitivity(window, ber_runs, ber_slopes),
        ),
        time_campaign("tradeoff", fig4_trial_count, threads, || {
            let points = run_fig4(&Fig4Config {
                apps: vec![AppKind::Dwt],
                ..fig4_cfg.clone()
            });
            let energy = run_energy_table(&energy_cfg);
            explore(AppKind::Dwt, 1.0, &points, &energy)
        }),
    ];

    println!("\nCampaign throughput (serial vs {threads} threads; identical outputs verified)");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "campaign", "trials", "serial s", "par s", "ser tr/s", "par tr/s", "speedup"
    );
    for t in &timings {
        println!(
            "{:<10} {:>8} {:>10.2} {:>10.2} {:>12.1} {:>12.1} {:>7.2}x",
            t.name,
            t.trials,
            t.serial_s,
            t.parallel_s,
            t.serial_rate(),
            t.parallel_rate(),
            t.speedup()
        );
    }

    // Hand-rolled JSON (the workspace is intentionally dependency-free).
    let entries: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"{}\", \"trials\": {}, \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \
                 \"serial_trials_per_s\": {:.2}, \"parallel_trials_per_s\": {:.2}, \"speedup\": {:.3}}}",
                t.name,
                t.trials,
                t.serial_s,
                t.parallel_s,
                t.serial_rate(),
                t.parallel_rate(),
                t.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"generator\": \"cargo run --release -p dream-bench --bin perf_baseline{}\",\n  \
         \"threads\": {threads},\n  \"hardware_parallelism\": {hw},\n  \"window\": {window},\n  \
         \"campaigns\": [\n{}\n  ]\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        entries.join(",\n")
    );
    // Smoke runs land in the gitignored results/ directory so they never
    // clobber the tracked full-scale trajectory at the workspace root.
    let path = if smoke {
        dream_bench::results_dir().join("BENCH_campaigns_smoke.json")
    } else {
        workspace_root().join("BENCH_campaigns.json")
    };
    std::fs::write(&path, json).expect("write campaign baseline JSON");
    eprintln!("wrote {}", path.display());
}
