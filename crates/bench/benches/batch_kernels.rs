//! Microbenchmarks of the bit-sliced batch kernels: 64-lane SWAR decodes
//! versus 64 scalar decodes of the same planes (the transpose-and-decode
//! oracle), plus the plane overlay that feeds them. The ratio between the
//! two groups is the raw kernel win the campaign-level batching converts
//! into trials/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dream_core::{scalar_decode_batch, EmtCodec, EmtKind};
use dream_mem::{BatchFaultPlanes, FaultMap, StuckAt};
use std::hint::black_box;

/// Deterministic pseudo-random planes (splitmix64 over the plane index):
/// dense lane occupancy, no RNG in the hot loop.
fn planes(width: usize, salt: u64) -> Vec<u64> {
    (0..width as u64)
        .map(|p| {
            let mut z = (p + salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn bench_decode_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_batch_64_lanes");
    for kind in EmtKind::all() {
        let codec = kind.codec();
        let width = codec.code_width() as usize;
        let input: Vec<Vec<u64>> = (0..64).map(|i| planes(width, i * 131)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &codec, |b, codec| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 63;
                black_box(codec.decode_batch(black_box(&input[i]), black_box(i as u16)))
            })
        });
    }
    group.finish();
}

fn bench_decode_scalar_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_scalar_oracle_64_lanes");
    for kind in EmtKind::all() {
        let codec = kind.codec();
        let width = codec.code_width() as usize;
        let input: Vec<Vec<u64>> = (0..64).map(|i| planes(width, i * 131)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &codec, |b, codec| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 63;
                black_box(scalar_decode_batch(
                    codec,
                    black_box(&input[i]),
                    black_box(i as u16),
                ))
            })
        });
    }
    group.finish();
}

fn bench_plane_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_overlay");
    const WORDS: usize = 4096;
    // A faulty address (one injected cell per lane) and a clean one: the
    // two costs `FaultySram::read_batch` pays in a campaign.
    let mut faulty = BatchFaultPlanes::new(WORDS, 22);
    for lane in 0..64 {
        faulty.inject(lane, 7, (lane % 22) as u32, StuckAt::One);
    }
    let mut clean = BatchFaultPlanes::new(WORDS, 22);
    clean.add_lane(0, &FaultMap::empty(WORDS, 22), None);
    for (name, planes, addr) in [("faulty_addr", &faulty, 7usize), ("clean_addr", &clean, 9)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), planes, |b, planes| {
            let mut out = [0u64; 22];
            let mut code = 0u32;
            b.iter(|| {
                code = code.wrapping_add(0x0005_0001);
                planes.overlay(black_box(addr), black_box(code & 0x3F_FFFF), &mut out);
                black_box(out[21])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_batch,
    bench_decode_scalar_oracle,
    bench_plane_overlay
);
criterion_main!(benches);
