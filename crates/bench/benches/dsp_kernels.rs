//! Throughput of the five biomedical applications on clean storage — the
//! workload side of the paper's platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dream_dsp::{AppKind, VecStorage};
use dream_ecg::Database;
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let n = 1024;
    let record = Database::record(100, n);
    let mut group = c.benchmark_group("apps");
    group.throughput(Throughput::Elements(n as u64));
    for kind in AppKind::all() {
        let app = kind.instantiate(n);
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            let mut mem = VecStorage::new(app.memory_words());
            b.iter(|| black_box(app.run(black_box(&record.samples), &mut mem)))
        });
    }
    group.finish();
}

fn bench_references(c: &mut Criterion) {
    let n = 1024;
    let record = Database::record(100, n);
    let mut group = c.benchmark_group("golden_references");
    for kind in AppKind::all() {
        let app = kind.instantiate(n);
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| black_box(app.run_reference(black_box(&record.samples))))
        });
    }
    group.finish();
}

fn bench_ecg_synthesis(c: &mut Criterion) {
    c.bench_function("ecg_record_1024", |b| {
        let mut id = 100u16;
        b.iter(|| {
            id = 100 + (id - 99) % 10;
            black_box(Database::record(black_box(id), 1024))
        })
    });
}

criterion_group!(benches, bench_apps, bench_references, bench_ecg_synthesis);
criterion_main!(benches);
