//! Hot inner kernels of the draw-family applications, benched at kernel
//! granularity: the matrix-filter GEMM row (the `dot_q15` SWAR dot
//! product on both its vectorized and saturating-fallback paths), the DWT
//! à-trous tap pass, and the morphological sliding extreme. These are the
//! loops the clean-pass traces and scalar replays spend their time in, so
//! a regression here shows up directly in fig4 trials/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dream_dsp::{BiomedicalApp, Dwt, MatrixFilter, MorphologicalFilter, VecStorage};
use dream_fixed::dot_q15;
use std::hint::black_box;

/// Deterministic Q15 test vector (no RNG: benches must not drift).
fn q15_vector(n: usize, seed: u64) -> Vec<i16> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as i16
        })
        .collect()
}

fn bench_gemm_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("matfilt_gemm_row");
    for dim in [32usize, 64, 256] {
        group.throughput(Throughput::Elements(dim as u64));
        // Typical row: gain under 2.0, takes the vectorized path.
        let a: Vec<i16> = q15_vector(dim, 1).iter().map(|&v| v / dim as i16).collect();
        let b = q15_vector(dim, 2);
        group.bench_function(BenchmarkId::new("vectorized", dim), |bch| {
            bch.iter(|| black_box(dot_q15(black_box(&a), black_box(&b))))
        });
        // Corrupted row: gain far above the bound, exact sequential fold.
        let hot = vec![i16::MIN; dim];
        group.bench_function(BenchmarkId::new("saturating_fallback", dim), |bch| {
            bch.iter(|| black_box(dot_q15(black_box(&hot), black_box(&b))))
        });
    }
    group.finish();
}

fn bench_matfilt(c: &mut Criterion) {
    // The fig-preset shape: the full GEMM re-reads every A row per output
    // element, so this tracks the dot product inside its real traffic.
    let app = MatrixFilter::new(64, 4, 2);
    let input = q15_vector(app.input_len(), 3);
    let mut mem = VecStorage::new(app.memory_words());
    c.bench_function("matfilt_full_gemm_64x4x2", |b| {
        b.iter(|| black_box(app.run(black_box(&input), &mut mem)))
    });
}

fn bench_dwt_tap_pass(c: &mut Criterion) {
    // One Dwt run = per scale one high-pass (2 taps) + one low-pass
    // (4 taps, fused weighted sum): the à-trous tap pass kernel.
    let app = Dwt::new(1024, 4);
    let input = q15_vector(1024, 4);
    let mut mem = VecStorage::new(app.memory_words());
    c.bench_function("dwt_tap_pass_1024x4", |b| {
        b.iter(|| black_box(app.run(black_box(&input), &mut mem)))
    });
}

fn bench_morpho_sliding_extreme(c: &mut Criterion) {
    // Eight sliding extremes per run over the monotonic wedge, including
    // the long 0.2 s/0.3 s baseline structuring elements.
    let app = MorphologicalFilter::new(1024, 360.0);
    let input = q15_vector(1024, 5);
    let mut mem = VecStorage::new(app.memory_words());
    c.bench_function("morpho_sliding_extreme_1024", |b| {
        b.iter(|| black_box(app.run(black_box(&input), &mut mem)))
    });
}

criterion_group!(
    benches,
    bench_gemm_row,
    bench_matfilt,
    bench_dwt_tap_pass,
    bench_morpho_sliding_extreme
);
criterion_main!(benches);
