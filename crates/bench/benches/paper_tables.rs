//! One bench per paper artifact: times the regeneration of each table and
//! figure at smoke scale, so `cargo bench` exercises the full experiment
//! pipeline end to end (the full-scale numbers come from the
//! `dream-bench` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use dream_core::EmtKind;
use dream_dsp::AppKind;
use dream_mem::BerModel;
use dream_sim::energy_table::{area_table, run_energy_table, EnergyConfig};
use dream_sim::fig2::{run_fig2, Fig2Config};
use dream_sim::fig4::{run_fig4, Fig4Config};
use dream_sim::tradeoff::explore;
use std::hint::black_box;

fn smoke_fig2() -> Fig2Config {
    Fig2Config {
        window: 512,
        records: 2,
        apps: vec![AppKind::Dwt, AppKind::CompressedSensing],
        fault_trials: 2,
    }
}

fn smoke_fig4() -> Fig4Config {
    Fig4Config {
        window: 512,
        runs: 3,
        voltages: vec![0.55, 0.7, 0.9],
        apps: vec![AppKind::Dwt],
        ber: BerModel::date16(),
        emts: EmtKind::paper_set().to_vec(),
        seed: 1,
    }
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("fig2_smoke", |b| {
        let cfg = smoke_fig2();
        b.iter(|| black_box(run_fig2(black_box(&cfg))))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("fig4_smoke", |b| {
        let cfg = smoke_fig4();
        b.iter(|| black_box(run_fig4(black_box(&cfg))))
    });
    group.finish();
}

fn bench_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("energy_table", |b| {
        let cfg = EnergyConfig {
            window: 512,
            ..Default::default()
        };
        b.iter(|| black_box(run_energy_table(black_box(&cfg))))
    });
    group.bench_function("area_table", |b| {
        b.iter(|| black_box(area_table(&EmtKind::paper_set())))
    });
    group.finish();
}

fn bench_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    let fig4 = run_fig4(&smoke_fig4());
    let energy = run_energy_table(&EnergyConfig {
        window: 512,
        voltages: vec![0.55, 0.7, 0.9],
        ..Default::default()
    });
    group.bench_function("tradeoff_explore", |b| {
        b.iter(|| {
            black_box(explore(
                AppKind::Dwt,
                1.0,
                black_box(&fig4),
                black_box(&energy),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig4,
    bench_energy,
    bench_tradeoff
);
criterion_main!(benches);
