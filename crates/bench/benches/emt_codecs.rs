//! Microbenchmarks of the EMT codec kernels: the per-access logic the
//! paper's Design Compiler reports price in silicon, here priced in
//! simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dream_core::{EmtCodec, EmtKind};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for kind in EmtKind::all() {
        let codec = kind.codec();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &codec, |b, codec| {
            let mut word: i16 = -12345;
            b.iter(|| {
                word = word.wrapping_add(257);
                black_box(codec.encode(black_box(word)))
            })
        });
    }
    group.finish();
}

fn bench_decode_clean(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_clean");
    for kind in EmtKind::all() {
        let codec = kind.codec();
        let encoded: Vec<_> = (0..1024).map(|i| codec.encode((i * 37) as i16)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &codec, |b, codec| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                let e = encoded[i];
                black_box(codec.decode(black_box(e.code), black_box(e.side)))
            })
        });
    }
    group.finish();
}

fn bench_decode_corrupted(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_corrupted");
    for kind in [EmtKind::Dream, EmtKind::EccSecDed] {
        let codec = kind.codec();
        let encoded: Vec<_> = (0..1024)
            .map(|i| {
                let e = codec.encode((i * 37) as i16);
                (e.code ^ (1 << (i % 16)), e.side)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &codec, |b, codec| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                let (code, side) = encoded[i];
                black_box(codec.decode(black_box(code), black_box(side)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode_clean,
    bench_decode_corrupted
);
criterion_main!(benches);
