//! Costs of the memory substrate: fault-map generation across the BER
//! sweep, protected read/write paths, address scrambling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dream_core::{EmtKind, ProtectedMemory};
use dream_mem::{AddressScrambler, BerModel, FaultMap, MemGeometry};
use std::hint::black_box;

fn bench_fault_map_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_map_generate_32kB");
    let words = 16 * 1024;
    for v in [0.9, 0.7, 0.5] {
        let ber = BerModel::date16().ber(v);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{v}V")),
            &ber,
            |b, &ber| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(FaultMap::generate(words, 22, black_box(ber), seed))
                })
            },
        );
    }
    group.finish();
}

fn bench_protected_access(c: &mut Criterion) {
    let geometry = MemGeometry::inyu_data_memory();
    let ber = BerModel::date16().ber(0.6);
    let map = FaultMap::generate(geometry.words(), 22, ber, 42);
    let mut group = c.benchmark_group("protected_read_write");
    for kind in EmtKind::paper_set() {
        let mut mem = ProtectedMemory::with_fault_map(kind, geometry, &map);
        for i in 0..1024 {
            mem.write(i, (i * 31) as i16);
        }
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                mem.write(i, black_box(-77));
                black_box(mem.read(i))
            })
        });
    }
    group.finish();
}

/// The clean-word fast path against the forced full decoder, on a
/// mid-voltage map where most — but not all — words are clean: the
/// regression guard for the per-access read pipeline.
fn bench_clean_fast_path(c: &mut Criterion) {
    let geometry = MemGeometry::inyu_data_memory();
    let ber = BerModel::date16().ber(0.6);
    let map = FaultMap::generate(geometry.words(), 22, ber, 42);
    let mut group = c.benchmark_group("read_fast_path_vs_full_decode");
    for kind in EmtKind::paper_set() {
        for fast in [true, false] {
            let mut mem = ProtectedMemory::with_fault_map(kind, geometry, &map);
            mem.set_fast_path(fast);
            for i in 0..1024 {
                mem.write(i, (i * 31) as i16);
            }
            let label = format!("{kind}/{}", if fast { "fast" } else { "full" });
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) & 1023;
                    black_box(mem.read(black_box(i)))
                })
            });
        }
    }
    group.finish();
}

/// Block transfers against word-at-a-time loops — the streaming path the
/// DSP windows use.
fn bench_block_access(c: &mut Criterion) {
    let geometry = MemGeometry::inyu_data_memory();
    let ber = BerModel::date16().ber(0.6);
    let map = FaultMap::generate(geometry.words(), 22, ber, 42);
    let mut group = c.benchmark_group("block_vs_word_transfers_256");
    let data: Vec<i16> = (0..256).map(|i| (i * 129 - 9000) as i16).collect();
    let mut buf = vec![0i16; 256];
    let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry, &map);
    group.bench_function("word_at_a_time", |b| {
        b.iter(|| {
            for (i, &v) in data.iter().enumerate() {
                mem.write(i, v);
            }
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = mem.read(i);
            }
            black_box(buf[17])
        })
    });
    group.bench_function("block", |b| {
        b.iter(|| {
            mem.write_block(0, &data);
            mem.read_block(0, &mut buf);
            black_box(buf[17])
        })
    });
    group.finish();
}

fn bench_scrambler(c: &mut Criterion) {
    let s = AddressScrambler::new(16 * 1024, 0xBEEF);
    c.bench_function("scramble_to_physical", |b| {
        let mut a = 0usize;
        b.iter(|| {
            a = (a + 1) & 0x3FFF;
            black_box(s.to_physical(black_box(a)))
        })
    });
}

criterion_group!(
    benches,
    bench_fault_map_generation,
    bench_protected_access,
    bench_clean_fast_path,
    bench_block_access,
    bench_scrambler
);
criterion_main!(benches);
