//! Kill -9 chaos tests of `dream serve`: a real child process, a real
//! SIGKILL at an arbitrary point mid-campaign, and a real restart.
//!
//! These are the acceptance tests of the crash-safety story end to end:
//!
//! * a campaign killed mid-artifact resumes on the next POST to a
//!   byte-identical artifact (torn trailing row included);
//! * a completed artifact whose rows were corrupted on disk is caught by
//!   the SHA-256 checksum at preload, quarantined instead of served, and
//!   re-run to the correct bytes.
//!
//! They live in `dream-bench` because that package owns the `dream`
//! binary (`CARGO_BIN_EXE_dream`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dream_serve::http::client_request;
use dream_serve::store::QUARANTINE_DIR;
use dream_serve::{campaign_id, Integrity, Store};
use dream_sim::report::JsonlSink;
use dream_sim::scenario::{registry, CampaignRunner, Scenario};

/// A `dream serve` child process; killed (hard) when dropped so a failed
/// assertion never leaks a listener.
struct ServeProc {
    child: Child,
    addr: String,
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `dream serve` on an ephemeral port and parses the bound
/// address from its startup line.
fn spawn_serve(store_dir: &Path) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dream"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--store",
            store_dir.to_str().expect("store path is UTF-8"),
            "--workers",
            "1",
            "--threads",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dream serve spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exits before announcing its address")
            .expect("stderr is readable");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after scheme")
                .to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServeProc { child, addr }
}

/// A campaign with staged emission (fig4 batches once per voltage grid
/// point over a multi-second run), so rows are on disk long before the
/// campaign completes — the window the SIGKILL below aims for.
fn long_spec(seed: u64) -> Scenario {
    let mut sc = registry::get("fig4", true).expect("preset exists");
    sc.records = 4;
    sc.trials = 10;
    sc.seed = seed;
    sc
}

fn reference_jsonl(sc: &Scenario) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .threads(2)
        .run(&mut sink)
        .expect("reference run");
    String::from_utf8(sink.into_inner()).expect("jsonl is UTF-8")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dream_kill9_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// POSTs the spec without reading the response, so the campaign runs
/// while the test thread is free to aim the kill.
fn post_detached(addr: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /campaigns HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    stream
}

#[test]
fn kill_nine_mid_campaign_then_restart_resumes_byte_identically() {
    let sc = long_spec(0x9119);
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);
    let store_dir = temp_store("resume");
    let store = Store::open(&store_dir).expect("store opens");
    let rows_path = store.rows_path(&id);

    // Boot, submit, and SIGKILL as soon as any rows hit the disk — an
    // arbitrary point mid-campaign, quite possibly mid-write.
    let mut serve = spawn_serve(&store_dir);
    let _conn = post_detached(&serve.addr, &sc.to_json());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if rows_path.metadata().map(|m| m.len() > 0).unwrap_or(false) {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never wrote a row");
        std::thread::sleep(Duration::from_millis(5));
    }
    serve.child.kill().expect("SIGKILL");
    serve.child.wait().expect("reap");

    let survived = std::fs::read_to_string(&rows_path).expect("rows survive the kill");
    assert!(
        !store.is_complete(&id),
        "a killed campaign must not look complete"
    );
    assert!(
        survived.len() < want.len(),
        "the kill should have landed mid-artifact (got {} of {} bytes)",
        survived.len(),
        want.len()
    );

    // Restart over the same store: the repeat POST truncates any torn
    // tail, skips the surviving prefix, and appends the remainder — the
    // response and the on-disk artifact are byte-identical to a run that
    // was never killed.
    let serve2 = spawn_serve(&store_dir);
    let response = client_request(&serve2.addr, "POST", "/campaigns", sc.to_json().as_bytes())
        .expect("resume POST");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-dream-cache"), Some("miss"));
    assert_eq!(String::from_utf8(response.body).expect("UTF-8"), want);
    assert_eq!(std::fs::read_to_string(&rows_path).expect("rows"), want);
    assert!(matches!(
        store.verify(&id).expect("verify"),
        Integrity::Verified
    ));
}

#[test]
fn corrupted_artifacts_are_quarantined_on_restart_and_rerun_not_served() {
    let sc = long_spec(0xBADD);
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);
    let store_dir = temp_store("quarantine");
    let store = Store::open(&store_dir).expect("store opens");

    // Complete the artifact legitimately.
    {
        let serve = spawn_serve(&store_dir);
        let response = client_request(&serve.addr, "POST", "/campaigns", sc.to_json().as_bytes())
            .expect("POST");
        assert_eq!(response.status, 200);
    }
    assert!(store.is_complete(&id));

    // Corrupt the rows under the completion marker — the bit flip a torn
    // write or dying disk would leave.
    let rows_path = store.rows_path(&id);
    let mut rows = std::fs::read(&rows_path).expect("rows");
    let mid = rows.len() / 2;
    rows[mid] ^= 0x55;
    std::fs::write(&rows_path, &rows).expect("tamper");

    // A restarted server refuses to serve the bad bytes: the checksum
    // catches the corruption at preload, the artifact moves to
    // quarantine, and the repeat POST re-runs to the correct bytes.
    let serve2 = spawn_serve(&store_dir);
    let quarantined = store_dir.join(QUARANTINE_DIR).join(&id);
    assert!(
        quarantined.join("quarantine_reason.txt").exists(),
        "corrupt artifact should be quarantined with its reason"
    );
    let mut reason = String::new();
    std::fs::File::open(quarantined.join("quarantine_reason.txt"))
        .expect("reason file")
        .read_to_string(&mut reason)
        .expect("reason is readable");
    assert!(reason.contains("checksum"), "unexpected reason: {reason}");
    assert!(
        !rows_path.exists(),
        "the corrupt rows must be gone from the serving path"
    );

    let response = client_request(&serve2.addr, "POST", "/campaigns", sc.to_json().as_bytes())
        .expect("re-run POST");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("x-dream-cache"),
        Some("miss"),
        "a quarantined artifact must not be served as a cache hit"
    );
    assert_eq!(String::from_utf8(response.body).expect("UTF-8"), want);
    assert!(matches!(
        store.verify(&id).expect("verify"),
        Integrity::Verified
    ));
}
