//! Discrete wavelet transform (paper §II-1).

use dream_fixed::{Rounding, Q15};

use crate::app::{AppKind, BiomedicalApp};
use crate::WordStorage;

/// Multi-scale à-trous DWT with the quadratic-spline filter pair used by
/// embedded multi-lead ECG delineators ([8] in the paper).
///
/// Per scale `j` (filter taps spread by `2^(j-1)`, symmetric clamped
/// boundaries):
///
/// * low-pass: `(x[i-2s] + 3·x[i-s] + 3·x[i] + x[i+s]) / 8` — the binomial
///   spline smoother, computed in a 32-bit MAC and rounded back to 16 bits
///   on store (every store goes to the data memory, which is where the
///   paper's faults live),
/// * high-pass: `x[i] - x[i-s]` — the spline derivative detail.
///
/// The output concatenates the detail signals of all scales followed by the
/// final approximation, which is what the downstream delineator consumes.
///
/// ```
/// use dream_dsp::{BiomedicalApp, Dwt, VecStorage};
/// let app = Dwt::new(128, 3);
/// let input: Vec<i16> = (0..128).map(|i| (i * 13 % 251) as i16).collect();
/// let mut mem = VecStorage::new(app.memory_words());
/// let out = app.run(&input, &mut mem);
/// assert_eq!(out.len(), 4 * 128); // 3 details + 1 approximation
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dwt {
    n: usize,
    scales: u32,
}

impl Dwt {
    /// Creates a DWT over `n`-sample windows with `scales` decomposition
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `scales` is zero or large enough that the
    /// tap spread (`2^(scales-1) · 2`) exceeds the window.
    pub fn new(n: usize, scales: u32) -> Self {
        assert!(n > 0, "window must be non-empty");
        assert!(scales > 0, "need at least one scale");
        assert!(
            (1usize << (scales - 1)) * 2 < n,
            "tap spread exceeds the window"
        );
        Dwt { n, scales }
    }

    /// Number of decomposition levels.
    pub fn scales(&self) -> u32 {
        self.scales
    }

    // Buffer layout inside the data memory.
    fn input_base(&self) -> usize {
        0
    }
    fn approx_a(&self) -> usize {
        self.n
    }
    fn approx_b(&self) -> usize {
        2 * self.n
    }
    fn output_base(&self) -> usize {
        3 * self.n
    }
}

/// Clamped (symmetric-edge) index.
#[inline]
pub(crate) fn clamp_idx(i: isize, n: usize) -> usize {
    i.clamp(0, n as isize - 1) as usize
}

/// Loads the clamped-shifted tap `x[clamp_idx(i + off)]` for every `i`
/// into `out`: one contiguous block read for the in-range span plus
/// per-word reads of the edge words the clamping repeats — exactly the
/// same source cells, read exactly the same number of times, as the
/// word-at-a-time tap loop, but with per-block instead of per-word
/// dispatch.
pub(crate) fn read_shifted_tap(mem: &mut dyn WordStorage, src: usize, off: isize, out: &mut [i16]) {
    let n = out.len();
    debug_assert!(off.unsigned_abs() < n, "tap spread exceeds the window");
    if off >= 0 {
        // In-range span src+off..src+n, then `off` clamped reads of the
        // last word.
        let m = n - off as usize;
        mem.read_block(src + off as usize, &mut out[..m]);
        for slot in &mut out[m..] {
            *slot = mem.read(src + n - 1);
        }
    } else {
        // `-off` clamped reads of the first word, then the in-range span
        // src..src+n+off.
        let o = off.unsigned_abs();
        for slot in &mut out[..o] {
            *slot = mem.read(src);
        }
        mem.read_block(src, &mut out[o..]);
    }
}

/// One à-trous low-pass pass in fixed point: `src` region → `dst` region
/// (always disjoint), streamed tap by tap.
pub(crate) fn lowpass_fixed(
    mem: &mut dyn WordStorage,
    src: usize,
    dst: usize,
    n: usize,
    spacing: usize,
) {
    let s = spacing as isize;
    // The four taps stream in first (same cells, same counts, same order
    // as the per-tap formulation); the weighted sum, renormalization and
    // narrowing then run as one fused pass the compiler can vectorize,
    // instead of four accumulator sweeps plus a rounding sweep.
    let mut t0 = vec![0i16; n];
    let mut t1 = vec![0i16; n];
    let mut t2 = vec![0i16; n];
    let mut t3 = vec![0i16; n];
    read_shifted_tap(mem, src, -2 * s, &mut t0);
    read_shifted_tap(mem, src, -s, &mut t1);
    read_shifted_tap(mem, src, 0, &mut t2);
    read_shifted_tap(mem, src, s, &mut t3);
    for i in 0..n {
        // Integer accumulation: the un-normalized spline sum needs three
        // bits of headroom beyond the sample width, so it runs in the MAC
        // register (i32) and is renormalized by the /8 on the way out.
        let sum = i32::from(t0[i]) + 3 * i32::from(t1[i]) + 3 * i32::from(t2[i]) + i32::from(t3[i]);
        t0[i] = Rounding::Nearest
            .shift_right(i64::from(sum), 3)
            .clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
    }
    mem.write_block(dst, &t0);
}

/// One à-trous high-pass pass in fixed point, streamed tap by tap.
pub(crate) fn highpass_fixed(
    mem: &mut dyn WordStorage,
    src: usize,
    dst: usize,
    n: usize,
    spacing: usize,
) {
    let s = spacing as isize;
    let mut cur = vec![0i16; n];
    let mut lag = vec![0i16; n];
    read_shifted_tap(mem, src, 0, &mut cur);
    read_shifted_tap(mem, src, -s, &mut lag);
    for (a, &b) in cur.iter_mut().zip(&lag) {
        *a = Q15::from_raw(*a).saturating_sub(Q15::from_raw(b)).raw();
    }
    mem.write_block(dst, &cur);
}

/// Float reference of [`lowpass_fixed`].
pub(crate) fn lowpass_f64(x: &[f64], spacing: usize) -> Vec<f64> {
    let n = x.len();
    let s = spacing as isize;
    (0..n as isize)
        .map(|i| {
            (x[clamp_idx(i - 2 * s, n)]
                + 3.0 * x[clamp_idx(i - s, n)]
                + 3.0 * x[clamp_idx(i, n)]
                + x[clamp_idx(i + s, n)])
                / 8.0
        })
        .collect()
}

/// Float reference of [`highpass_fixed`].
pub(crate) fn highpass_f64(x: &[f64], spacing: usize) -> Vec<f64> {
    let n = x.len();
    let s = spacing as isize;
    (0..n as isize)
        .map(|i| x[clamp_idx(i, n)] - x[clamp_idx(i - s, n)])
        .collect()
}

impl BiomedicalApp for Dwt {
    fn name(&self) -> &'static str {
        "DWT"
    }

    fn kind(&self) -> AppKind {
        AppKind::Dwt
    }

    fn input_len(&self) -> usize {
        self.n
    }

    fn output_len(&self) -> usize {
        (self.scales as usize + 1) * self.n
    }

    fn memory_words(&self) -> usize {
        3 * self.n + self.output_len()
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        let n = self.n;
        mem.store_slice(self.input_base(), input);
        let mut cur = self.input_base();
        let mut next = self.approx_a();
        for j in 0..self.scales {
            let spacing = 1usize << j;
            // Detail of this scale goes straight to its output slot.
            highpass_fixed(mem, cur, self.output_base() + j as usize * n, n, spacing);
            lowpass_fixed(mem, cur, next, n, spacing);
            cur = next;
            next = if cur == self.approx_a() {
                self.approx_b()
            } else {
                self.approx_a()
            };
        }
        // Final approximation: copied into the output region through the
        // memory, like any other buffer-to-buffer move on the device —
        // streamed as one block load + one block store over the same words.
        let mut approx = vec![0i16; n];
        mem.read_block(cur, &mut approx);
        mem.write_block(self.output_base() + self.scales as usize * n, &approx);
        mem.load_slice(self.output_base(), self.output_len())
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        let mut cur: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
        let mut out = Vec::with_capacity(self.output_len());
        for j in 0..self.scales {
            let spacing = 1usize << j;
            out.extend(highpass_f64(&cur, spacing));
            cur = lowpass_f64(&cur, spacing);
        }
        out.extend(cur);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples_to_f64, snr_db, VecStorage};

    fn ramp(n: usize) -> Vec<i16> {
        (0..n)
            .map(|i| ((i as i32 * 37) % 2000 - 1000) as i16)
            .collect()
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let app = Dwt::new(64, 2);
        let input = vec![500i16; 64];
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        // Details (first 2*64 words) vanish; approximation equals input.
        assert!(out[..128].iter().all(|&d| d == 0));
        assert!(out[128..].iter().all(|&a| a == 500));
    }

    #[test]
    fn fixed_point_tracks_float_reference() {
        let app = Dwt::new(256, 4);
        let input = ramp(256);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let reference = app.run_reference(&input);
        let snr = snr_db(&reference, &samples_to_f64(&out));
        assert!(snr > 50.0, "quantization-limited SNR too low: {snr}");
    }

    #[test]
    fn detail_catches_a_step() {
        let app = Dwt::new(64, 1);
        let mut input = vec![0i16; 64];
        for v in input.iter_mut().skip(32) {
            *v = 1000;
        }
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        // Scale-1 detail spikes exactly at the step.
        assert_eq!(out[32], 1000);
        assert_eq!(out[31], 0);
    }

    #[test]
    fn output_layout_is_details_then_approx() {
        let app = Dwt::new(64, 3);
        assert_eq!(app.output_len(), 4 * 64);
        assert_eq!(app.memory_words(), 3 * 64 + 4 * 64);
    }

    #[test]
    #[should_panic(expected = "tap spread")]
    fn too_many_scales_rejected() {
        let _ = Dwt::new(16, 5);
    }
}
