//! Morphological filtering (paper §II-4).

use crate::app::{AppKind, BiomedicalApp};
use crate::WordStorage;

/// Morphological ECG conditioning: EMG denoising plus baseline-wander
/// removal built from erosion/dilation with flat structuring elements, the
/// scheme used to clean raw ECG degraded by "patients muscles activity or
/// the system AC supply interferences" (§II-4).
///
/// Stages:
///
/// 1. **Denoise** — average of opening and closing with a short (5-sample)
///    element: suppresses impulsive/EMG noise while preserving QRS edges.
/// 2. **Baseline estimate** — opening (removes peaks) then closing (fills
///    pits) with long elements sized to 0.2 s / 0.3 s: anything slower
///    than a heartbeat survives and is, by construction, wander.
/// 3. **Correction** — subtract the baseline from the denoised signal.
///
/// Erosion and dilation are O(1)-per-sample sliding minima/maxima
/// (monotonic wedge), so the whole app reads each buffer word once per
/// stage — matching the streaming implementations used on sensor nodes.
///
/// ```
/// use dream_dsp::{BiomedicalApp, MorphologicalFilter, VecStorage};
/// let app = MorphologicalFilter::new(256, 360.0);
/// let drift: Vec<i16> = (0..256).map(|i| (i * 8) as i16).collect(); // pure ramp wander
/// let mut mem = VecStorage::new(app.memory_words());
/// let out = app.run(&drift, &mut mem);
/// let residual = out.iter().map(|&v| i32::from(v).abs()).max().unwrap();
/// // Edge windows keep a little residue; the bulk of the ramp is gone.
/// assert!(residual < 600, "baseline should be mostly removed: {residual}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MorphologicalFilter {
    n: usize,
    denoise_len: usize,
    open_len: usize,
    close_len: usize,
}

impl MorphologicalFilter {
    /// Creates a filter for `n`-sample windows sampled at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `n` is too small for the baseline structuring elements.
    pub fn new(n: usize, fs: f64) -> Self {
        let open_len = make_odd((0.2 * fs) as usize);
        let close_len = make_odd((0.3 * fs) as usize);
        assert!(
            n > 2 * close_len,
            "window of {n} too small for SE of {close_len}"
        );
        MorphologicalFilter {
            n,
            denoise_len: 5,
            open_len,
            close_len,
        }
    }

    // Memory layout: input, three temporaries, baseline, output.
    fn input_base(&self) -> usize {
        0
    }
    fn t1(&self) -> usize {
        self.n
    }
    fn t2(&self) -> usize {
        2 * self.n
    }
    fn denoised(&self) -> usize {
        3 * self.n
    }
    fn baseline(&self) -> usize {
        4 * self.n
    }
    fn output_base(&self) -> usize {
        5 * self.n
    }
}

fn make_odd(v: usize) -> usize {
    if v % 2 == 0 {
        v + 1
    } else {
        v
    }
}

/// Sliding-window extreme over a memory region (centered window of length
/// `window`, clamped at the edges), using a monotonic wedge so every source
/// word is read exactly once — streamed as one block load of the source
/// window and one block store of the result (same cells, same access
/// counts as the word-at-a-time formulation; `src` and `dst` are always
/// disjoint regions).
fn sliding_extreme(
    mem: &mut dyn WordStorage,
    src: usize,
    dst: usize,
    n: usize,
    window: usize,
    take_max: bool,
) {
    let half = window / 2;
    let mut x = vec![0i16; n];
    mem.read_block(src, &mut x);
    let mut out = vec![0i16; n];
    // Wedge of (index, value) with values monotonically worsening, kept in
    // a flat push-only buffer: `head` marks the live front, the tail pops
    // by truncation. Every sample is pushed at most once, so capacity `n`
    // never reallocates and indexing stays a plain offset (no ring-buffer
    // wraparound like a deque's).
    let mut wedge: Vec<(usize, i16)> = Vec::with_capacity(n);
    let mut head = 0usize;
    let better = |a: i16, b: i16| if take_max { a >= b } else { a <= b };
    let mut next_in = 0usize;
    for (i, slot) in out.iter_mut().enumerate() {
        // Admit every sample whose window includes position i.
        let last_needed = (i + half).min(n - 1);
        while next_in <= last_needed {
            let v = x[next_in];
            while let Some(&(_, back)) = wedge.last() {
                if wedge.len() > head && better(v, back) {
                    wedge.pop();
                } else {
                    break;
                }
            }
            wedge.push((next_in, v));
            next_in += 1;
        }
        // Expire samples that slid out of the window.
        while head < wedge.len() && wedge[head].0 + half < i {
            head += 1;
        }
        let (_, v) = wedge[head];
        *slot = v;
    }
    mem.write_block(dst, &out);
}

/// Float reference of [`sliding_extreme`].
fn sliding_extreme_f64(x: &[f64], window: usize, take_max: bool) -> Vec<f64> {
    let n = x.len();
    let half = window / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            let slice = &x[lo..=hi];
            if take_max {
                slice.iter().cloned().fold(f64::MIN, f64::max)
            } else {
                slice.iter().cloned().fold(f64::MAX, f64::min)
            }
        })
        .collect()
}

impl BiomedicalApp for MorphologicalFilter {
    fn name(&self) -> &'static str {
        "Morphological Filtering"
    }

    fn kind(&self) -> AppKind {
        AppKind::MorphologicalFilter
    }

    fn input_len(&self) -> usize {
        self.n
    }

    fn output_len(&self) -> usize {
        self.n
    }

    fn memory_words(&self) -> usize {
        6 * self.n
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        let n = self.n;
        mem.store_slice(self.input_base(), input);
        let (input_b, t1, t2, den, base, out) = (
            self.input_base(),
            self.t1(),
            self.t2(),
            self.denoised(),
            self.baseline(),
            self.output_base(),
        );
        let w = self.denoise_len;
        // Opening(x) -> t2 : erode then dilate.
        sliding_extreme(mem, input_b, t1, n, w, false);
        sliding_extreme(mem, t1, t2, n, w, true);
        // Closing(x) -> t1 (via den as scratch): dilate then erode.
        sliding_extreme(mem, input_b, den, n, w, true);
        sliding_extreme(mem, den, t1, n, w, false);
        // Denoised = (opening + closing) / 2, rounded to nearest — the
        // operand windows stream in as blocks (same words and counts as
        // word-at-a-time reads).
        let mut wa = vec![0i16; n];
        let mut wb = vec![0i16; n];
        mem.read_block(t2, &mut wa);
        mem.read_block(t1, &mut wb);
        for i in 0..n {
            wa[i] = ((i32::from(wa[i]) + i32::from(wb[i]) + 1) >> 1) as i16;
        }
        mem.write_block(den, &wa);
        // Baseline: opening with the short-beat SE, closing with the long
        // one — classic peak-then-pit suppression.
        sliding_extreme(mem, den, t1, n, self.open_len, false);
        sliding_extreme(mem, t1, t2, n, self.open_len, true);
        sliding_extreme(mem, t2, t1, n, self.close_len, true);
        sliding_extreme(mem, t1, base, n, self.close_len, false);
        // Correction.
        mem.read_block(den, &mut wa);
        mem.read_block(base, &mut wb);
        for i in 0..n {
            let s = i32::from(wa[i]) - i32::from(wb[i]);
            wa[i] = s.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
        }
        mem.write_block(out, &wa);
        mem.load_slice(out, n)
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        let x: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
        let w = self.denoise_len;
        let opening = sliding_extreme_f64(&sliding_extreme_f64(&x, w, false), w, true);
        let closing = sliding_extreme_f64(&sliding_extreme_f64(&x, w, true), w, false);
        let denoised: Vec<f64> = opening
            .iter()
            .zip(&closing)
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        let opened = sliding_extreme_f64(
            &sliding_extreme_f64(&denoised, self.open_len, false),
            self.open_len,
            true,
        );
        let baseline = sliding_extreme_f64(
            &sliding_extreme_f64(&opened, self.close_len, true),
            self.close_len,
            false,
        );
        denoised.iter().zip(&baseline).map(|(d, b)| d - b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples_to_f64, snr_db, VecStorage};

    #[test]
    fn sliding_extremes_match_naive() {
        let data: Vec<i16> = vec![3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, -9, 0, 7];
        let n = data.len();
        let mut mem = VecStorage::new(2 * n);
        mem.store_slice(0, &data);
        for window in [1usize, 3, 5, 7] {
            for take_max in [false, true] {
                sliding_extreme(&mut mem, 0, n, n, window, take_max);
                let got = mem.load_slice(n, n);
                let reference: Vec<i16> = (0..n)
                    .map(|i| {
                        let lo = i.saturating_sub(window / 2);
                        let hi = (i + window / 2).min(n - 1);
                        let s = &data[lo..=hi];
                        if take_max {
                            *s.iter().max().unwrap()
                        } else {
                            *s.iter().min().unwrap()
                        }
                    })
                    .collect();
                assert_eq!(got, reference, "window {window} max {take_max}");
            }
        }
    }

    #[test]
    fn flat_signal_passes_through_unchanged() {
        let app = MorphologicalFilter::new(300, 360.0);
        let input = vec![-1000i16; 300];
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        // Constant minus its own baseline is zero.
        assert!(out.iter().all(|&v| v == 0), "{:?}", &out[..8]);
    }

    #[test]
    fn removes_slow_ramp_keeps_qrs_width_spike() {
        let app = MorphologicalFilter::new(400, 360.0);
        let mut input: Vec<i16> = (0..400).map(|i| (i * 4) as i16).collect();
        // An R-like triangular deflection ~30 ms wide (11 samples at
        // 360 Hz) — wider than the 5-sample denoising element, so the
        // opening preserves it while single-sample impulses would go.
        for (k, d) in (-5i32..=5).enumerate() {
            let boost = 8000 - d.abs() * 1500;
            input[195 + k] = input[195 + k].saturating_add(boost as i16);
        }
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let spike = out[200];
        let rest_max = out
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as i32 - 200).abs() > 40)
            .map(|(_, &v)| i32::from(v).abs())
            .max()
            .unwrap();
        assert!(i32::from(spike) > 5000, "spike flattened: {spike}");
        assert!(rest_max < 1500, "baseline residue {rest_max}");
    }

    #[test]
    fn fixed_point_tracks_float_reference() {
        let app = MorphologicalFilter::new(512, 360.0);
        let input: Vec<i16> = (0..512)
            .map(|i| (((i as f64) * 0.1).sin() * 4000.0) as i16)
            .collect();
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let snr = snr_db(&app.run_reference(&input), &samples_to_f64(&out));
        // Min/max are exact in both domains; only the /2 rounding differs.
        assert!(snr > 60.0, "SNR {snr}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn short_window_rejected() {
        let _ = MorphologicalFilter::new(64, 360.0);
    }
}
