//! The application abstraction the experiment harness drives.

use std::fmt;

use crate::{
    CompressedSensing, Dwt, HeartbeatClassifier, MatrixFilter, MorphologicalFilter,
    WaveletDelineation, WordStorage,
};

/// A biomedical application whose data buffers live in an external word
/// memory.
///
/// Implementations must route **every** access to input, intermediate and
/// output buffers through the supplied [`WordStorage`]; register-resident
/// scalars (accumulators, loop state) stay outside. This split is the
/// paper's fault model: permanent errors live in the voltage-scaled data
/// memory, not in the core.
///
/// [`BiomedicalApp::run_reference`] computes the same transformation in
/// double precision — the `x_theo` of the paper's Formula 1.
///
/// Applications are `Send + Sync`: [`BiomedicalApp::run`] takes `&self`
/// (all mutable state lives in the supplied storage), so one instance can
/// serve concurrent campaign workers and worker arenas can hold their own
/// boxed copies.
pub trait BiomedicalApp: Send + Sync {
    /// Display name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// The selector this app instantiates.
    fn kind(&self) -> AppKind;

    /// Number of input samples consumed per run.
    fn input_len(&self) -> usize;

    /// Number of output words produced per run.
    fn output_len(&self) -> usize;

    /// Total data-memory footprint (words) of all buffers.
    fn memory_words(&self) -> usize;

    /// Executes the application with all buffers in `mem`, returning the
    /// output read back *through* `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_len()` or `mem` is smaller than
    /// [`BiomedicalApp::memory_words`].
    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16>;

    /// Double-precision golden reference (`x_theo` of Formula 1).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_len()`.
    fn run_reference(&self, input: &[i16]) -> Vec<f64>;
}

/// Selector for the five applications of §II (plus the §III heartbeat
/// classifier built on top of them).
///
/// [`AppKind::instantiate`] builds each app with the standard parameters
/// used across the reproduction's experiments for a given window size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Discrete wavelet transform (§II-1).
    Dwt,
    /// Matrix filtering (§II-2).
    MatrixFilter,
    /// Compressed sensing (§II-3).
    CompressedSensing,
    /// Morphological filtering (§II-4).
    MorphologicalFilter,
    /// Wavelet delineation (§II-5).
    WaveletDelineation,
    /// Heartbeat classifier (§III; delineation + rule-based classes).
    HeartbeatClassifier,
}

impl AppKind {
    /// The five §II applications, in the paper's presentation order — the
    /// set every paper experiment sweeps.
    pub fn all() -> [AppKind; 5] {
        [
            AppKind::Dwt,
            AppKind::MatrixFilter,
            AppKind::CompressedSensing,
            AppKind::MorphologicalFilter,
            AppKind::WaveletDelineation,
        ]
    }

    /// The paper set plus the heartbeat classifier extension.
    pub fn extended() -> [AppKind; 6] {
        [
            AppKind::Dwt,
            AppKind::MatrixFilter,
            AppKind::CompressedSensing,
            AppKind::MorphologicalFilter,
            AppKind::WaveletDelineation,
            AppKind::HeartbeatClassifier,
        ]
    }

    /// Builds the application with its standard configuration for an
    /// `n`-sample input window (sampled at the record suite's 360 Hz).
    ///
    /// # Panics
    ///
    /// Panics if `n` is too small for the app's structure (each app
    /// documents its own minimum; 256 samples satisfies all five).
    pub fn instantiate(self, n: usize) -> Box<dyn BiomedicalApp> {
        match self {
            AppKind::Dwt => Box::new(Dwt::new(n, 4)),
            AppKind::MatrixFilter => {
                let dim = 32.min(n);
                assert!(n % dim == 0, "window must be a multiple of {dim}");
                Box::new(MatrixFilter::new(dim, n / dim, 2))
            }
            AppKind::CompressedSensing => Box::new(CompressedSensing::new(n, 4, 0xC5C5)),
            AppKind::MorphologicalFilter => Box::new(MorphologicalFilter::new(n, 360.0)),
            AppKind::WaveletDelineation => Box::new(WaveletDelineation::new(n, 360.0)),
            AppKind::HeartbeatClassifier => Box::new(HeartbeatClassifier::new(n, 360.0)),
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppKind::Dwt => "DWT",
            AppKind::MatrixFilter => "Matrix Filtering",
            AppKind::CompressedSensing => "Compressed Sensing",
            AppKind::MorphologicalFilter => "Morphological Filtering",
            AppKind::WaveletDelineation => "Wavelet Delineation",
            AppKind::HeartbeatClassifier => "Heartbeat Classifier",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples_to_f64, snr_db, VecStorage};
    use dream_ecg::Database;

    #[test]
    fn all_apps_instantiate_and_run_on_ecg() {
        let record = Database::record(100, 512);
        for kind in AppKind::all() {
            let app = kind.instantiate(512);
            assert_eq!(app.kind(), kind);
            assert_eq!(app.input_len(), 512);
            let mut mem = VecStorage::new(app.memory_words());
            let out = app.run(&record.samples, &mut mem);
            assert_eq!(out.len(), app.output_len(), "{kind}");
        }
    }

    #[test]
    fn fault_free_runs_sit_near_the_reference() {
        // The dashed "maximum SNR" ceiling of Fig. 4 for every app.
        let record = Database::record(103, 512);
        for kind in AppKind::all() {
            let app = kind.instantiate(512);
            let mut mem = VecStorage::new(app.memory_words());
            let out = app.run(&record.samples, &mut mem);
            let snr = snr_db(&app.run_reference(&record.samples), &samples_to_f64(&out));
            assert!(snr > 40.0, "{kind}: fault-free SNR only {snr:.1} dB");
        }
    }

    #[test]
    fn footprints_fit_the_inyu_memory() {
        // All five apps must fit the 16 K-word (32 kB) shared memory at the
        // standard window size used by the campaigns.
        for kind in AppKind::all() {
            let app = kind.instantiate(1024);
            assert!(
                app.memory_words() <= 16 * 1024,
                "{kind} needs {} words",
                app.memory_words()
            );
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(AppKind::Dwt.to_string(), "DWT");
        assert_eq!(AppKind::CompressedSensing.to_string(), "Compressed Sensing");
    }
}
