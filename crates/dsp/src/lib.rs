//! The five biomedical applications of the paper's §II, implemented in
//! 16-bit fixed point over an abstract [`WordStorage`] so that **every data
//! buffer access** — input, intermediate and output — can be routed through
//! a faulty, EMT-protected memory.
//!
//! Applications (one module each):
//!
//! * [`Dwt`] — multi-scale à-trous discrete wavelet transform with the
//!   quadratic-spline filters used by embedded ECG delineators (§II-1),
//! * [`MatrixFilter`] — iterated matrix-multiplication filtering
//!   `[A]×[B]=[C]` (§II-2), the application whose dense data dependencies
//!   explain its lower SNR curve in Fig. 2,
//! * [`CompressedSensing`] — 50 % lossy compression with a sparse binary
//!   sensing matrix (§II-3),
//! * [`MorphologicalFilter`] — erosion/dilation-based denoising and
//!   baseline-wander removal (§II-4),
//! * [`WaveletDelineation`] — DWT-based detection of the P, Q, R, S, T
//!   fiducial points (§II-5),
//! * [`HeartbeatClassifier`] — the §III example of a qualitative output
//!   (delineation + rule-based beat classes, after the paper's ref. [9]);
//!   an extension beyond the paper's five benchmark kernels.
//!
//! Each app also carries a double-precision reference implementation
//! ([`BiomedicalApp::run_reference`]) — the "theoretical" output of the
//! paper's Formula 1 — and [`snr_db`] implements that formula.
//!
//! # Example
//!
//! ```
//! use dream_dsp::{AppKind, VecStorage, snr_db};
//! use dream_ecg::Database;
//!
//! let record = Database::record(100, 256);
//! let app = AppKind::Dwt.instantiate(256);
//! let mut mem = VecStorage::new(app.memory_words());
//! let out = app.run(&record.samples, &mut mem);
//! let reference = app.run_reference(&record.samples);
//! // Fault-free fixed point sits close to the float reference:
//! assert!(snr_db(&reference, &to_f64(&out)) > 40.0);
//! # fn to_f64(v: &[i16]) -> Vec<f64> { v.iter().map(|&s| f64::from(s)).collect() }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod classifier;
mod cs;
mod delineate;
mod dwt;
mod matfilt;
mod morpho;
mod snr;
mod storage;

pub use app::{AppKind, BiomedicalApp};
pub use classifier::{BeatClass, HeartbeatClassifier};
pub use cs::CompressedSensing;
pub use delineate::WaveletDelineation;
pub use dwt::Dwt;
pub use matfilt::MatrixFilter;
pub use morpho::MorphologicalFilter;
pub use snr::{samples_to_f64, snr_db};
pub use storage::{VecStorage, WordStorage};
