//! The output-quality metric: Formula 1 of the paper.

/// Signal-to-noise ratio in decibels between a theoretical (error-free)
/// output and an experimental (possibly corrupted) one:
///
/// `SNR = 20 · log10( rms(x_theo) / sqrt(MSE) )`
///
/// where `MSE` is the mean squared difference. This is exactly the paper's
/// Formula 1 (§III); it is the y-axis of both Fig. 2 and Fig. 4.
///
/// Edge behaviour:
///
/// * identical sequences → `f64::INFINITY` (no dashed-line ceiling: the
///   ceilings in Fig. 4 come from fixed-point vs double references, which
///   never match exactly),
/// * if `experimental` is shorter it is zero-padded, if longer it is
///   truncated — a missing output element counts as fully wrong, which is
///   the honest reading for the delineation app whose output length varies
///   under faults,
/// * an all-zero reference with any error → `-INFINITY`.
///
/// # Panics
///
/// Panics if `reference` is empty.
///
/// ```
/// let reference = vec![100.0, -100.0, 50.0];
/// assert!(dream_dsp::snr_db(&reference, &reference).is_infinite());
/// let noisy = vec![101.0, -100.0, 50.0];
/// let snr = dream_dsp::snr_db(&reference, &noisy);
/// assert!((snr - 43.52).abs() < 0.1);
/// ```
pub fn snr_db(reference: &[f64], experimental: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference output must be non-empty");
    let n = reference.len();
    let signal_power: f64 = reference.iter().map(|x| x * x).sum::<f64>() / n as f64;
    let mse: f64 = reference
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let e = experimental.get(i).copied().unwrap_or(0.0);
            (x - e) * (x - e)
        })
        .sum::<f64>()
        / n as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    if signal_power == 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * (signal_power / mse).log10()
}

/// Converts 16-bit samples to `f64` for SNR computation.
pub fn samples_to_f64(samples: &[i16]) -> Vec<f64> {
    samples.iter().map(|&s| f64::from(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // rms(ref) = sqrt((4+4)/2) = 2; mse = ((2-1)^2 + 0)/2 = 0.5.
        let r = vec![2.0, -2.0];
        let e = vec![1.0, -2.0];
        let expect = 20.0 * (2.0 / 0.5f64.sqrt()).log10();
        assert!((snr_db(&r, &e) - expect).abs() < 1e-12);
    }

    #[test]
    fn perfect_match_is_infinite() {
        assert!(snr_db(&[1.0, 2.0], &[1.0, 2.0]).is_infinite());
    }

    #[test]
    fn shorter_experimental_is_padded() {
        let r = vec![1.0, 1.0, 1.0, 1.0];
        let e = vec![1.0, 1.0];
        // Two missing elements = errors of 1.0 each: mse = 0.5.
        let expect = 10.0 * (1.0f64 / 0.5).log10();
        assert!((snr_db(&r, &e) - expect).abs() < 1e-12);
    }

    #[test]
    fn longer_experimental_is_truncated() {
        let r = vec![1.0, 1.0];
        let e = vec![1.0, 1.0, 99.0];
        assert!(snr_db(&r, &e).is_infinite());
    }

    #[test]
    fn snr_decreases_with_error_power() {
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let small: Vec<f64> = r.iter().map(|x| x + 0.1).collect();
        let big: Vec<f64> = r.iter().map(|x| x + 10.0).collect();
        assert!(snr_db(&r, &small) > snr_db(&r, &big));
    }

    #[test]
    fn msb_error_hurts_more_than_lsb() {
        // The §III premise in miniature: one high-bit flip vs one low-bit
        // flip in a 16-bit sample vector.
        let r: Vec<f64> = (0..64).map(|i| f64::from(i * 100)).collect();
        let mut msb = r.clone();
        msb[10] += f64::from(1i32 << 14);
        let mut lsb = r.clone();
        lsb[10] += 1.0;
        assert!(snr_db(&r, &lsb) - snr_db(&r, &msb) > 60.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_rejected() {
        let _ = snr_db(&[], &[]);
    }
}
