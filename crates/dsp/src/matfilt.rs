//! Matrix filtering (paper §II-2).

use dream_fixed::{dot_q15, Rounding};

use crate::app::{AppKind, BiomedicalApp};
use crate::WordStorage;

/// Iterated matrix-multiplication filtering: `[A] × [B] = [C]`, repeated
/// until the quality target is met (a fixed iteration count here).
///
/// `A` is a dense high-pass transformation matrix `I − G` (identity minus
/// a row-normalized Gaussian — the paper names low-/high-pass filtering as
/// the example transformations); `B` packs the signal into `dim`-sample
/// windows, one per column. After each iteration `C` becomes the next `B`.
///
/// This is the application whose SNR curve sits visibly *below* the others
/// in Fig. 2: every output element depends on a full row of `A` and a full
/// column of `B`, so a single stuck bit fans out across the result —
/// exactly the error-propagation argument of §III. The matrix `A` lives in
/// the same faulty memory as the signal, so coefficient corruption
/// propagates to entire output rows.
///
/// ```
/// use dream_dsp::{BiomedicalApp, MatrixFilter, VecStorage};
/// let app = MatrixFilter::new(16, 4, 2);
/// let input: Vec<i16> = (0..64).map(|i| (i * 31 % 997) as i16).collect();
/// let mut mem = VecStorage::new(app.memory_words());
/// let out = app.run(&input, &mut mem);
/// assert_eq!(out.len(), 64);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixFilter {
    dim: usize,
    windows: usize,
    iterations: u32,
    /// The quantized `I − G` matrix, row-major. Fixed by `dim`, so it is
    /// computed once at construction: the Gaussian row normalization is
    /// O(dim³) in `exp` calls, which used to dominate every `run`.
    coeffs: Vec<i16>,
}

/// Width parameter of the Gaussian transformation matrix (samples). Wide
/// on purpose: the paper's point about this application is that `A` is a
/// *dense* transformation — "each element of the resulting matrix depends
/// on many elements (one full row and one full column) of the input
/// matrices" — which is what drags its Fig. 2 curve below the other apps.
const KERNEL_SIGMA: f64 = 6.0;

impl MatrixFilter {
    /// Creates a filter over `windows` windows of `dim` samples, applying
    /// the matrix `iterations` times.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `dim < 5` (the kernel span).
    pub fn new(dim: usize, windows: usize, iterations: u32) -> Self {
        assert!(dim >= 5, "matrix dimension must cover the kernel");
        assert!(windows > 0, "need at least one window");
        assert!(iterations > 0, "need at least one iteration");
        let coeffs = (0..dim * dim)
            .map(|i| compute_coefficient_q15(dim, i / dim, i % dim))
            .collect();
        MatrixFilter {
            dim,
            windows,
            iterations,
            coeffs,
        }
    }

    /// The filter-matrix coefficient `A[r][c]` in Q15: identity minus a
    /// row-normalized Gaussian — a dense high-pass transformation whose
    /// off-diagonal terms couple every output to (almost) the full input
    /// column, exactly the dependency structure the paper blames for this
    /// application's low Fig. 2 curve.
    fn coefficient_q15(&self, r: usize, c: usize) -> i16 {
        self.coeffs[r * self.dim + c]
    }

    // Memory layout: A, then B, then C.
    fn a_base(&self) -> usize {
        0
    }
    fn b_base(&self) -> usize {
        self.dim * self.dim
    }
    fn c_base(&self) -> usize {
        self.b_base() + self.dim * self.windows
    }
}

/// Unnormalized Gaussian weight between row `r` and column `c`.
fn gaussian_weight(r: usize, c: usize) -> f64 {
    let d = r as f64 - c as f64;
    (-d * d / (2.0 * KERNEL_SIGMA * KERNEL_SIGMA)).exp()
}

/// Quantizes one `I − G` coefficient (construction-time helper behind
/// [`MatrixFilter::coefficient_q15`]).
fn compute_coefficient_q15(dim: usize, r: usize, c: usize) -> i16 {
    let w = gaussian_weight(r, c);
    let row_sum: f64 = (0..dim).map(|k| gaussian_weight(r, k)).sum();
    let smooth = w / row_sum;
    let value = if r == c { 1.0 - smooth } else { -smooth };
    (value * 32768.0)
        .round()
        .clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
}

impl BiomedicalApp for MatrixFilter {
    fn name(&self) -> &'static str {
        "Matrix Filtering"
    }

    fn kind(&self) -> AppKind {
        AppKind::MatrixFilter
    }

    fn input_len(&self) -> usize {
        self.dim * self.windows
    }

    fn output_len(&self) -> usize {
        self.dim * self.windows
    }

    fn memory_words(&self) -> usize {
        self.dim * self.dim + 2 * self.dim * self.windows
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        let (dim, cols) = (self.dim, self.windows);
        // Store A (row-major, one block write per row) and B (column per
        // window) through the memory.
        let mut arow = vec![0i16; dim];
        for r in 0..dim {
            for (c, slot) in arow.iter_mut().enumerate() {
                *slot = self.coefficient_q15(r, c);
            }
            mem.write_block(self.a_base() + r * dim, &arow);
        }
        mem.store_slice(self.b_base(), input);
        let (mut src, mut dst) = (self.b_base(), self.c_base());
        let mut bcol = vec![0i16; dim];
        let mut cres = vec![0i16; dim];
        for _ in 0..self.iterations {
            for col in 0..cols {
                for (r, res) in cres.iter_mut().enumerate() {
                    // Full GEMM row traversal, exactly as the kernel runs
                    // on the node: every coefficient of row r — including
                    // the stored zeros — is re-read from the faulty memory
                    // (streamed in as blocks, same cells and access counts
                    // as word-at-a-time reads). This is why the paper's
                    // Fig. 2 puts this application below the others: a
                    // stuck bit in a "zero" of A turns into a phantom
                    // coefficient that couples the output to a whole
                    // column of B.
                    mem.read_block(self.a_base() + r * dim, &mut arow);
                    mem.read_block(src + col * dim, &mut bcol);
                    // `dot_q15` is bit-identical to the sequential
                    // `Acc32::mac` fold (rows of I − G have gain < 2.0, so
                    // it vectorizes; corrupted rows that could saturate
                    // fall back to the exact fold).
                    *res = dot_q15(&arow, &bcol).to_q15(Rounding::Nearest).raw();
                }
                mem.write_block(dst + col * dim, &cres);
            }
            std::mem::swap(&mut src, &mut dst);
        }
        // After the final swap, `src` holds the freshest result.
        mem.load_slice(src, self.output_len())
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        let (dim, cols) = (self.dim, self.windows);
        // Use the *quantized* coefficients so the reference isolates
        // arithmetic rounding, not coefficient quantization.
        let a: Vec<f64> = (0..dim * dim)
            .map(|i| f64::from(self.coefficient_q15(i / dim, i % dim)) / 32768.0)
            .collect();
        let mut b: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
        for _ in 0..self.iterations {
            let mut c = vec![0.0; dim * cols];
            for col in 0..cols {
                for r in 0..dim {
                    let mut sum = 0.0;
                    for k in 0..dim {
                        sum += a[r * dim + k] * b[col * dim + k];
                    }
                    c[col * dim + r] = sum;
                }
            }
            b = c;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples_to_f64, snr_db, VecStorage};

    #[test]
    fn constant_input_is_rejected() {
        // Rows of I - G sum to ~0: the high-pass transformation suppresses
        // the DC component (baseline) almost completely.
        let app = MatrixFilter::new(16, 2, 1);
        let input = vec![8000i16; 32];
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        for &v in &out[4..12] {
            assert!(i32::from(v).abs() <= 24, "{v}");
        }
    }

    #[test]
    fn high_frequency_content_passes() {
        let app = MatrixFilter::new(32, 2, 1);
        let input: Vec<i16> = (0..64)
            .map(|i| if i % 2 == 0 { 2000 } else { -2000 })
            .collect();
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let in_energy: i64 = input.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let out_energy: i64 = out.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        // An alternating signal is (almost) an eigenvector of I - G with
        // eigenvalue ~1: energy is preserved within a factor of two.
        assert!(out_energy * 2 > in_energy, "{out_energy} vs {in_energy}");
    }

    #[test]
    fn fixed_point_tracks_float_reference() {
        let app = MatrixFilter::new(32, 8, 2);
        let input: Vec<i16> = (0..256).map(|i| ((i * 211) % 8000 - 4000) as i16).collect();
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let snr = snr_db(&app.run_reference(&input), &samples_to_f64(&out));
        assert!(snr > 45.0, "SNR {snr}");
    }

    #[test]
    fn iteration_parity_returns_latest_buffer() {
        // One iteration and two iterations must both return the product of
        // the *last* multiply, wherever the double buffer left it.
        let input: Vec<i16> = (0..32).map(|i| (i * 100) as i16).collect();
        for iters in [1, 2, 3] {
            let app = MatrixFilter::new(16, 2, iters);
            let mut mem = VecStorage::new(app.memory_words());
            let out = app.run(&input, &mut mem);
            let reference = app.run_reference(&input);
            let snr = snr_db(&reference, &samples_to_f64(&out));
            assert!(snr > 40.0, "iters {iters}: snr {snr}");
        }
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn tiny_matrix_rejected() {
        let _ = MatrixFilter::new(4, 1, 1);
    }
}
