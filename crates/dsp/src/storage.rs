//! The word-storage abstraction the applications compute through.

/// A word-addressable 16-bit data memory.
///
/// The applications allocate *all* their buffers — input, intermediate and
/// output — inside one `WordStorage` and perform every load and store
/// through it. Implementations decide what a "memory" is:
///
/// * [`VecStorage`] — plain process memory: fault-free, used for golden
///   runs and tests,
/// * `dream-core`'s protected memory and `dream-soc`'s memory ports wrap a
///   faulty, EMT-protected array, which is how the paper's fault-injection
///   campaigns corrupt exactly the data that would live in the device's
///   voltage-scaled SRAM while register-resident intermediates stay clean.
///
/// Reads take `&mut self` because reading a protected memory updates its
/// access statistics (and, on real degraded silicon, is where faults bite).
pub trait WordStorage {
    /// Number of addressable words.
    fn len(&self) -> usize;

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= len()`.
    fn read(&mut self, addr: usize) -> i16;

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= len()`.
    fn write(&mut self, addr: usize, value: i16);

    /// True when the storage has no words.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes `data.len()` consecutive words starting at `base` — the
    /// block-transfer path DSP windows stream through.
    ///
    /// Semantically identical to per-word [`WordStorage::write`] calls
    /// (same words touched, same order, same statistics on instrumented
    /// storages), but implementations override it to pay dispatch and
    /// bounds/scrambler derivation once per block instead of once per
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn write_block(&mut self, base: usize, data: &[i16]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base + i, v);
        }
    }

    /// Reads `out.len()` consecutive words starting at `base` into `out`
    /// (the read counterpart of [`WordStorage::write_block`]).
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn read_block(&mut self, base: usize, out: &mut [i16]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read(base + i);
        }
    }

    /// Bulk-stores `data` starting at `base` (alias of
    /// [`WordStorage::write_block`], kept for callers reading better as
    /// slice operations).
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn store_slice(&mut self, base: usize, data: &[i16]) {
        self.write_block(base, data);
    }

    /// Bulk-loads `len` words starting at `base` via
    /// [`WordStorage::read_block`].
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn load_slice(&mut self, base: usize, len: usize) -> Vec<i16> {
        let mut out = vec![0i16; len];
        self.read_block(base, &mut out);
        out
    }
}

/// Fault-free storage backed by a `Vec<i16>` — the golden-run memory.
///
/// ```
/// use dream_dsp::{VecStorage, WordStorage};
/// let mut mem = VecStorage::new(8);
/// mem.write(3, -7);
/// assert_eq!(mem.read(3), -7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecStorage {
    words: Vec<i16>,
}

impl VecStorage {
    /// Creates a zero-initialized storage of `words` words.
    pub fn new(words: usize) -> Self {
        VecStorage {
            words: vec![0; words],
        }
    }

    /// Creates a storage holding `data`.
    pub fn from_words(data: Vec<i16>) -> Self {
        VecStorage { words: data }
    }

    /// Borrows the underlying words.
    pub fn as_slice(&self) -> &[i16] {
        &self.words
    }

    /// Consumes the storage, returning the words.
    pub fn into_words(self) -> Vec<i16> {
        self.words
    }
}

impl WordStorage for VecStorage {
    fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.words[addr]
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.words[addr] = value;
    }

    fn write_block(&mut self, base: usize, data: &[i16]) {
        self.words[base..base + data.len()].copy_from_slice(data);
    }

    fn read_block(&mut self, base: usize, out: &mut [i16]) {
        out.copy_from_slice(&self.words[base..base + out.len()]);
    }
}

impl WordStorage for &mut dyn WordStorage {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn read(&mut self, addr: usize) -> i16 {
        (**self).read(addr)
    }

    fn write(&mut self, addr: usize, value: i16) {
        (**self).write(addr, value)
    }

    fn write_block(&mut self, base: usize, data: &[i16]) {
        (**self).write_block(base, data)
    }

    fn read_block(&mut self, base: usize, out: &mut [i16]) {
        (**self).read_block(base, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut s = VecStorage::new(4);
        s.write(0, 1);
        s.write(3, -1);
        assert_eq!(s.read(0), 1);
        assert_eq!(s.read(3), -1);
        assert_eq!(s.read(1), 0);
    }

    #[test]
    fn bulk_helpers() {
        let mut s = VecStorage::new(10);
        s.store_slice(2, &[5, 6, 7]);
        assert_eq!(s.load_slice(1, 5), vec![0, 5, 6, 7, 0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let mut s = VecStorage::new(2);
        let _ = s.read(2);
    }

    #[test]
    fn dyn_adapter_works() {
        let mut s = VecStorage::new(4);
        let d: &mut dyn WordStorage = &mut s;
        d.write(1, 9);
        assert_eq!(d.read(1), 9);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn block_transfers_round_trip() {
        let mut s = VecStorage::new(8);
        s.write_block(2, &[4, 5, 6]);
        let mut out = vec![0i16; 5];
        s.read_block(1, &mut out);
        assert_eq!(out, vec![0, 4, 5, 6, 0]);
        // Through the dyn adapter as well (the path the apps take).
        let d: &mut dyn WordStorage = &mut s;
        d.write_block(0, &[-1, -2]);
        let mut out2 = vec![0i16; 2];
        d.read_block(0, &mut out2);
        assert_eq!(out2, vec![-1, -2]);
    }

    #[test]
    #[should_panic]
    fn overrunning_block_panics() {
        let mut s = VecStorage::new(4);
        s.write_block(3, &[1, 2]);
    }
}
