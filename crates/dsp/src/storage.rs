//! The word-storage abstraction the applications compute through.

/// A word-addressable 16-bit data memory.
///
/// The applications allocate *all* their buffers — input, intermediate and
/// output — inside one `WordStorage` and perform every load and store
/// through it. Implementations decide what a "memory" is:
///
/// * [`VecStorage`] — plain process memory: fault-free, used for golden
///   runs and tests,
/// * `dream-core`'s protected memory and `dream-soc`'s memory ports wrap a
///   faulty, EMT-protected array, which is how the paper's fault-injection
///   campaigns corrupt exactly the data that would live in the device's
///   voltage-scaled SRAM while register-resident intermediates stay clean.
///
/// Reads take `&mut self` because reading a protected memory updates its
/// access statistics (and, on real degraded silicon, is where faults bite).
pub trait WordStorage {
    /// Number of addressable words.
    fn len(&self) -> usize;

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= len()`.
    fn read(&mut self, addr: usize) -> i16;

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= len()`.
    fn write(&mut self, addr: usize, value: i16);

    /// True when the storage has no words.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bulk-stores `data` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn store_slice(&mut self, base: usize, data: &[i16]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base + i, v);
        }
    }

    /// Bulk-loads `len` words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the storage.
    fn load_slice(&mut self, base: usize, len: usize) -> Vec<i16> {
        (0..len).map(|i| self.read(base + i)).collect()
    }
}

/// Fault-free storage backed by a `Vec<i16>` — the golden-run memory.
///
/// ```
/// use dream_dsp::{VecStorage, WordStorage};
/// let mut mem = VecStorage::new(8);
/// mem.write(3, -7);
/// assert_eq!(mem.read(3), -7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecStorage {
    words: Vec<i16>,
}

impl VecStorage {
    /// Creates a zero-initialized storage of `words` words.
    pub fn new(words: usize) -> Self {
        VecStorage {
            words: vec![0; words],
        }
    }

    /// Creates a storage holding `data`.
    pub fn from_words(data: Vec<i16>) -> Self {
        VecStorage { words: data }
    }

    /// Borrows the underlying words.
    pub fn as_slice(&self) -> &[i16] {
        &self.words
    }

    /// Consumes the storage, returning the words.
    pub fn into_words(self) -> Vec<i16> {
        self.words
    }
}

impl WordStorage for VecStorage {
    fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn read(&mut self, addr: usize) -> i16 {
        self.words[addr]
    }

    #[inline]
    fn write(&mut self, addr: usize, value: i16) {
        self.words[addr] = value;
    }
}

impl WordStorage for &mut dyn WordStorage {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn read(&mut self, addr: usize) -> i16 {
        (**self).read(addr)
    }

    fn write(&mut self, addr: usize, value: i16) {
        (**self).write(addr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut s = VecStorage::new(4);
        s.write(0, 1);
        s.write(3, -1);
        assert_eq!(s.read(0), 1);
        assert_eq!(s.read(3), -1);
        assert_eq!(s.read(1), 0);
    }

    #[test]
    fn bulk_helpers() {
        let mut s = VecStorage::new(10);
        s.store_slice(2, &[5, 6, 7]);
        assert_eq!(s.load_slice(1, 5), vec![0, 5, 6, 7, 0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let mut s = VecStorage::new(2);
        let _ = s.read(2);
    }

    #[test]
    fn dyn_adapter_works() {
        let mut s = VecStorage::new(4);
        let d: &mut dyn WordStorage = &mut s;
        d.write(1, 9);
        assert_eq!(d.read(1), 9);
        assert_eq!(d.len(), 4);
    }
}
