//! Heartbeat classification (the paper's §III example of a *qualitative*
//! output, after Braojos et al. [9]).

use crate::app::{AppKind, BiomedicalApp};
use crate::delineate::WaveletDelineation;
use crate::WordStorage;

/// Beat classes emitted by the classifier.
///
/// The discriminants are the values written to the output buffer — the
/// classifier's output is a sequence of `(class, r_position)` pairs, which
/// is what makes this the paper's example of an application whose result
/// is "statistical or qualitative" yet still measurable with Formula 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i16)]
pub enum BeatClass {
    /// Sinus beat with normal conduction.
    Normal = 1,
    /// Ventricular ectopic (wide QRS, no organized P wave, premature).
    Ventricular = 2,
    /// Supraventricular / unclassifiable morphology.
    Other = 3,
}

impl BeatClass {
    fn from_code(code: i16) -> Option<BeatClass> {
        match code {
            1 => Some(BeatClass::Normal),
            2 => Some(BeatClass::Ventricular),
            3 => Some(BeatClass::Other),
            _ => None,
        }
    }
}

/// Rule-based heartbeat classifier on top of [`WaveletDelineation`].
///
/// Mirrors the embedded classifier of the paper's reference [9]: delineate
/// each beat, extract morphology features — QRS width, RR interval ratio,
/// P-wave presence — and sort the beat into [`BeatClass`] buckets:
///
/// * QRS wider than 120 ms → **ventricular**,
/// * premature beat (RR < 80 % of the running mean) without a P wave →
///   **ventricular**,
/// * missing P wave with normal QRS → **other** (supraventricular),
/// * everything else → **normal**.
///
/// The paper's point about such applications (§III) is that their
/// classification margins are coarse — doctors fine-tune them visually —
/// so the *data path* can tolerate LSB inexactness; this app makes that
/// argument measurable: LSB faults rarely flip a class, MSB faults
/// hallucinate or drop beats.
///
/// ```
/// use dream_dsp::{BiomedicalApp, HeartbeatClassifier, VecStorage};
/// use dream_ecg::Database;
/// let record = Database::record(106, 2048); // contains ectopic beats
/// let app = HeartbeatClassifier::new(2048, record.fs);
/// let mut mem = VecStorage::new(app.memory_words());
/// let out = app.run(&record.samples, &mut mem);
/// let beats = out.chunks(2).filter(|c| c[1] != 0).count();
/// assert!(beats >= 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeartbeatClassifier {
    delineator: WaveletDelineation,
    fs: f64,
}

impl HeartbeatClassifier {
    /// Creates a classifier for `n`-sample windows at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`WaveletDelineation::new`].
    pub fn new(n: usize, fs: f64) -> Self {
        HeartbeatClassifier {
            delineator: WaveletDelineation::new(n, fs),
            fs,
        }
    }

    /// Decodes an output buffer into `(class, r_position)` pairs.
    pub fn decode_output(out: &[i16]) -> Vec<(BeatClass, usize)> {
        out.chunks(2)
            .filter(|c| c.len() == 2 && c[1] != 0)
            .filter_map(|c| BeatClass::from_code(c[0]).map(|k| (k, c[1] as usize)))
            .collect()
    }

    /// Classifies delineated fiducials (`[P,Q,R,S,T]` per beat) into
    /// `(class, r)` pairs, reading waveform amplitudes through `amp` (the
    /// delineator's smoothed signal). Shared verbatim between the
    /// fixed-point path and the float reference so only data corruption
    /// can diverge them.
    fn classify(
        &self,
        fiducials: &[i16],
        mut amp: impl FnMut(usize) -> f64,
        max_beats: usize,
    ) -> Vec<i16> {
        let ms = |t: f64| (t * self.fs) as i32;
        let samples = |t: f64| ((t * self.fs) as usize).max(1);
        let n = self.delineator.input_len();
        let mut out = vec![0i16; 2 * max_beats];
        let beats: Vec<&[i16]> = fiducials
            .chunks(5)
            .filter(|c| c.len() == 5 && c[2] != 0)
            .collect();
        let mut mean_rr: f64 = 0.0;
        let mut rr_count = 0u32;
        for (i, beat) in beats.iter().enumerate() {
            let (p, q, r, s) = (beat[0], beat[1], beat[2], beat[3]);
            let qrs_width = i32::from(s) - i32::from(q);
            // A P wave is "present" when the putative P sample rises with
            // real prominence above its local neighbourhood, scaled by the
            // beat's own QRS height (gain-independent).
            let has_p = {
                let pi = (p as usize).min(n - 1);
                let left = pi.saturating_sub(samples(0.06));
                let right = (pi + samples(0.06)).min(n - 1);
                let prominence = amp(pi) - 0.5 * (amp(left) + amp(right));
                let qrs_height =
                    (amp((r as usize).min(n - 1)) - amp((q as usize).min(n - 1))).abs();
                prominence > 0.04 * qrs_height && qrs_height > 0.0
            };
            let rr = if i > 0 {
                f64::from(r) - f64::from(beats[i - 1][2])
            } else {
                f64::NAN
            };
            let premature = rr_count > 0 && rr < 0.8 * mean_rr;
            let class = if qrs_width > ms(0.12) || (premature && !has_p) {
                BeatClass::Ventricular
            } else if !has_p {
                BeatClass::Other
            } else {
                BeatClass::Normal
            };
            if rr.is_finite() {
                // Running mean over sinus history only, so one ectopic
                // does not drag the prematurity baseline.
                if class == BeatClass::Normal || rr_count == 0 {
                    mean_rr = (mean_rr * f64::from(rr_count) + rr) / f64::from(rr_count + 1);
                    rr_count += 1;
                }
            }
            if i < max_beats {
                out[2 * i] = class as i16;
                out[2 * i + 1] = r;
            }
        }
        out
    }
}

impl BiomedicalApp for HeartbeatClassifier {
    fn name(&self) -> &'static str {
        "Heartbeat Classifier"
    }

    fn kind(&self) -> AppKind {
        AppKind::HeartbeatClassifier
    }

    fn input_len(&self) -> usize {
        self.delineator.input_len()
    }

    fn output_len(&self) -> usize {
        2 * self.delineator.max_beats()
    }

    fn memory_words(&self) -> usize {
        // Delineation buffers + the classification output region.
        self.delineator.memory_words() + self.output_len()
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        // Stage 1: delineation, writing its own buffers through `mem`.
        let fiducials = self.delineator.run(input, mem);
        // Stage 2: classification over the (possibly corrupted) fiducials,
        // reading P/QRS amplitudes back from the delineator's smoothed
        // buffer — through the faulty memory, like everything else.
        let n = self.delineator.input_len();
        let lp2_base = self.delineator.lp2_base();
        let mut lp2 = Vec::with_capacity(n);
        for i in 0..n {
            lp2.push(f64::from(mem.read(lp2_base + i)));
        }
        let classes = self.classify(&fiducials, |i| lp2[i], self.delineator.max_beats());
        let base = self.delineator.memory_words();
        mem.store_slice(base, &classes);
        mem.load_slice(base, self.output_len())
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        let fiducials: Vec<i16> = self
            .delineator
            .run_reference(input)
            .into_iter()
            .map(|v| v as i16)
            .collect();
        let lp2 = self.delineator.lp2_reference(input);
        self.classify(&fiducials, |i| lp2[i], self.delineator.max_beats())
            .into_iter()
            .map(f64::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecStorage;
    use dream_ecg::{Database, Pathology};

    fn run_on(record_id: u16, n: usize) -> Vec<(BeatClass, usize)> {
        let record = Database::record(record_id, n);
        let app = HeartbeatClassifier::new(n, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        HeartbeatClassifier::decode_output(&out)
    }

    #[test]
    fn sinus_rhythm_classifies_normal() {
        let beats = run_on(100, 2048); // normal sinus
        assert!(beats.len() >= 3, "{beats:?}");
        let normal = beats
            .iter()
            .filter(|(k, _)| *k == BeatClass::Normal)
            .count();
        assert!(
            normal * 2 > beats.len(),
            "sinus record should be mostly normal: {beats:?}"
        );
    }

    #[test]
    fn af_record_flags_missing_p_waves() {
        // Atrial fibrillation: no P waves -> beats leave the Normal class.
        let suite = Database::date16_suite(2048);
        let af = suite
            .iter()
            .find(|r| r.pathology == Pathology::AtrialFibrillation)
            .unwrap();
        let app = HeartbeatClassifier::new(2048, af.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let beats = HeartbeatClassifier::decode_output(&app.run(&af.samples, &mut mem));
        assert!(!beats.is_empty());
        let abnormal = beats
            .iter()
            .filter(|(k, _)| *k != BeatClass::Normal)
            .count();
        assert!(
            abnormal * 2 >= beats.len(),
            "AF beats should not classify as conducted-normal: {beats:?}"
        );
    }

    #[test]
    fn reference_and_fixed_point_agree_on_clean_memory() {
        let record = Database::record(103, 2048);
        let app = HeartbeatClassifier::new(2048, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        let reference = app.run_reference(&record.samples);
        for (i, (&got, &want)) in out.iter().zip(&reference).enumerate() {
            assert!(
                (f64::from(got) - want).abs() <= 3.0,
                "output {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn output_pairs_are_well_formed() {
        let record = Database::record(101, 2048);
        let app = HeartbeatClassifier::new(2048, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        assert_eq!(out.len(), app.output_len());
        for c in out.chunks(2) {
            if c[1] != 0 {
                assert!(BeatClass::from_code(c[0]).is_some(), "bad class {}", c[0]);
            }
        }
    }

    #[test]
    fn decode_skips_empty_slots() {
        let buf = [1i16, 100, 0, 0, 2, 500, 0, 0];
        let beats = HeartbeatClassifier::decode_output(&buf);
        assert_eq!(
            beats,
            vec![(BeatClass::Normal, 100), (BeatClass::Ventricular, 500)]
        );
    }
}
