//! Compressed sensing (paper §II-3).

use dream_fixed::Rounding;

use crate::app::{AppKind, BiomedicalApp};
use crate::WordStorage;

/// 50 % lossy compression of an ECG window with a sparse binary sensing
/// matrix, after the power-efficient WBSN scheme of Mamaghanian et al.
/// ([10]/[11] in the paper).
///
/// The measurement vector is `y = Φ·x` with a sparse **binary** matrix
/// `Φ ∈ {0, 1}^{M×N}` (`M = N/2`, a fixed number of ones per column — the
/// construction of [11], chosen there because it needs no multipliers).
/// Binary entries also mean the measurements inherit the input's sign
/// statistics: mostly-negative samples give mostly-negative measurements,
/// which is what lets CS hide MSB stuck-at-1 faults in Fig. 2. `Φ` is never
/// stored: WBSN implementations regenerate it on the fly from a PRNG seed
/// (that is the whole point of the sparse-binary construction), so only
/// the input window and the measurement vector occupy data memory. The
/// accumulated sums are scaled back by a power-of-two shift sized so the
/// measurements cannot saturate.
///
/// The paper notes CS output can tolerate substantial degradation: 35 dB
/// reconstruction SNR suffices for multi-lead ECG (§III), which is why CS
/// tolerates stuck-at faults up to bit ~10–12 in Fig. 2.
///
/// ```
/// use dream_dsp::{BiomedicalApp, CompressedSensing, VecStorage};
/// let app = CompressedSensing::new(128, 4, 99);
/// let input: Vec<i16> = (0..128).map(|i| (i * 17 % 401 - 200) as i16).collect();
/// let mut mem = VecStorage::new(app.memory_words());
/// let y = app.run(&input, &mut mem);
/// assert_eq!(y.len(), 64); // half the input size
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressedSensing {
    n: usize,
    nonzeros_per_column: u32,
    seed: u64,
}

impl CompressedSensing {
    /// Creates a compressor for `n`-sample windows (`n` even) with
    /// `nonzeros_per_column` entries per column of `Φ`, regenerated from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd, or `nonzeros_per_column` is zero.
    pub fn new(n: usize, nonzeros_per_column: u32, seed: u64) -> Self {
        assert!(n > 0 && n % 2 == 0, "window must be even-sized");
        assert!(nonzeros_per_column > 0, "matrix must have entries");
        CompressedSensing {
            n,
            nonzeros_per_column,
            seed,
        }
    }

    /// Number of measurements (`N/2`: the paper's 50 % compression).
    pub fn measurements(&self) -> usize {
        self.n / 2
    }

    /// Right-shift applied to each accumulated measurement. Sized from the
    /// worst-case row weight so the 16-bit store cannot saturate: with the
    /// average row weight `2·d`, a generous margin of `4·d` inputs at full
    /// scale still fits after shifting by `log2(4·d)`.
    fn scale_shift(&self) -> u32 {
        (4 * self.nonzeros_per_column)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// The row index of the `k`-th one in column `col`.
    ///
    /// A splitmix64 hash stands in for the on-node PRNG; everything is
    /// deterministic in the seed, which the campaigns rely on.
    fn entry_row(&self, col: usize, k: u32) -> usize {
        let h = splitmix64(
            self.seed ^ (col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k) << 48,
        );
        (h % self.measurements() as u64) as usize
    }

    fn input_base(&self) -> usize {
        0
    }
    fn output_base(&self) -> usize {
        self.n
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BiomedicalApp for CompressedSensing {
    fn name(&self) -> &'static str {
        "Compressed Sensing"
    }

    fn kind(&self) -> AppKind {
        AppKind::CompressedSensing
    }

    fn input_len(&self) -> usize {
        self.n
    }

    fn output_len(&self) -> usize {
        self.measurements()
    }

    fn memory_words(&self) -> usize {
        self.n + self.measurements()
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        mem.store_slice(self.input_base(), input);
        let m = self.measurements();
        let shift = self.scale_shift();
        // Row-major accumulation in registers: the node accumulates each
        // measurement in a MAC register, then stores it once. Only buffers
        // live in (faulty) data memory.
        let mut acc = vec![0i64; m];
        for col in 0..self.n {
            let x = i64::from(mem.read(self.input_base() + col));
            for k in 0..self.nonzeros_per_column {
                acc[self.entry_row(col, k)] += x;
            }
        }
        for (row, &a) in acc.iter().enumerate() {
            let v = Rounding::Nearest
                .shift_right(a, shift)
                .clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
            mem.write(self.output_base() + row, v);
        }
        mem.load_slice(self.output_base(), m)
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        let m = self.measurements();
        let scale = f64::from(1u32 << self.scale_shift());
        let mut acc = vec![0.0f64; m];
        for (col, &x) in input.iter().enumerate() {
            for k in 0..self.nonzeros_per_column {
                acc[self.entry_row(col, k)] += f64::from(x);
            }
        }
        acc.iter().map(|a| a / scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples_to_f64, snr_db, VecStorage};

    #[test]
    fn output_is_half_the_input() {
        let app = CompressedSensing::new(256, 4, 1);
        assert_eq!(app.output_len(), 128);
        assert_eq!(app.memory_words(), 384);
    }

    #[test]
    fn deterministic_in_seed() {
        let input: Vec<i16> = (0..128).map(|i| (i * 7) as i16).collect();
        let a = CompressedSensing::new(128, 4, 5);
        let b = CompressedSensing::new(128, 4, 5);
        let mut m1 = VecStorage::new(a.memory_words());
        let mut m2 = VecStorage::new(b.memory_words());
        assert_eq!(a.run(&input, &mut m1), b.run(&input, &mut m2));
        let c = CompressedSensing::new(128, 4, 6);
        let mut m3 = VecStorage::new(c.memory_words());
        assert_ne!(a.run(&input, &mut m1), c.run(&input, &mut m3));
    }

    #[test]
    fn zero_input_gives_zero_measurements() {
        let app = CompressedSensing::new(64, 4, 2);
        let mut mem = VecStorage::new(app.memory_words());
        assert!(app.run(&[0; 64], &mut mem).iter().all(|&v| v == 0));
    }

    #[test]
    fn fixed_point_tracks_float_reference() {
        let app = CompressedSensing::new(256, 4, 3);
        let input: Vec<i16> = (0..256)
            .map(|i| ((i * 157) % 12000 - 6000) as i16)
            .collect();
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&input, &mut mem);
        let snr = snr_db(&app.run_reference(&input), &samples_to_f64(&out));
        assert!(snr > 45.0, "SNR {snr}");
    }

    #[test]
    fn measurements_capture_signal_energy() {
        // A sparse binary projection hits every column d times: nonzero
        // input ⇒ nonzero output.
        let app = CompressedSensing::new(256, 4, 8);
        let input: Vec<i16> = (0..256)
            .map(|i| if i == 100 { 10_000 } else { 0 })
            .collect();
        let mut mem = VecStorage::new(app.memory_words());
        let y = app.run(&input, &mut mem);
        assert!(y.iter().any(|&v| v != 0));
    }

    #[test]
    fn no_saturation_at_full_scale() {
        let app = CompressedSensing::new(128, 4, 4);
        let input = vec![i16::MAX; 128];
        let mut mem = VecStorage::new(app.memory_words());
        let y = app.run(&input, &mut mem);
        // The shift is sized so even pathological inputs rarely rail; the
        // clamp exists but should not be the common case.
        let railed = y
            .iter()
            .filter(|&&v| v == i16::MAX || v == i16::MIN)
            .count();
        assert!(railed < y.len() / 4, "{railed} of {} railed", y.len());
    }
}
