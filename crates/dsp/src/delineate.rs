//! Wavelet delineation (paper §II-5).

use crate::app::{AppKind, BiomedicalApp};
use crate::dwt::{highpass_f64, highpass_fixed, lowpass_f64, lowpass_fixed};
use crate::WordStorage;

/// DWT-based heartbeat delineation: finds the P, Q, R, S and T fiducial
/// points of every beat, the front-end of embedded heartbeat classifiers
/// ([8], [9] in the paper).
///
/// Pipeline (the §II-1 DWT feeding the detector, as in the paper):
///
/// 1. scale-1 low-pass of the input (QRS-preserving smoothing),
/// 2. scale-2 detail `W₂` of that signal — QRS complexes appear as a
///    positive/negative modulus-maxima pair whose zero crossing marks R,
/// 3. scale-2 approximation (P/T-preserving smoothing),
/// 4. thresholded pair search on `W₂` with a physiological refractory
///    period → R; windowed extremum searches around each R → Q, S
///    (scale-1 signal) and P, T (scale-2 signal).
///
/// The output buffer packs `[P, Q, R, S, T]` sample positions per detected
/// beat. Under fault injection the detail buffer corrupts, beats are
/// missed or hallucinated, and the position vector diverges — which is how
/// this qualitative application still yields the quantitative SNR of
/// Formula 1.
///
/// ```
/// use dream_dsp::{BiomedicalApp, WaveletDelineation, VecStorage};
/// use dream_ecg::Database;
/// let record = Database::record(100, 1024);
/// let app = WaveletDelineation::new(1024, record.fs);
/// let mut mem = VecStorage::new(app.memory_words());
/// let out = app.run(&record.samples, &mut mem);
/// let beats = out.chunks(5).filter(|c| c[2] != 0).count();
/// assert!(beats >= 2, "should find beats in ~2.8 s of normal sinus");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaveletDelineation {
    n: usize,
    fs: f64,
    max_beats: usize,
}

impl WaveletDelineation {
    /// Creates a delineator for `n`-sample windows sampled at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than one second of signal.
    pub fn new(n: usize, fs: f64) -> Self {
        assert!(fs > 0.0, "sampling rate must be positive");
        assert!(n as f64 >= fs, "window must hold at least one second");
        // Physiological ceiling: one beat per 250 ms.
        let max_beats = (n as f64 / (0.25 * fs)).ceil() as usize;
        WaveletDelineation { n, fs, max_beats }
    }

    /// Maximum number of beats the output buffer can hold.
    pub fn max_beats(&self) -> usize {
        self.max_beats
    }

    fn input_base(&self) -> usize {
        0
    }
    fn lp1(&self) -> usize {
        self.n
    }
    fn w2(&self) -> usize {
        2 * self.n
    }
    fn lp2(&self) -> usize {
        3 * self.n
    }
    /// Base address of the scale-2 smoothed signal inside the app's memory
    /// layout — the classifier built on top reads P/QRS amplitudes there.
    pub(crate) fn lp2_base(&self) -> usize {
        self.lp2()
    }
    /// Float mirror of the scale-2 smoothed signal (for references).
    pub(crate) fn lp2_reference(&self, input: &[i16]) -> Vec<f64> {
        let x: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
        let lp1 = lowpass_f64(&x, 1);
        lowpass_f64(&lp1, 2)
    }
    fn output_base(&self) -> usize {
        4 * self.n
    }
}

/// The shared detection logic, parameterized over value accessors so the
/// fixed-point path (reading through the faulty memory) and the float
/// reference execute *identical* control flow.
fn detect_fiducials(
    n: usize,
    fs: f64,
    mut w2: impl FnMut(usize) -> f64,
    mut lp1: impl FnMut(usize) -> f64,
    mut lp2: impl FnMut(usize) -> f64,
    max_beats: usize,
) -> Vec<i16> {
    let ms = |t: f64| ((t * fs).round() as usize).max(1);
    let mut out = vec![0i16; 5 * max_beats];
    // Adaptive threshold from the mean modulus of the detail signal.
    let mean_abs = (0..n).map(&mut w2).map(f64::abs).sum::<f64>() / n as f64;
    let thr = 3.0 * mean_abs;
    if thr <= 0.0 {
        return out;
    }
    let pair_window = ms(0.10);
    let refractory = ms(0.25);
    let mut beat = 0usize;
    let mut i = 1usize;
    while i < n && beat < max_beats {
        if w2(i) > thr {
            // Positive modulus maximum: strongest detail in the next 60 ms.
            let lobe_end = (i + ms(0.06)).min(n - 1);
            let mut imax = i;
            let mut vmax = w2(i);
            for j in i..=lobe_end {
                let v = w2(j);
                if v > vmax {
                    vmax = v;
                    imax = j;
                }
            }
            // Matching negative maximum within the pair window.
            let search_end = (imax + pair_window).min(n - 1);
            let mut imin = None;
            let mut vmin = -thr;
            for j in imax..=search_end {
                let v = w2(j);
                if v < vmin {
                    vmin = v;
                    imin = Some(j);
                }
            }
            if let Some(imin) = imin {
                // R: maximum of the smoothed signal across the pair.
                let lo = imax.saturating_sub(ms(0.02));
                let hi = (imin + ms(0.02)).min(n - 1);
                let r = argext(lo, hi, &mut lp1, true);
                // Q/S: nearest minima of the scale-1 signal.
                let q = argext(r.saturating_sub(ms(0.08)), r, &mut lp1, false);
                let s = argext(r, (r + ms(0.08)).min(n - 1), &mut lp1, false);
                // P/T: extrema of the heavier-smoothed scale-2 signal.
                let p = argext(
                    r.saturating_sub(ms(0.26)),
                    r.saturating_sub(ms(0.09)),
                    &mut lp2,
                    true,
                );
                let t = argext(
                    (r + ms(0.10)).min(n - 1),
                    (r + ms(0.40)).min(n - 1),
                    &mut lp2,
                    true,
                );
                let slot = &mut out[beat * 5..beat * 5 + 5];
                slot[0] = p as i16;
                slot[1] = q as i16;
                slot[2] = r as i16;
                slot[3] = s as i16;
                slot[4] = t as i16;
                beat += 1;
                i = imin + refractory;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Index of the extremum of `f` over `[lo, hi]` (max if `take_max`).
fn argext(lo: usize, hi: usize, f: &mut impl FnMut(usize) -> f64, take_max: bool) -> usize {
    let (mut best_i, mut best_v) = (lo, f(lo));
    for j in lo..=hi {
        let v = f(j);
        if (take_max && v > best_v) || (!take_max && v < best_v) {
            best_v = v;
            best_i = j;
        }
    }
    best_i
}

impl BiomedicalApp for WaveletDelineation {
    fn name(&self) -> &'static str {
        "Wavelet Delineation"
    }

    fn kind(&self) -> AppKind {
        AppKind::WaveletDelineation
    }

    fn input_len(&self) -> usize {
        self.n
    }

    fn output_len(&self) -> usize {
        5 * self.max_beats
    }

    fn memory_words(&self) -> usize {
        4 * self.n + self.output_len()
    }

    fn run(&self, input: &[i16], mem: &mut dyn WordStorage) -> Vec<i16> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        assert!(mem.len() >= self.memory_words(), "memory too small");
        let n = self.n;
        mem.store_slice(self.input_base(), input);
        lowpass_fixed(mem, self.input_base(), self.lp1(), n, 1);
        highpass_fixed(mem, self.lp1(), self.w2(), n, 2);
        lowpass_fixed(mem, self.lp1(), self.lp2(), n, 2);
        // The detector re-reads the transformed buffers through the (possibly
        // faulty) memory on every access, as the device would — streamed in
        // as one block load per buffer (same words, same access counts).
        let fiducials = {
            let mut w2v = vec![0i16; n];
            let mut lp1v = vec![0i16; n];
            let mut lp2v = vec![0i16; n];
            mem.read_block(self.w2(), &mut w2v);
            mem.read_block(self.lp1(), &mut lp1v);
            mem.read_block(self.lp2(), &mut lp2v);
            detect_fiducials(
                n,
                self.fs,
                |i| f64::from(w2v[i]),
                |i| f64::from(lp1v[i]),
                |i| f64::from(lp2v[i]),
                self.max_beats,
            )
        };
        mem.store_slice(self.output_base(), &fiducials);
        mem.load_slice(self.output_base(), self.output_len())
    }

    fn run_reference(&self, input: &[i16]) -> Vec<f64> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        let x: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
        let lp1 = lowpass_f64(&x, 1);
        let w2 = highpass_f64(&lp1, 2);
        let lp2 = lowpass_f64(&lp1, 2);
        detect_fiducials(
            self.n,
            self.fs,
            |i| w2[i],
            |i| lp1[i],
            |i| lp2[i],
            self.max_beats,
        )
        .into_iter()
        .map(f64::from)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecStorage;
    use dream_ecg::{Database, Pathology};

    #[test]
    fn finds_physiological_beat_count() {
        // ~5.7 s of 70 bpm sinus: expect 5-8 beats.
        let record = Database::record(100, 2048);
        let app = WaveletDelineation::new(2048, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        let beats = out.chunks(5).filter(|c| c[2] != 0).count();
        assert!((4..=9).contains(&beats), "{beats} beats");
    }

    #[test]
    fn fiducials_are_ordered_within_a_beat() {
        let record = Database::record(100, 2048);
        let app = WaveletDelineation::new(2048, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        for c in out.chunks(5).filter(|c| c[2] != 0) {
            let (p, q, r, s, t) = (c[0], c[1], c[2], c[3], c[4]);
            assert!(p <= q, "P {p} after Q {q}");
            assert!(q <= r, "Q {q} not before R {r}");
            assert!(r <= s, "S {s} not after R {r}");
            assert!(s <= t, "T {t} before S {s}");
        }
    }

    #[test]
    fn r_positions_match_float_reference_on_clean_memory() {
        let record = Database::record(102, 1536);
        let app = WaveletDelineation::new(1536, record.fs);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&record.samples, &mut mem);
        let reference = app.run_reference(&record.samples);
        // Fixed-point DWT rounding may shift a fiducial by a sample or two;
        // positions must still be essentially identical.
        for (i, (&got, &want)) in out.iter().zip(&reference).enumerate() {
            assert!(
                (f64::from(got) - want).abs() <= 3.0,
                "fiducial {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn tachycardia_yields_more_beats_than_bradycardia() {
        let fast = Database::date16_suite(2048)
            .into_iter()
            .find(|r| r.pathology == Pathology::Tachycardia)
            .unwrap();
        let slow = Database::date16_suite(2048)
            .into_iter()
            .find(|r| r.pathology == Pathology::Bradycardia)
            .unwrap();
        let app = WaveletDelineation::new(2048, fast.fs);
        let mut m1 = VecStorage::new(app.memory_words());
        let mut m2 = VecStorage::new(app.memory_words());
        let nf = app
            .run(&fast.samples, &mut m1)
            .chunks(5)
            .filter(|c| c[2] != 0)
            .count();
        let ns = app
            .run(&slow.samples, &mut m2)
            .chunks(5)
            .filter(|c| c[2] != 0)
            .count();
        assert!(nf > ns, "tachy {nf} vs brady {ns}");
    }

    #[test]
    fn empty_signal_finds_no_beats() {
        let app = WaveletDelineation::new(512, 360.0);
        let mut mem = VecStorage::new(app.memory_words());
        let out = app.run(&vec![0; 512], &mut mem);
        assert!(out.iter().all(|&v| v == 0));
    }
}
