//! `dream-serve` — the campaign service over the scenario engine.
//!
//! One `dream serve` process turns the declarative campaign layer into a
//! long-lived service: specs arrive as JSON over a std-only HTTP/1.1
//! API, deduplicate against a content-addressed artifact store keyed on
//! `(spec_hash, seed)`, and stream their JSONL rows back as the worker
//! pool produces them. Because the engine is deterministic at any thread
//! count, a finished artifact replays byte-identically without executing
//! a single trial, and an interrupted one resumes exactly where its last
//! persisted row stopped.
//!
//! The service is hardened for hostile conditions: bounded request
//! reads with wall-clock deadlines (slow-loris safe), a bounded
//! admission queue that sheds with `429 + Retry-After`, a graceful
//! drain/shutdown path that cancels in-flight runs and leaves artifacts
//! resumable, and a crash-safe store (atomic fsynced `meta.json`,
//! SHA-256-checksummed rows, corrupt artifacts quarantined on preload).
//!
//! * [`hash`] — hand-rolled SHA-256 (the workspace vendors no crypto);
//! * [`http`] — the minimal request/response/chunked-transfer layer,
//!   with byte budgets and deadlines on every read;
//! * [`store`] — the on-disk artifact store, canonical spec hashing,
//!   checksum verification, and quarantine;
//! * [`server`] — the evented connection layer (handler pool + follower
//!   poller), worker pool, campaign registry, admission control,
//!   drain/shutdown, shard coordinator/worker modes, and route handlers;
//! * [`client`] — the retrying fetch client (backoff + jitter,
//!   `Retry-After` honoring, skip-rows resume of interrupted streams);
//! * [`chaos`] — a fault-injecting TCP proxy for the e2e chaos suite.
//!
//! A coordinator (`ServeConfig::shards > 1`) partitions each campaign
//! with `dream_sim::scenario::ShardPlan`, fans the shard specs out to
//! worker processes over this same HTTP layer (`POST /shards`), and
//! reassembles the per-shard sub-artifacts — each content-addressed and
//! individually cached — into the parent artifact byte-identically to a
//! serial run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod hash;
pub mod http;
pub mod server;
pub mod store;

pub use chaos::{ChaosProxy, Fault};
pub use client::{fetch_campaign, fetch_rows, FetchOutcome, RetryPolicy};
pub use server::{ServeConfig, Server};
pub use store::{campaign_id, canonical_spec_json, spec_hash, Integrity, Store};
