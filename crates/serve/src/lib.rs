//! `dream-serve` — the campaign service over the scenario engine.
//!
//! One `dream serve` process turns the declarative campaign layer into a
//! long-lived service: specs arrive as JSON over a std-only HTTP/1.1
//! API, deduplicate against a content-addressed artifact store keyed on
//! `(spec_hash, seed)`, and stream their JSONL rows back as the worker
//! pool produces them. Because the engine is deterministic at any thread
//! count, a finished artifact replays byte-identically without executing
//! a single trial, and an interrupted one resumes exactly where its last
//! persisted row stopped.
//!
//! * [`hash`] — hand-rolled SHA-256 (the workspace vendors no crypto);
//! * [`http`] — the minimal request/response/chunked-transfer layer;
//! * [`store`] — the on-disk artifact store and canonical spec hashing;
//! * [`server`] — the worker pool, campaign registry, and route handlers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod http;
pub mod server;
pub mod store;

pub use server::{ServeConfig, Server};
pub use store::{campaign_id, canonical_spec_json, spec_hash, Store};
