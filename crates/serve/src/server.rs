//! The campaign service: a thread-per-connection HTTP front end over a
//! worker pool and the content-addressed [`Store`].
//!
//! ```text
//! POST /campaigns[?sink=jsonl]  submit a spec; stream its JSONL rows
//! GET  /campaigns/{id}          status JSON
//! GET  /campaigns/{id}/rows     stream the row artifact
//! GET  /presets                 the scenario registry as JSON
//! GET  /stats                   service counters
//! GET  /healthz                 liveness: version, workers, queue depth
//! POST /admin/drain             stop admitting, cancel in-flight runs
//! POST /admin/shutdown          drain, then exit the accept loop
//! ```
//!
//! Submissions deduplicate on [`campaign_id`]: a spec whose artifact is
//! already complete replays from the store without executing a single
//! trial (`X-Dream-Cache: hit`); one currently running attaches to the
//! in-flight stream (`join`); anything else enqueues (`miss`). An
//! interrupted campaign — rows on disk but no completion marker — resumes
//! where it stopped: the engine is deterministic, so the worker re-runs
//! the spec with the already-persisted row prefix skipped and appends
//! only what is missing.
//!
//! Every response streams straight from the artifact file, so a cache
//! hit, a join, and a fresh run all produce byte-identical bodies.
//!
//! # Surviving hostile clients and full queues
//!
//! Connections carry socket read/write timeouts and a per-request
//! deadline ([`ServeConfig`]), so a slow-loris burns its own deadline
//! instead of a handler thread, and a stalled consumer is shed when its
//! TCP window stays shut past the write timeout. Malformed, oversized,
//! or too-slow requests get `400`/`408`/`413`/`431` JSON error bodies
//! with `Connection: close` — never a silent drop. Admission is bounded:
//! at most [`ServeConfig::queue_depth`] campaigns may wait for a worker,
//! beyond which submissions are shed with `429 Too Many Requests` and a
//! `Retry-After` the CLI's retry layer honors. `POST /admin/drain` stops
//! admissions (`503` + `Retry-After`), fires every in-flight campaign's
//! [`CancelToken`], and leaves the interrupted artifacts resumable on
//! disk; `POST /admin/shutdown` drains and then exits [`Server::run`].

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dream_sim::report::JsonlSink;
use dream_sim::scenario::{
    registry, CampaignRunner, CancelToken, EngineError, Scenario, SinkFormat, SinkSpec,
};

use crate::http::{write_response, ChunkedBody, ReadLimits, Request};
use crate::store::{campaign_id, spec_hash, Integrity, Store};

/// How long row-stream followers sleep between artifact polls when no
/// progress notification arrives.
const FOLLOW_POLL: Duration = Duration::from_millis(25);

/// How long a drain waits for workers to go idle before answering anyway.
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// Configuration of one [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7163`; port 0 picks a free port).
    pub addr: String,
    /// Root of the artifact store.
    pub store_dir: PathBuf,
    /// Campaign worker threads (concurrent campaigns).
    pub workers: usize,
    /// Engine threads per campaign.
    pub threads: usize,
    /// Campaigns allowed to wait for a worker before submissions are
    /// shed with `429`.
    pub queue_depth: usize,
    /// Socket read timeout — the longest a handler blocks waiting for
    /// the peer to send anything at all.
    pub read_timeout: Duration,
    /// Socket write timeout — the longest a handler blocks on a peer
    /// that stopped consuming.
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one whole request (the slow-loris
    /// guard; a trickling client is cut off at this point).
    pub request_deadline: Duration,
    /// Advisory `Retry-After` (whole seconds) on `429`/`503` responses.
    pub retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7163".to_string(),
            store_dir: PathBuf::from("store"),
            workers: 2,
            threads: 1,
            queue_depth: 32,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(15),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// Lifecycle of one campaign the service knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Complete,
    /// Cancelled by a drain — the artifact on disk is a resumable prefix.
    Cancelled,
    Failed(String),
}

impl Status {
    fn token(&self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Complete => "complete",
            Status::Cancelled => "cancelled",
            Status::Failed(_) => "failed",
        }
    }
}

#[derive(Clone, Debug)]
struct CampaignInfo {
    spec: Scenario,
    status: Status,
}

struct Job {
    id: String,
    spec: Scenario,
}

/// Service counters surfaced at `GET /stats`.
#[derive(Debug, Default)]
struct Stats {
    campaigns_run: AtomicU64,
    cache_hits: AtomicU64,
    /// Flattened trials actually executed by workers — replays from the
    /// store leave this untouched, which is how the e2e tests prove a
    /// cache hit re-ran nothing.
    trials_executed: AtomicU64,
    /// Submissions shed with `429` (queue full) or `503` (draining).
    shed: AtomicU64,
    /// Requests answered with a 4xx protocol error (malformed, oversized,
    /// too slow).
    bad_requests: AtomicU64,
}

struct State {
    store: Store,
    threads: usize,
    workers: usize,
    queue_capacity: usize,
    limits: ReadLimits,
    read_timeout: Duration,
    write_timeout: Duration,
    retry_after_secs: u64,
    bound_addr: SocketAddr,
    campaigns: Mutex<HashMap<String, CampaignInfo>>,
    /// Notified on every worker progress event and status change;
    /// row-stream followers wait on it (with [`FOLLOW_POLL`] as backstop).
    progress: Condvar,
    /// Paired with [`State::progress`]; holds no data — the campaign map
    /// has its own lock so followers never serialize against submitters.
    progress_lock: Mutex<()>,
    jobs: mpsc::Sender<Job>,
    /// Campaigns enqueued but not yet picked up by a worker.
    queued: AtomicU64,
    /// Campaigns currently executing.
    running: AtomicU64,
    /// Once set, submissions are shed with `503` and workers drop queued
    /// jobs instead of running them.
    draining: AtomicBool,
    /// Once set, [`Server::run`] exits at the next accept.
    shutdown: AtomicBool,
    /// Cancel tokens of the campaigns currently executing — a drain fires
    /// them all.
    active: Mutex<HashMap<String, CancelToken>>,
    stats: Stats,
}

impl State {
    fn status_of(&self, id: &str) -> Option<Status> {
        self.campaigns
            .lock()
            .expect("campaign map lock")
            .get(id)
            .map(|info| info.status.clone())
    }

    fn set_status(&self, id: &str, status: Status) {
        if let Some(info) = self
            .campaigns
            .lock()
            .expect("campaign map lock")
            .get_mut(id)
        {
            info.status = status;
        }
        self.notify();
    }

    fn notify(&self) {
        let _guard = self.progress_lock.lock().expect("progress lock");
        self.progress.notify_all();
    }

    /// Reserves a queue slot, failing when the queue is full — the
    /// compare-and-swap loop makes admission exact under concurrency.
    fn try_reserve_queue_slot(&self) -> bool {
        self.queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                (q < self.queue_capacity as u64).then_some(q + 1)
            })
            .is_ok()
    }

    fn in_flight(&self) -> u64 {
        self.queued.load(Ordering::SeqCst) + self.running.load(Ordering::SeqCst)
    }
}

/// The campaign service. [`Server::bind`] opens the listener and store
/// and spawns the worker pool; [`Server::run`] accepts connections until
/// a shutdown is requested.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener, opens the store — preloading completed
    /// artifacts so replays survive restarts, and quarantining any whose
    /// completion marker fails verification ([`Store::verify`]) instead
    /// of serving bad bytes — and spawns `workers` campaign workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-open failures.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let bound_addr = listener.local_addr()?;
        let store = Store::open(&config.store_dir)?;

        let mut campaigns = HashMap::new();
        for (id, spec, complete) in store.scan()? {
            if !complete {
                // Interrupted artifacts stay off the map: the next POST of
                // the same spec recomputes their id and resumes them.
                continue;
            }
            match store.verify(&id)? {
                Integrity::Verified => {
                    campaigns.insert(
                        id,
                        CampaignInfo {
                            spec,
                            status: Status::Complete,
                        },
                    );
                }
                Integrity::Incomplete => {}
                Integrity::Corrupt(reason) => {
                    let dest = store.quarantine(&id, &reason)?;
                    eprintln!(
                        "dream serve: quarantined {id} ({reason}) -> {}",
                        dest.display()
                    );
                }
            }
        }

        let (jobs, job_rx) = mpsc::channel::<Job>();
        let state = Arc::new(State {
            store,
            threads: config.threads.max(1),
            workers: config.workers.max(1),
            queue_capacity: config.queue_depth.max(1),
            limits: ReadLimits {
                deadline: Some(config.request_deadline),
                ..ReadLimits::default()
            },
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            retry_after_secs: config.retry_after.as_secs(),
            bound_addr,
            campaigns: Mutex::new(campaigns),
            progress: Condvar::new(),
            progress_lock: Mutex::new(()),
            jobs,
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(HashMap::new()),
            stats: Stats::default(),
        });

        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..state.workers {
            let state = Arc::clone(&state);
            let job_rx = Arc::clone(&job_rx);
            thread::spawn(move || worker_loop(&state, &job_rx));
        }

        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.bound_addr
    }

    /// Accepts connections, one handler thread per connection, until
    /// `POST /admin/shutdown` completes a drain.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            thread::spawn(move || {
                // Connection-level failures (client hung up mid-stream)
                // only end that connection.
                let _ = handle_connection(&state, stream);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning the bound
    /// address — the in-process harness for tests.
    pub fn spawn(self) -> SocketAddr {
        let addr = self.local_addr();
        thread::spawn(move || {
            let _ = self.run();
        });
        addr
    }
}

fn worker_loop(state: &Arc<State>, jobs: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        let job = match jobs.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // server dropped
        };
        state.queued.fetch_sub(1, Ordering::SeqCst);
        if state.draining.load(Ordering::SeqCst) {
            // Queued work is dropped, not run: whatever the artifact holds
            // (possibly just the spec) resumes on the next POST.
            state.set_status(&job.id, Status::Cancelled);
            continue;
        }
        state.running.fetch_add(1, Ordering::SeqCst);
        let token = CancelToken::new();
        state
            .active
            .lock()
            .expect("active map lock")
            .insert(job.id.clone(), token.clone());
        state.set_status(&job.id, Status::Running);
        let result = execute_campaign(state, &job, &token);
        state
            .active
            .lock()
            .expect("active map lock")
            .remove(&job.id);
        let status = match result {
            Ok(()) => Status::Complete,
            Err(EngineError::Cancelled) => Status::Cancelled,
            Err(e) => Status::Failed(e.to_string()),
        };
        state.running.fetch_sub(1, Ordering::SeqCst);
        state.set_status(&job.id, status);
    }
}

/// Runs (or resumes) one campaign, appending missing rows to its artifact
/// and writing the completion marker last. A fired `token` (drain) leaves
/// the artifact as a resumable prefix: rows already appended stay, no
/// marker is written.
fn execute_campaign(state: &Arc<State>, job: &Job, token: &CancelToken) -> Result<(), EngineError> {
    let existing = state.store.truncate_ragged_tail(&job.id)?;
    let mut sink = JsonlSink::append(&state.store.rows_path(&job.id))?;

    state.stats.campaigns_run.fetch_add(1, Ordering::Relaxed);
    state
        .stats
        .trials_executed
        .fetch_add(job.spec.flatten().len() as u64, Ordering::Relaxed);

    let notifier = Arc::clone(state);
    let outcome = CampaignRunner::new(job.spec.clone())
        .threads(state.threads)
        .skip_rows(existing)
        .cancel_token(token.clone())
        .on_progress(move |_| notifier.notify())
        .run(&mut sink)?;

    state
        .store
        .mark_complete(&job.id, &job.spec, outcome.rows.len())?;
    Ok(())
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(state.read_timeout))?;
    stream.set_write_timeout(Some(state.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let request = match Request::read(&mut reader, &state.limits) {
        Ok(None) => return Ok(()),
        Ok(Some(request)) => request,
        Err(e) => {
            // A malformed/oversized/too-slow request gets a proper status
            // and a JSON error body, then the connection closes; only a
            // dead transport is dropped silently.
            if let Some((status, reason, message)) = e.response() {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = error_response(&mut stream, status, reason, &message);
            }
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaigns") => post_campaign(state, &mut stream, &request),
        ("POST", "/admin/drain") => post_drain(state, &mut stream, false),
        ("POST", "/admin/shutdown") => post_drain(state, &mut stream, true),
        ("GET", "/presets") => get_presets(&mut stream),
        ("GET", "/stats") => get_stats(state, &mut stream),
        ("GET", "/healthz") => get_healthz(state, &mut stream),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/campaigns/") {
                match rest.strip_suffix("/rows") {
                    Some(id) => get_rows(state, &mut stream, id),
                    None => get_status(state, &mut stream, rest),
                }
            } else {
                not_found(&mut stream)
            }
        }
        _ => error_response(&mut stream, 405, "Method Not Allowed", "unsupported method"),
    }
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    error_response(stream, 404, "Not Found", "no such resource")
}

fn error_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    let body = format!("{{\"error\": {}}}\n", json_string(message));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

/// Sheds one submission: `429` (queue full) or `503` (draining), both
/// with the advisory `Retry-After` the client retry layer honors.
fn shed_response(
    state: &Arc<State>,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    state.stats.shed.fetch_add(1, Ordering::Relaxed);
    let retry_after = state.retry_after_secs.to_string();
    let body = format!("{{\"error\": {}}}\n", json_string(message));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[("Retry-After", &retry_after)],
        body.as_bytes(),
    )
}

/// Minimal JSON string escaping for error payloads.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get_presets(stream: &mut TcpStream) -> io::Result<()> {
    let entries: Vec<String> = registry::catalog()
        .into_iter()
        .map(|(name, kind, axis, points, title)| {
            format!(
                "  {{\"name\": {}, \"kind\": {}, \"axis\": {}, \"points\": {points}, \"title\": {}}}",
                json_string(&name),
                json_string(kind),
                json_string(axis),
                json_string(&title)
            )
        })
        .collect();
    let body = format!("[\n{}\n]\n", entries.join(",\n"));
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_stats(state: &Arc<State>, stream: &mut TcpStream) -> io::Result<()> {
    let body = format!(
        "{{\"campaigns_run\": {}, \"cache_hits\": {}, \"trials_executed\": {}, \"shed\": {}, \"bad_requests\": {}}}\n",
        state.stats.campaigns_run.load(Ordering::Relaxed),
        state.stats.cache_hits.load(Ordering::Relaxed),
        state.stats.trials_executed.load(Ordering::Relaxed),
        state.stats.shed.load(Ordering::Relaxed),
        state.stats.bad_requests.load(Ordering::Relaxed),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// Liveness + readiness: the CI smoke polls this before the first POST,
/// and operators watch `queue_depth` to see backpressure building.
fn get_healthz(state: &Arc<State>, stream: &mut TcpStream) -> io::Result<()> {
    let status = if state.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let campaigns = state.campaigns.lock().expect("campaign map lock").len();
    let body = format!(
        "{{\"status\": \"{status}\", \"version\": {}, \"workers\": {}, \"queue_depth\": {}, \"queue_capacity\": {}, \"running\": {}, \"campaigns\": {campaigns}, \"trials_executed\": {}}}\n",
        json_string(env!("CARGO_PKG_VERSION")),
        state.workers,
        state.queued.load(Ordering::SeqCst),
        state.queue_capacity,
        state.running.load(Ordering::SeqCst),
        state.stats.trials_executed.load(Ordering::Relaxed),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// Drains the service: stops admitting campaigns, fires every in-flight
/// [`CancelToken`], drops queued jobs, and waits (bounded) for workers to
/// go idle. With `exit` the accept loop is shut down afterwards — the
/// graceful end of the process.
fn post_drain(state: &Arc<State>, stream: &mut TcpStream, exit: bool) -> io::Result<()> {
    state.draining.store(true, Ordering::SeqCst);
    let cancelled = {
        let active = state.active.lock().expect("active map lock");
        for token in active.values() {
            token.cancel();
        }
        active.len()
    };
    state.notify();

    // Bounded wait for in-flight work to stop (cancellation is polled
    // between grid points, so this is quick in practice).
    let deadline = Instant::now() + DRAIN_GRACE;
    while state.in_flight() > 0 && Instant::now() < deadline {
        let guard = state.progress_lock.lock().expect("progress lock");
        let _ = state
            .progress
            .wait_timeout(guard, FOLLOW_POLL)
            .expect("progress lock");
    }
    let idle = state.in_flight() == 0;

    // Respond before releasing the accept loop: once `run` returns the
    // process may exit, and this handler thread must not be killed with
    // the response still unsent.
    let body = format!(
        "{{\"status\": \"draining\", \"cancelled\": {cancelled}, \"idle\": {idle}, \"exiting\": {}}}\n",
        exit && idle
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())?;

    if exit && idle {
        state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(state.bound_addr);
    }
    Ok(())
}

fn get_status(state: &Arc<State>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let info = state
        .campaigns
        .lock()
        .expect("campaign map lock")
        .get(id)
        .cloned();
    let Some(info) = info else {
        return not_found(stream);
    };
    let rows = state.store.existing_row_count(id).unwrap_or(0);
    let error = match &info.status {
        Status::Failed(message) => format!(", \"error\": {}", json_string(message)),
        _ => String::new(),
    };
    let body = format!(
        "{{\"id\": {}, \"status\": {}, \"rows\": {rows}, \"spec_hash\": {}, \"seed\": {}, \"trials_total\": {}{error}}}\n",
        json_string(id),
        json_string(info.status.token()),
        json_string(&spec_hash(&info.spec)),
        info.spec.seed,
        info.spec.flatten().len(),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_rows(state: &Arc<State>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    if state.status_of(id).is_none() && !state.store.rows_path(id).exists() {
        return not_found(stream);
    }
    stream_rows(state, stream, id, "follow")
}

fn post_campaign(state: &Arc<State>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error_response(stream, 400, "Bad Request", "spec body is not UTF-8"),
    };
    let sc = match Scenario::from_json(text) {
        Ok(sc) => sc,
        Err(e) => return error_response(stream, 400, "Bad Request", &e.to_string()),
    };
    if let Err(e) = sc.validate() {
        return error_response(stream, 400, "Bad Request", &e.to_string());
    }
    // Sink negotiation shares the CLI's `--sink` grammar; the service
    // streams jsonl and owns artifact placement, so only a bare `jsonl`
    // (the default) is accepted.
    if let Some(token) = request.query_param("sink") {
        let negotiated = match SinkSpec::parse(token) {
            Ok(spec) => spec,
            Err(e) => return error_response(stream, 400, "Bad Request", &e.to_string()),
        };
        if negotiated.format != SinkFormat::Jsonl || negotiated.out.is_some() {
            return error_response(
                stream,
                400,
                "Bad Request",
                "the campaign service streams jsonl rows and owns artifact placement; use sink=jsonl",
            );
        }
    }
    if state.draining.load(Ordering::SeqCst) {
        return shed_response(
            state,
            stream,
            503,
            "Service Unavailable",
            "service is draining; retry against another instance or after restart",
        );
    }

    let id = campaign_id(&sc);
    enum Admission {
        Stream(&'static str),
        Full,
    }
    let admission = {
        let mut campaigns = state.campaigns.lock().expect("campaign map lock");
        match campaigns.get(&id).map(|info| info.status.clone()) {
            Some(Status::Complete) => Admission::Stream("hit"),
            Some(Status::Failed(_)) | Some(Status::Cancelled) | None
                if state.store.is_complete(&id) =>
            {
                campaigns.insert(
                    id.clone(),
                    CampaignInfo {
                        spec: sc.clone(),
                        status: Status::Complete,
                    },
                );
                Admission::Stream("hit")
            }
            Some(Status::Queued) | Some(Status::Running) => Admission::Stream("join"),
            // Unknown or previously failed/cancelled: (re-)enqueue. Rows
            // already on disk from an interrupted run are kept and skipped
            // over. Admission is bounded: no free queue slot means shed.
            _ => {
                if !state.try_reserve_queue_slot() {
                    Admission::Full
                } else {
                    if let Err(e) = state.store.begin(&id, &sc) {
                        state.queued.fetch_sub(1, Ordering::SeqCst);
                        return Err(e);
                    }
                    campaigns.insert(
                        id.clone(),
                        CampaignInfo {
                            spec: sc.clone(),
                            status: Status::Queued,
                        },
                    );
                    state
                        .jobs
                        .send(Job {
                            id: id.clone(),
                            spec: sc,
                        })
                        .expect("worker pool outlives the listener");
                    Admission::Stream("miss")
                }
            }
        }
    };
    match admission {
        Admission::Full => shed_response(
            state,
            stream,
            429,
            "Too Many Requests",
            "campaign queue is full; backpressure — retry after the interval",
        ),
        Admission::Stream(cache) => {
            if cache == "hit" {
                state.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            stream_rows(state, stream, &id, cache)
        }
    }
}

/// Streams the row artifact of `id` as a chunked `application/x-ndjson`
/// body, following the file as the worker appends until the campaign
/// completes (or fails or is cancelled, in which case the stream ends at
/// the last persisted row and the status endpoint carries the detail).
fn stream_rows(
    state: &Arc<State>,
    stream: &mut TcpStream,
    id: &str,
    cache: &str,
) -> io::Result<()> {
    let mut body = ChunkedBody::start(
        stream,
        "application/x-ndjson",
        &[("X-Campaign-Id", id), ("X-Dream-Cache", cache)],
    )?;
    let path = state.store.rows_path(id);
    let mut offset: u64 = 0;
    loop {
        // Status first, bytes second: when the status already says
        // "done", every row was on disk before we read (the worker marks
        // completion after its sink finished), so the final read below
        // cannot miss a tail.
        let status = state.status_of(id);
        let done = !matches!(status, Some(Status::Queued) | Some(Status::Running));

        match std::fs::File::open(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(mut file) => {
                file.seek(SeekFrom::Start(offset))?;
                let mut fresh = Vec::new();
                file.read_to_end(&mut fresh)?;
                // Only ship whole rows: a concurrent append can land
                // between the worker's write syscalls.
                let boundary = fresh.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                if boundary > 0 {
                    body.chunk(&fresh[..boundary])?;
                    offset += boundary as u64;
                }
            }
        }

        if done {
            return body.finish();
        }
        let guard = state.progress_lock.lock().expect("progress lock");
        let _ = state
            .progress
            .wait_timeout(guard, FOLLOW_POLL)
            .expect("progress lock");
    }
}
