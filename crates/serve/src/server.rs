//! The campaign service: a thread-per-connection HTTP front end over a
//! worker pool and the content-addressed [`Store`].
//!
//! ```text
//! POST /campaigns[?sink=jsonl]  submit a spec; stream its JSONL rows
//! GET  /campaigns/{id}          status JSON
//! GET  /campaigns/{id}/rows     stream the row artifact
//! GET  /presets                 the scenario registry as JSON
//! GET  /stats                   service counters
//! ```
//!
//! Submissions deduplicate on [`campaign_id`]: a spec whose artifact is
//! already complete replays from the store without executing a single
//! trial (`X-Dream-Cache: hit`); one currently running attaches to the
//! in-flight stream (`join`); anything else enqueues (`miss`). An
//! interrupted campaign — rows on disk but no completion marker — resumes
//! where it stopped: the engine is deterministic, so the worker re-runs
//! the spec with the already-persisted row prefix skipped and appends
//! only what is missing.
//!
//! Every response streams straight from the artifact file, so a cache
//! hit, a join, and a fresh run all produce byte-identical bodies.

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use dream_sim::report::JsonlSink;
use dream_sim::scenario::{registry, CampaignRunner, Scenario, SinkFormat, SinkSpec};

use crate::http::{write_response, ChunkedBody, Request};
use crate::store::{campaign_id, spec_hash, Store};

/// How long row-stream followers sleep between artifact polls when no
/// progress notification arrives.
const FOLLOW_POLL: Duration = Duration::from_millis(25);

/// Configuration of one [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7163`; port 0 picks a free port).
    pub addr: String,
    /// Root of the artifact store.
    pub store_dir: PathBuf,
    /// Campaign worker threads (concurrent campaigns).
    pub workers: usize,
    /// Engine threads per campaign.
    pub threads: usize,
}

/// Lifecycle of one campaign the service knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Complete,
    Failed(String),
}

impl Status {
    fn token(&self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Complete => "complete",
            Status::Failed(_) => "failed",
        }
    }
}

#[derive(Clone, Debug)]
struct CampaignInfo {
    spec: Scenario,
    status: Status,
}

struct Job {
    id: String,
    spec: Scenario,
}

/// Service counters surfaced at `GET /stats`.
#[derive(Debug, Default)]
struct Stats {
    campaigns_run: AtomicU64,
    cache_hits: AtomicU64,
    /// Flattened trials actually executed by workers — replays from the
    /// store leave this untouched, which is how the e2e tests prove a
    /// cache hit re-ran nothing.
    trials_executed: AtomicU64,
}

struct State {
    store: Store,
    threads: usize,
    campaigns: Mutex<HashMap<String, CampaignInfo>>,
    /// Notified on every worker progress event and status change;
    /// row-stream followers wait on it (with [`FOLLOW_POLL`] as backstop).
    progress: Condvar,
    /// Paired with [`State::progress`]; holds no data — the campaign map
    /// has its own lock so followers never serialize against submitters.
    progress_lock: Mutex<()>,
    jobs: mpsc::Sender<Job>,
    stats: Stats,
}

impl State {
    fn status_of(&self, id: &str) -> Option<Status> {
        self.campaigns
            .lock()
            .expect("campaign map lock")
            .get(id)
            .map(|info| info.status.clone())
    }

    fn set_status(&self, id: &str, status: Status) {
        if let Some(info) = self
            .campaigns
            .lock()
            .expect("campaign map lock")
            .get_mut(id)
        {
            info.status = status;
        }
        self.notify();
    }

    fn notify(&self) {
        let _guard = self.progress_lock.lock().expect("progress lock");
        self.progress.notify_all();
    }
}

/// The campaign service. [`Server::bind`] opens the listener and store
/// and spawns the worker pool; [`Server::run`] accepts connections until
/// the process exits.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener, opens the store (preloading completed
    /// artifacts so replays survive restarts), and spawns `workers`
    /// campaign workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-open failures.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let store = Store::open(&config.store_dir)?;

        let mut campaigns = HashMap::new();
        for (id, spec, complete) in store.scan()? {
            if complete {
                campaigns.insert(
                    id,
                    CampaignInfo {
                        spec,
                        status: Status::Complete,
                    },
                );
            }
            // Interrupted artifacts stay off the map: the next POST of
            // the same spec recomputes their id and resumes them.
        }

        let (jobs, job_rx) = mpsc::channel::<Job>();
        let state = Arc::new(State {
            store,
            threads: config.threads.max(1),
            campaigns: Mutex::new(campaigns),
            progress: Condvar::new(),
            progress_lock: Mutex::new(()),
            jobs,
            stats: Stats::default(),
        });

        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..config.workers.max(1) {
            let state = Arc::clone(&state);
            let job_rx = Arc::clone(&job_rx);
            thread::spawn(move || worker_loop(&state, &job_rx));
        }

        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read (the socket
    /// was bound moments ago, so this indicates a torn-down stack).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Accepts connections forever, one handler thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let state = Arc::clone(&self.state);
            thread::spawn(move || {
                // Connection-level failures (client hung up mid-stream)
                // only end that connection.
                let _ = handle_connection(&state, stream);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning the bound
    /// address — the in-process harness for tests.
    pub fn spawn(self) -> SocketAddr {
        let addr = self.local_addr();
        thread::spawn(move || {
            let _ = self.run();
        });
        addr
    }
}

fn worker_loop(state: &Arc<State>, jobs: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        let job = match jobs.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // server dropped
        };
        state.set_status(&job.id, Status::Running);
        let result = execute_campaign(state, &job);
        let status = match result {
            Ok(()) => Status::Complete,
            Err(e) => Status::Failed(e.to_string()),
        };
        state.set_status(&job.id, status);
    }
}

/// Runs (or resumes) one campaign, appending missing rows to its artifact
/// and writing the completion marker last.
fn execute_campaign(state: &Arc<State>, job: &Job) -> Result<(), Box<dyn std::error::Error>> {
    let existing = state.store.truncate_ragged_tail(&job.id)?;
    let mut sink = JsonlSink::append(&state.store.rows_path(&job.id))?;

    state.stats.campaigns_run.fetch_add(1, Ordering::Relaxed);
    state
        .stats
        .trials_executed
        .fetch_add(job.spec.flatten().len() as u64, Ordering::Relaxed);

    let notifier = Arc::clone(state);
    let outcome = CampaignRunner::new(job.spec.clone())
        .threads(state.threads)
        .skip_rows(existing)
        .on_progress(move |_| notifier.notify())
        .run(&mut sink)?;

    state
        .store
        .mark_complete(&job.id, &job.spec, outcome.rows.len())?;
    Ok(())
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let Some(request) = Request::read(&mut reader)? else {
        return Ok(());
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaigns") => post_campaign(state, &mut stream, &request),
        ("GET", "/presets") => get_presets(&mut stream),
        ("GET", "/stats") => get_stats(state, &mut stream),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/campaigns/") {
                match rest.strip_suffix("/rows") {
                    Some(id) => get_rows(state, &mut stream, id),
                    None => get_status(state, &mut stream, rest),
                }
            } else {
                not_found(&mut stream)
            }
        }
        _ => error_response(&mut stream, 405, "Method Not Allowed", "unsupported method"),
    }
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    error_response(stream, 404, "Not Found", "no such resource")
}

fn error_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    let body = format!("{{\"error\": {}}}\n", json_string(message));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

/// Minimal JSON string escaping for error payloads.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get_presets(stream: &mut TcpStream) -> io::Result<()> {
    let entries: Vec<String> = registry::catalog()
        .into_iter()
        .map(|(name, kind, axis, points, title)| {
            format!(
                "  {{\"name\": {}, \"kind\": {}, \"axis\": {}, \"points\": {points}, \"title\": {}}}",
                json_string(&name),
                json_string(kind),
                json_string(axis),
                json_string(&title)
            )
        })
        .collect();
    let body = format!("[\n{}\n]\n", entries.join(",\n"));
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_stats(state: &Arc<State>, stream: &mut TcpStream) -> io::Result<()> {
    let body = format!(
        "{{\"campaigns_run\": {}, \"cache_hits\": {}, \"trials_executed\": {}}}\n",
        state.stats.campaigns_run.load(Ordering::Relaxed),
        state.stats.cache_hits.load(Ordering::Relaxed),
        state.stats.trials_executed.load(Ordering::Relaxed),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_status(state: &Arc<State>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let info = state
        .campaigns
        .lock()
        .expect("campaign map lock")
        .get(id)
        .cloned();
    let Some(info) = info else {
        return not_found(stream);
    };
    let rows = state.store.existing_row_count(id).unwrap_or(0);
    let error = match &info.status {
        Status::Failed(message) => format!(", \"error\": {}", json_string(message)),
        _ => String::new(),
    };
    let body = format!(
        "{{\"id\": {}, \"status\": {}, \"rows\": {rows}, \"spec_hash\": {}, \"seed\": {}, \"trials_total\": {}{error}}}\n",
        json_string(id),
        json_string(info.status.token()),
        json_string(&spec_hash(&info.spec)),
        info.spec.seed,
        info.spec.flatten().len(),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_rows(state: &Arc<State>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    if state.status_of(id).is_none() && !state.store.rows_path(id).exists() {
        return not_found(stream);
    }
    stream_rows(state, stream, id, "follow")
}

fn post_campaign(state: &Arc<State>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error_response(stream, 400, "Bad Request", "spec body is not UTF-8"),
    };
    let sc = match Scenario::from_json(text) {
        Ok(sc) => sc,
        Err(e) => return error_response(stream, 400, "Bad Request", &e.to_string()),
    };
    if let Err(e) = sc.validate() {
        return error_response(stream, 400, "Bad Request", &e.to_string());
    }
    // Sink negotiation shares the CLI's `--sink` grammar; the service
    // streams jsonl and owns artifact placement, so only a bare `jsonl`
    // (the default) is accepted.
    if let Some(token) = request.query_param("sink") {
        let negotiated = match SinkSpec::parse(token) {
            Ok(spec) => spec,
            Err(e) => return error_response(stream, 400, "Bad Request", &e.to_string()),
        };
        if negotiated.format != SinkFormat::Jsonl || negotiated.out.is_some() {
            return error_response(
                stream,
                400,
                "Bad Request",
                "the campaign service streams jsonl rows and owns artifact placement; use sink=jsonl",
            );
        }
    }

    let id = campaign_id(&sc);
    let cache = {
        let mut campaigns = state.campaigns.lock().expect("campaign map lock");
        match campaigns.get(&id).map(|info| info.status.clone()) {
            Some(Status::Complete) => "hit",
            Some(Status::Failed(_)) | None if state.store.is_complete(&id) => {
                campaigns.insert(
                    id.clone(),
                    CampaignInfo {
                        spec: sc.clone(),
                        status: Status::Complete,
                    },
                );
                "hit"
            }
            Some(Status::Queued) | Some(Status::Running) => "join",
            // Unknown or previously failed: (re-)enqueue. Rows already on
            // disk from an interrupted run are kept and skipped over.
            _ => {
                state.store.begin(&id, &sc)?;
                campaigns.insert(
                    id.clone(),
                    CampaignInfo {
                        spec: sc.clone(),
                        status: Status::Queued,
                    },
                );
                state
                    .jobs
                    .send(Job {
                        id: id.clone(),
                        spec: sc,
                    })
                    .expect("worker pool outlives the listener");
                "miss"
            }
        }
    };
    if cache == "hit" {
        state.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    stream_rows(state, stream, &id, cache)
}

/// Streams the row artifact of `id` as a chunked `application/x-ndjson`
/// body, following the file as the worker appends until the campaign
/// completes (or fails, in which case the stream ends at the last
/// persisted row and the status endpoint carries the error).
fn stream_rows(
    state: &Arc<State>,
    stream: &mut TcpStream,
    id: &str,
    cache: &str,
) -> io::Result<()> {
    let mut body = ChunkedBody::start(
        stream,
        "application/x-ndjson",
        &[("X-Campaign-Id", id), ("X-Dream-Cache", cache)],
    )?;
    let path = state.store.rows_path(id);
    let mut offset: u64 = 0;
    loop {
        // Status first, bytes second: when the status already says
        // "done", every row was on disk before we read (the worker marks
        // completion after its sink finished), so the final read below
        // cannot miss a tail.
        let status = state.status_of(id);
        let done = !matches!(status, Some(Status::Queued) | Some(Status::Running));

        match std::fs::File::open(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(mut file) => {
                file.seek(SeekFrom::Start(offset))?;
                let mut fresh = Vec::new();
                file.read_to_end(&mut fresh)?;
                // Only ship whole rows: a concurrent append can land
                // between the worker's write syscalls.
                let boundary = fresh.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                if boundary > 0 {
                    body.chunk(&fresh[..boundary])?;
                    offset += boundary as u64;
                }
            }
        }

        if done {
            return body.finish();
        }
        let guard = state.progress_lock.lock().expect("progress lock");
        let _ = state
            .progress
            .wait_timeout(guard, FOLLOW_POLL)
            .expect("progress lock");
    }
}
