//! The campaign service: an evented HTTP front end over a worker pool,
//! an optional shard-fan-out coordinator, and the content-addressed
//! [`Store`].
//!
//! ```text
//! POST /campaigns[?sink=jsonl]  submit a spec; stream its JSONL rows
//! POST /shards                  worker-mode submit: always executes the
//!                               spec directly (never re-shards it)
//! GET  /campaigns/{id}          status JSON
//! GET  /campaigns/{id}/rows     stream the row artifact
//! GET  /presets                 the scenario registry as JSON
//! GET  /stats                   service + batch-telemetry counters
//! GET  /healthz                 liveness: version, workers, queue and
//!                               shard/worker topology state
//! POST /admin/drain             stop admitting, cancel in-flight runs
//! POST /admin/shutdown          drain, then exit the accept loop
//! ```
//!
//! Submissions deduplicate on [`campaign_id`]: a spec whose artifact is
//! already complete replays from the store without executing a single
//! trial (`X-Dream-Cache: hit`); one currently running attaches to the
//! in-flight stream (`join`); anything else enqueues (`miss`). An
//! interrupted campaign — rows on disk but no completion marker — resumes
//! where it stopped: the engine is deterministic, so the worker re-runs
//! the spec with the already-persisted row prefix skipped and appends
//! only what is missing.
//!
//! Every response streams straight from the artifact file, so a cache
//! hit, a join, and a fresh run all produce byte-identical bodies.
//!
//! # Sharded execution
//!
//! With [`ServeConfig::shards`] > 1 a coordinator partitions each
//! submitted campaign with [`ShardPlan`] and fans the derived shard specs
//! out over worker processes — spawned locally from
//! [`ServeConfig::worker_exe`] or addressed via
//! [`ServeConfig::worker_addrs`] — by POSTing them to each worker's
//! `/shards` endpoint through the retrying [`crate::client`]. Every shard
//! is its own content-addressed sub-artifact in the coordinator's store,
//! so a dead worker costs exactly one shard re-fetch (the worker side
//! replays from *its* store without re-running trials). Shard rows are
//! reassembled into the parent artifact strictly in plan order, which
//! makes the reassembled bytes — and therefore the parent's store id and
//! `X-Dream-Cache` semantics — identical to an unsharded run.
//!
//! # The evented connection layer
//!
//! Accepted connections are parsed and dispatched by a small fixed
//! handler pool; anything that *streams* (a campaign body, a `/rows`
//! follow) is handed to a poller thread as a non-blocking socket. The
//! poller owns every follower at once — a readiness ladder of one rung:
//! it wakes on engine progress notifications (with [`FOLLOW_POLL`] as a
//! backstop), frames fresh artifact bytes into per-connection buffers,
//! and retries `WouldBlock` writes on the next tick — so hundreds of
//! followers cost hundreds of buffers, not hundreds of threads. A
//! follower whose TCP window stays shut past
//! [`ServeConfig::write_timeout`] is shed.
//!
//! # Surviving hostile clients and full queues
//!
//! Connections carry socket read/write timeouts and a per-request
//! deadline ([`ServeConfig`]), so a slow-loris burns its own deadline
//! instead of a handler thread, and a stalled consumer is shed when its
//! TCP window stays shut past the write timeout. Malformed, oversized,
//! or too-slow requests get `400`/`408`/`413`/`431` JSON error bodies
//! with `Connection: close` — never a silent drop. Admission is bounded:
//! at most [`ServeConfig::queue_depth`] campaigns may wait for a worker,
//! beyond which submissions are shed with `429 Too Many Requests` and a
//! `Retry-After` the CLI's retry layer honors. `POST /admin/drain` stops
//! admissions (`503` + `Retry-After`), fires every in-flight campaign's
//! [`CancelToken`], and leaves the interrupted artifacts resumable on
//! disk; `POST /admin/shutdown` drains and then exits [`Server::run`],
//! which also reaps any locally spawned worker processes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dream_sim::report::JsonlSink;
use dream_sim::scenario::{
    registry, CampaignRunner, CancelToken, EngineError, Scenario, Shard, ShardPlan, SinkFormat,
    SinkSpec,
};
use dream_sim::telemetry::{self, BatchTelemetry};

use crate::client::{fetch_rows, RetryPolicy};
use crate::http::{write_response, ReadLimits, Request};
use crate::store::{campaign_id, spec_hash, Integrity, Store};

/// How long row-stream followers sleep between artifact polls when no
/// progress notification arrives.
const FOLLOW_POLL: Duration = Duration::from_millis(25);

/// How long a drain waits for workers to go idle before answering anyway.
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// Request-parsing handler threads. Handlers only parse, dispatch, and
/// answer short responses — streaming bodies live on the poller — so a
/// small fixed pool suffices at any follower count.
const HANDLER_THREADS: usize = 8;

/// Upper bound on artifact bytes framed into one follower's buffer per
/// poller pass, so one fast producer cannot balloon a slow consumer's
/// pending buffer.
const FILL_CAP: usize = 256 * 1024;

/// Configuration of one [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7163`; port 0 picks a free port).
    pub addr: String,
    /// Root of the artifact store.
    pub store_dir: PathBuf,
    /// Campaign worker threads (concurrent campaigns).
    pub workers: usize,
    /// Engine threads per campaign.
    pub threads: usize,
    /// Campaigns allowed to wait for a worker before submissions are
    /// shed with `429`.
    pub queue_depth: usize,
    /// Socket read timeout — the longest a handler blocks waiting for
    /// the peer to send anything at all.
    pub read_timeout: Duration,
    /// Socket write timeout — the longest a follower may stall
    /// (`WouldBlock`) before the poller sheds it.
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one whole request (the slow-loris
    /// guard; a trickling client is cut off at this point).
    pub request_deadline: Duration,
    /// Advisory `Retry-After` (whole seconds) on `429`/`503` responses.
    pub retry_after: Duration,
    /// Shards to partition each campaign into (1 = serial, no fan-out).
    pub shards: usize,
    /// Addresses of already-running shard workers (`host:port`). When
    /// empty and `shards > 1`, the coordinator spawns local worker
    /// processes from [`ServeConfig::worker_exe`] instead.
    pub worker_addrs: Vec<String>,
    /// Run as a shard worker: every submission executes directly, never
    /// fanning out again.
    pub worker: bool,
    /// Binary to spawn local shard workers from (the CLI passes its own
    /// executable). `None` disables local spawning.
    pub worker_exe: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7163".to_string(),
            store_dir: PathBuf::from("store"),
            workers: 2,
            threads: 1,
            queue_depth: 32,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(15),
            retry_after: Duration::from_secs(1),
            shards: 1,
            worker_addrs: Vec::new(),
            worker: false,
            worker_exe: None,
        }
    }
}

/// Lifecycle of one campaign the service knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Complete,
    /// Cancelled by a drain — the artifact on disk is a resumable prefix.
    Cancelled,
    Failed(String),
}

impl Status {
    fn token(&self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Complete => "complete",
            Status::Cancelled => "cancelled",
            Status::Failed(_) => "failed",
        }
    }
}

#[derive(Clone, Debug)]
struct CampaignInfo {
    spec: Scenario,
    status: Status,
}

struct Job {
    id: String,
    spec: Scenario,
    /// Submitted via `POST /shards` (or to a worker-mode server): execute
    /// directly, never re-shard.
    direct: bool,
}

/// Service counters surfaced at `GET /stats`.
#[derive(Debug, Default)]
struct Stats {
    campaigns_run: AtomicU64,
    cache_hits: AtomicU64,
    /// Flattened trials actually executed by workers — replays from the
    /// store leave this untouched, which is how the e2e tests prove a
    /// cache hit re-ran nothing. A sharding coordinator also leaves it
    /// untouched: its trials execute on the shard workers.
    trials_executed: AtomicU64,
    /// Submissions shed with `429` (queue full) or `503` (draining).
    shed: AtomicU64,
    /// Requests answered with a 4xx protocol error (malformed, oversized,
    /// too slow).
    bad_requests: AtomicU64,
}

/// Batch-telemetry totals accumulated from [`telemetry::take`] after
/// every locally executed campaign, surfaced at `GET /stats`.
#[derive(Debug, Default)]
struct TelemetryTotals {
    lanes: AtomicU64,
    evicted: AtomicU64,
    bailed: AtomicU64,
    clean_replays: AtomicU64,
    traces_recorded: AtomicU64,
}

impl TelemetryTotals {
    fn absorb(&self, t: BatchTelemetry) {
        self.lanes.fetch_add(t.lanes, Ordering::Relaxed);
        self.evicted.fetch_add(t.evicted, Ordering::Relaxed);
        self.bailed.fetch_add(t.bailed, Ordering::Relaxed);
        self.clean_replays
            .fetch_add(t.clean_replays, Ordering::Relaxed);
        self.traces_recorded
            .fetch_add(t.traces_recorded, Ordering::Relaxed);
    }

    fn snapshot(&self) -> BatchTelemetry {
        BatchTelemetry {
            lanes: self.lanes.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bailed: self.bailed.load(Ordering::Relaxed),
            clean_replays: self.clean_replays.load(Ordering::Relaxed),
            traces_recorded: self.traces_recorded.load(Ordering::Relaxed),
        }
    }
}

/// Shard lifecycle counters (coordinator side), surfaced at `/healthz`.
#[derive(Debug, Default)]
struct ShardCounters {
    queued: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
}

/// One remote shard worker the coordinator can dispatch to.
#[derive(Debug)]
struct WorkerSlot {
    addr: String,
    /// Cleared when every retry against this worker failed; set again on
    /// the next success. Surfaced at `/healthz`.
    alive: AtomicBool,
}

/// One streaming response owned by the poller: a non-blocking socket, the
/// artifact it follows, and the chunk-framed bytes not yet written.
struct Follower {
    stream: TcpStream,
    id: String,
    /// Artifact bytes already framed (file offset).
    offset: u64,
    /// Chunk-framed bytes awaiting the socket.
    pending: Vec<u8>,
    /// Prefix of `pending` already written.
    sent: usize,
    /// The terminating chunk is framed; close once `pending` drains.
    finished: bool,
    /// First `WouldBlock` of the current stall, for the shed timeout.
    stalled_since: Option<Instant>,
}

struct State {
    store: Store,
    threads: usize,
    workers: usize,
    queue_capacity: usize,
    limits: ReadLimits,
    read_timeout: Duration,
    write_timeout: Duration,
    retry_after_secs: u64,
    bound_addr: SocketAddr,
    campaigns: Mutex<HashMap<String, CampaignInfo>>,
    /// Notified on every worker progress event and status change; the
    /// follower poller waits on it (with [`FOLLOW_POLL`] as backstop).
    progress: Condvar,
    /// Paired with [`State::progress`]; holds no data — the campaign map
    /// has its own lock so followers never serialize against submitters.
    progress_lock: Mutex<()>,
    jobs: mpsc::Sender<Job>,
    /// Hand-off of freshly admitted streaming connections to the poller.
    followers: mpsc::Sender<Follower>,
    /// Campaigns enqueued but not yet picked up by a worker.
    queued: AtomicU64,
    /// Campaigns currently executing.
    running: AtomicU64,
    /// Once set, submissions are shed with `503` and workers drop queued
    /// jobs instead of running them.
    draining: AtomicBool,
    /// Once set, [`Server::run`] exits at the next accept.
    shutdown: AtomicBool,
    /// Cancel tokens of the campaigns currently executing — a drain fires
    /// them all.
    active: Mutex<HashMap<String, CancelToken>>,
    stats: Stats,
    batch_telemetry: TelemetryTotals,
    /// Shards each campaign is partitioned into (1 = no fan-out).
    shards: usize,
    /// The shard workers this coordinator dispatches to (empty on plain
    /// and worker-mode servers).
    remote: Vec<WorkerSlot>,
    shard_counters: ShardCounters,
    /// Locally spawned worker processes, reaped when [`Server::run`]
    /// exits after a shutdown.
    children: Mutex<Vec<Child>>,
}

impl State {
    fn status_of(&self, id: &str) -> Option<Status> {
        self.campaigns
            .lock()
            .expect("campaign map lock")
            .get(id)
            .map(|info| info.status.clone())
    }

    fn set_status(&self, id: &str, status: Status) {
        if let Some(info) = self
            .campaigns
            .lock()
            .expect("campaign map lock")
            .get_mut(id)
        {
            info.status = status;
        }
        self.notify();
    }

    fn notify(&self) {
        let _guard = self.progress_lock.lock().expect("progress lock");
        self.progress.notify_all();
    }

    /// Reserves a queue slot, failing when the queue is full — the
    /// compare-and-swap loop makes admission exact under concurrency.
    fn try_reserve_queue_slot(&self) -> bool {
        self.queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                (q < self.queue_capacity as u64).then_some(q + 1)
            })
            .is_ok()
    }

    fn in_flight(&self) -> u64 {
        self.queued.load(Ordering::SeqCst) + self.running.load(Ordering::SeqCst)
    }
}

/// The campaign service. [`Server::bind`] opens the listener and store
/// and spawns the worker pool, handler pool, follower poller, and (for a
/// sharding coordinator) local worker processes; [`Server::run`] accepts
/// connections until a shutdown is requested.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener, opens the store — preloading completed
    /// artifacts so replays survive restarts, and quarantining any whose
    /// completion marker fails verification ([`Store::verify`]) instead
    /// of serving bad bytes — and spawns `workers` campaign workers plus
    /// the follower poller. A coordinator (`shards > 1`) also resolves
    /// its shard-worker topology: explicit [`ServeConfig::worker_addrs`]
    /// win; otherwise one local worker process per shard is spawned from
    /// [`ServeConfig::worker_exe`].
    ///
    /// # Errors
    ///
    /// Propagates bind, store-open, and worker-spawn failures.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let bound_addr = listener.local_addr()?;
        let store = Store::open(&config.store_dir)?;

        let mut campaigns = HashMap::new();
        for (id, spec, complete) in store.scan()? {
            if !complete {
                // Interrupted artifacts stay off the map: the next POST of
                // the same spec recomputes their id and resumes them.
                continue;
            }
            match store.verify(&id)? {
                Integrity::Verified => {
                    campaigns.insert(
                        id,
                        CampaignInfo {
                            spec,
                            status: Status::Complete,
                        },
                    );
                }
                Integrity::Incomplete => {}
                Integrity::Corrupt(reason) => {
                    let dest = store.quarantine(&id, &reason)?;
                    eprintln!(
                        "dream serve: quarantined {id} ({reason}) -> {}",
                        dest.display()
                    );
                }
            }
        }

        let shards = if config.worker {
            1
        } else {
            config.shards.max(1)
        };
        let mut children = Vec::new();
        let remote: Vec<WorkerSlot> = if shards > 1 {
            let addrs = if !config.worker_addrs.is_empty() {
                config.worker_addrs.clone()
            } else if let Some(exe) = &config.worker_exe {
                spawn_local_workers(exe, &config, shards, &mut children)?
            } else {
                Vec::new()
            };
            addrs
                .into_iter()
                .map(|addr| WorkerSlot {
                    addr,
                    alive: AtomicBool::new(true),
                })
                .collect()
        } else {
            Vec::new()
        };
        if shards > 1 && remote.is_empty() {
            eprintln!(
                "dream serve: --shards {shards} requested but no shard workers available; \
                 running campaigns unsharded"
            );
        }

        let (jobs, job_rx) = mpsc::channel::<Job>();
        let (followers, follower_rx) = mpsc::channel::<Follower>();
        let state = Arc::new(State {
            store,
            threads: config.threads.max(1),
            workers: config.workers.max(1),
            queue_capacity: config.queue_depth.max(1),
            limits: ReadLimits {
                deadline: Some(config.request_deadline),
                ..ReadLimits::default()
            },
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            retry_after_secs: config.retry_after.as_secs(),
            bound_addr,
            campaigns: Mutex::new(campaigns),
            progress: Condvar::new(),
            progress_lock: Mutex::new(()),
            jobs,
            followers,
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            batch_telemetry: TelemetryTotals::default(),
            shards,
            remote,
            shard_counters: ShardCounters::default(),
            children: Mutex::new(children),
        });

        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..state.workers {
            let state = Arc::clone(&state);
            let job_rx = Arc::clone(&job_rx);
            thread::spawn(move || worker_loop(&state, &job_rx));
        }
        {
            let state = Arc::clone(&state);
            thread::spawn(move || poller_loop(&state, &follower_rx));
        }

        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.bound_addr
    }

    /// Accepts connections into the handler pool until
    /// `POST /admin/shutdown` completes a drain, then reaps any locally
    /// spawned shard workers.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn run(self) -> io::Result<()> {
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for _ in 0..HANDLER_THREADS {
            let state = Arc::clone(&self.state);
            let conn_rx = Arc::clone(&conn_rx);
            thread::spawn(move || handler_loop(&state, &conn_rx));
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            if conn_tx.send(stream).is_err() {
                break;
            }
        }
        // Reap locally spawned shard workers — their stores keep every
        // completed shard, so nothing is lost.
        for mut child in self.state.children.lock().expect("children lock").drain(..) {
            let _ = child.kill();
            let _ = child.wait();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning the bound
    /// address — the in-process harness for tests.
    pub fn spawn(self) -> SocketAddr {
        let addr = self.local_addr();
        thread::spawn(move || {
            let _ = self.run();
        });
        addr
    }
}

/// Spawns one local shard-worker process per shard and returns their
/// bound addresses, discovered from the `listening on HOST:PORT` line
/// each worker prints on stdout.
fn spawn_local_workers(
    exe: &PathBuf,
    config: &ServeConfig,
    shards: usize,
    children: &mut Vec<Child>,
) -> io::Result<Vec<String>> {
    let mut addrs = Vec::with_capacity(shards);
    for i in 0..shards {
        let store = config.store_dir.join("workers").join(format!("w{i}"));
        let mut child = Command::new(exe)
            .arg("serve")
            .arg("--worker")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--store")
            .arg(&store)
            .arg("--threads")
            .arg(config.threads.max(1).to_string())
            .arg("--workers")
            .arg(config.workers.max(1).to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("shard worker {i} exited before announcing its address"),
                ));
            }
            if let Some(addr) = line
                .split("listening on ")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
            {
                break addr.to_string();
            }
        };
        // Keep the pipe drained so a chatty worker can never block on a
        // full stdout buffer.
        thread::spawn(move || {
            let mut sink = io::sink();
            let _ = io::copy(&mut reader, &mut sink);
        });
        children.push(child);
        addrs.push(addr);
    }
    Ok(addrs)
}

fn handler_loop(state: &Arc<State>, conns: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = match conns.lock().expect("connection queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // accept loop exited
        };
        // Connection-level failures (client hung up mid-request) only end
        // that connection.
        let _ = handle_connection(state, stream);
    }
}

fn worker_loop(state: &Arc<State>, jobs: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        let job = match jobs.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // server dropped
        };
        state.queued.fetch_sub(1, Ordering::SeqCst);
        if state.draining.load(Ordering::SeqCst) {
            // Queued work is dropped, not run: whatever the artifact holds
            // (possibly just the spec) resumes on the next POST.
            state.set_status(&job.id, Status::Cancelled);
            continue;
        }
        state.running.fetch_add(1, Ordering::SeqCst);
        let token = CancelToken::new();
        state
            .active
            .lock()
            .expect("active map lock")
            .insert(job.id.clone(), token.clone());
        state.set_status(&job.id, Status::Running);
        let result = execute_campaign(state, &job, &token);
        state
            .active
            .lock()
            .expect("active map lock")
            .remove(&job.id);
        let status = match result {
            Ok(()) => Status::Complete,
            Err(EngineError::Cancelled) => Status::Cancelled,
            Err(e) => Status::Failed(e.to_string()),
        };
        state.running.fetch_sub(1, Ordering::SeqCst);
        state.set_status(&job.id, status);
    }
}

/// Runs (or resumes) one campaign. A coordinator with a non-trivial
/// [`ShardPlan`] fans out to its shard workers; everything else executes
/// the engine directly, appending missing rows to the artifact and
/// writing the completion marker last. A fired `token` (drain) leaves the
/// artifact as a resumable prefix: rows already appended stay, no marker
/// is written.
fn execute_campaign(state: &Arc<State>, job: &Job, token: &CancelToken) -> Result<(), EngineError> {
    if !job.direct && state.shards > 1 && !state.remote.is_empty() {
        let plan = ShardPlan::new(&job.spec, state.shards)?;
        if !plan.is_trivial() {
            return execute_sharded(state, job, token, &plan);
        }
    }

    let existing = state.store.truncate_ragged_tail(&job.id)?;
    let mut sink = JsonlSink::append(&state.store.rows_path(&job.id))?;

    state.stats.campaigns_run.fetch_add(1, Ordering::Relaxed);
    state
        .stats
        .trials_executed
        .fetch_add(job.spec.flatten().len() as u64, Ordering::Relaxed);

    let notifier = Arc::clone(state);
    let outcome = CampaignRunner::new(job.spec.clone())
        .threads(state.threads)
        .skip_rows(existing)
        .cancel_token(token.clone())
        .on_progress(move |_| notifier.notify())
        .run(&mut sink);
    state.batch_telemetry.absorb(telemetry::take());
    let outcome = outcome?;

    state
        .store
        .mark_complete(&job.id, &job.spec, outcome.rows.len())?;
    Ok(())
}

/// Coordinator path: fetch every shard's sub-artifact concurrently (each
/// cached under its own [`campaign_id`], so only missing shards touch a
/// worker), then append them to the parent artifact strictly in plan
/// order. The reassembled bytes are identical to a serial run — that is
/// [`ShardPlan`]'s contract — so replay/join/resume semantics of the
/// parent id are untouched.
fn execute_sharded(
    state: &Arc<State>,
    job: &Job,
    token: &CancelToken,
    plan: &ShardPlan,
) -> Result<(), EngineError> {
    let existing = state.store.truncate_ragged_tail(&job.id)?;
    state.stats.campaigns_run.fetch_add(1, Ordering::Relaxed);
    state
        .shard_counters
        .queued
        .fetch_add(plan.len() as u64, Ordering::Relaxed);

    let total = plan.len();
    let mut appended = existing;
    let reassembled: Result<(), EngineError> = thread::scope(|scope| {
        let handles: Vec<_> = plan
            .shards()
            .iter()
            .map(|shard| {
                let sid = campaign_id(&shard.spec);
                scope.spawn(move || {
                    let rows = fetch_shard(state, &sid, shard);
                    (sid, rows)
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let (sid, fetched) = handle.join().expect("shard fetch thread");
            let rows = fetched.map_err(EngineError::Io)?;
            let shard = &plan.shards()[i];
            if let Some(expected) = shard.rows {
                if rows != expected {
                    return Err(EngineError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard {sid} returned {rows} rows, plan expected {expected}"),
                    )));
                }
            }
            append_shard(state, &job.id, &sid, shard, rows, &mut appended)?;
            state.shard_counters.done.fetch_add(1, Ordering::Relaxed);
            state.notify();
            eprintln!(
                "dream serve: campaign {} shard {}/{total} reassembled ({appended} rows)",
                job.id,
                i + 1,
            );
            if token.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        Ok(())
    });
    reassembled?;

    state.store.mark_complete(&job.id, &job.spec, appended)?;
    Ok(())
}

/// The per-shard retry budget: each worker gets a short exponential
/// ladder before the coordinator fails over to the next one.
fn shard_policy(state: &State) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(100),
        max_delay: Duration::from_secs(2),
        read_timeout: Duration::from_secs(30),
        connect_timeout: state.read_timeout,
    }
}

/// Ensures shard `sid` is a complete sub-artifact in the coordinator's
/// store, fetching it from a worker when missing, and returns its row
/// count. Workers are tried round-robin starting at the shard's index;
/// each failed worker is marked dead for `/healthz` and the next one
/// takes over — a dead worker costs exactly this shard's re-fetch.
fn fetch_shard(state: &Arc<State>, sid: &str, shard: &Shard) -> io::Result<usize> {
    state.shard_counters.queued.fetch_sub(1, Ordering::Relaxed);
    state.shard_counters.running.fetch_add(1, Ordering::Relaxed);
    let result = fetch_shard_inner(state, sid, shard);
    state.shard_counters.running.fetch_sub(1, Ordering::Relaxed);
    result
}

fn fetch_shard_inner(state: &Arc<State>, sid: &str, shard: &Shard) -> io::Result<usize> {
    if state.store.is_complete(sid) {
        return state.store.existing_row_count(sid);
    }
    state.store.begin(sid, &shard.spec)?;
    let spec_json = shard.spec.to_json();
    let policy = shard_policy(state);
    let mut last_error = io::Error::new(io::ErrorKind::NotConnected, "no shard workers");
    for attempt in 0..state.remote.len() {
        let slot = &state.remote[(shard.index + attempt) % state.remote.len()];
        // Restart the sub-artifact from zero: the client writes only
        // complete rows, and the worker replays cached rows without
        // re-running trials, so this costs a re-stream at most.
        let out = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(state.store.rows_path(sid))?;
        let mut out = io::BufWriter::new(out);
        match fetch_rows(&slot.addr, "/shards", &spec_json, &mut out, &policy) {
            Ok(outcome) => {
                out.flush()?;
                slot.alive.store(true, Ordering::Relaxed);
                state.store.mark_complete(sid, &shard.spec, outcome.rows)?;
                return Ok(outcome.rows);
            }
            Err(e) => {
                slot.alive.store(false, Ordering::Relaxed);
                eprintln!(
                    "dream serve: shard {sid} failed on worker {}: {e}; failing over",
                    slot.addr
                );
                last_error = e;
            }
        }
    }
    Err(last_error)
}

/// Appends shard `sid`'s rows to the parent artifact, skipping whatever
/// prefix an earlier (interrupted) reassembly already persisted — the
/// skip-rows resume landing mid-shard.
fn append_shard(
    state: &Arc<State>,
    parent: &str,
    sid: &str,
    shard: &Shard,
    rows: usize,
    appended: &mut usize,
) -> io::Result<()> {
    let already = appended.saturating_sub(shard.row_offset);
    if already < rows {
        let data = std::fs::read(state.store.rows_path(sid))?;
        let skip = row_byte_offset(&data, already);
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(state.store.rows_path(parent))?;
        out.write_all(&data[skip..])?;
        out.flush()?;
    }
    // Monotonic: a fully covered shard must not pull the watermark back
    // below rows the interrupted reassembly already persisted from the
    // *next* shard.
    *appended = (*appended).max(shard.row_offset + rows);
    Ok(())
}

/// Byte offset where row `rows` starts in a JSONL buffer.
fn row_byte_offset(data: &[u8], rows: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    let mut seen = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == rows {
                return i + 1;
            }
        }
    }
    data.len()
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(state.read_timeout))?;
    stream.set_write_timeout(Some(state.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let request = match Request::read(&mut reader, &state.limits) {
        Ok(None) => return Ok(()),
        Ok(Some(request)) => request,
        Err(e) => {
            // A malformed/oversized/too-slow request gets a proper status
            // and a JSON error body, then the connection closes; only a
            // dead transport is dropped silently.
            if let Some((status, reason, message)) = e.response() {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = error_response(&mut stream, status, reason, &message);
            }
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaigns") => post_campaign(state, stream, &request, false),
        ("POST", "/shards") => post_campaign(state, stream, &request, true),
        ("POST", "/admin/drain") => post_drain(state, &mut stream, false),
        ("POST", "/admin/shutdown") => post_drain(state, &mut stream, true),
        ("GET", "/presets") => get_presets(&mut stream),
        ("GET", "/stats") => get_stats(state, &mut stream),
        ("GET", "/healthz") => get_healthz(state, &mut stream),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/campaigns/") {
                match rest.strip_suffix("/rows") {
                    Some(id) => {
                        let id = id.to_string();
                        get_rows(state, stream, &id)
                    }
                    None => get_status(state, &mut stream, rest),
                }
            } else {
                not_found(&mut stream)
            }
        }
        _ => error_response(&mut stream, 405, "Method Not Allowed", "unsupported method"),
    }
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    error_response(stream, 404, "Not Found", "no such resource")
}

fn error_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    let body = format!("{{\"error\": {}}}\n", json_string(message));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

/// Sheds one submission: `429` (queue full) or `503` (draining), both
/// with the advisory `Retry-After` the client retry layer honors.
fn shed_response(
    state: &Arc<State>,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    state.stats.shed.fetch_add(1, Ordering::Relaxed);
    let retry_after = state.retry_after_secs.to_string();
    let body = format!("{{\"error\": {}}}\n", json_string(message));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[("Retry-After", &retry_after)],
        body.as_bytes(),
    )
}

/// Minimal JSON string escaping for error payloads.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get_presets(stream: &mut TcpStream) -> io::Result<()> {
    let entries: Vec<String> = registry::catalog()
        .into_iter()
        .map(|(name, kind, axis, points, title)| {
            format!(
                "  {{\"name\": {}, \"kind\": {}, \"axis\": {}, \"points\": {points}, \"title\": {}}}",
                json_string(&name),
                json_string(kind),
                json_string(axis),
                json_string(&title)
            )
        })
        .collect();
    let body = format!("[\n{}\n]\n", entries.join(",\n"));
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_stats(state: &Arc<State>, stream: &mut TcpStream) -> io::Result<()> {
    let t = state.batch_telemetry.snapshot();
    let body = format!(
        "{{\"campaigns_run\": {}, \"cache_hits\": {}, \"trials_executed\": {}, \"shed\": {}, \"bad_requests\": {}, \
         \"lanes\": {}, \"evicted\": {}, \"bailed\": {}, \"clean_replays\": {}, \"traces_recorded\": {}, \
         \"eviction_rate\": {:.4}, \"bailout_rate\": {:.4}, \"shards_done\": {}}}\n",
        state.stats.campaigns_run.load(Ordering::Relaxed),
        state.stats.cache_hits.load(Ordering::Relaxed),
        state.stats.trials_executed.load(Ordering::Relaxed),
        state.stats.shed.load(Ordering::Relaxed),
        state.stats.bad_requests.load(Ordering::Relaxed),
        t.lanes,
        t.evicted,
        t.bailed,
        t.clean_replays,
        t.traces_recorded,
        t.eviction_rate(),
        t.bailout_rate(),
        state.shard_counters.done.load(Ordering::Relaxed),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// Liveness + readiness: the CI smoke polls this before the first POST,
/// operators watch `queue_depth` for backpressure, and a sharding
/// coordinator reports its worker topology and shard lifecycle here.
fn get_healthz(state: &Arc<State>, stream: &mut TcpStream) -> io::Result<()> {
    let status = if state.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let campaigns = state.campaigns.lock().expect("campaign map lock").len();
    let alive = state
        .remote
        .iter()
        .filter(|slot| slot.alive.load(Ordering::Relaxed))
        .count();
    let body = format!(
        "{{\"status\": \"{status}\", \"version\": {}, \"workers\": {}, \"queue_depth\": {}, \"queue_capacity\": {}, \"running\": {}, \"campaigns\": {campaigns}, \"trials_executed\": {}, \
         \"shards_configured\": {}, \"shards_queued\": {}, \"shards_running\": {}, \"shards_done\": {}, \
         \"shard_workers_configured\": {}, \"shard_workers_alive\": {alive}}}\n",
        json_string(env!("CARGO_PKG_VERSION")),
        state.workers,
        state.queued.load(Ordering::SeqCst),
        state.queue_capacity,
        state.running.load(Ordering::SeqCst),
        state.stats.trials_executed.load(Ordering::Relaxed),
        state.shards,
        state.shard_counters.queued.load(Ordering::Relaxed),
        state.shard_counters.running.load(Ordering::Relaxed),
        state.shard_counters.done.load(Ordering::Relaxed),
        state.remote.len(),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// Drains the service: stops admitting campaigns, fires every in-flight
/// [`CancelToken`], drops queued jobs, and waits (bounded) for workers to
/// go idle. With `exit` the accept loop is shut down afterwards — the
/// graceful end of the process.
fn post_drain(state: &Arc<State>, stream: &mut TcpStream, exit: bool) -> io::Result<()> {
    state.draining.store(true, Ordering::SeqCst);
    let cancelled = {
        let active = state.active.lock().expect("active map lock");
        for token in active.values() {
            token.cancel();
        }
        active.len()
    };
    state.notify();

    // Bounded wait for in-flight work to stop (cancellation is polled
    // between grid points, so this is quick in practice).
    let deadline = Instant::now() + DRAIN_GRACE;
    while state.in_flight() > 0 && Instant::now() < deadline {
        let guard = state.progress_lock.lock().expect("progress lock");
        let _ = state
            .progress
            .wait_timeout(guard, FOLLOW_POLL)
            .expect("progress lock");
    }
    let idle = state.in_flight() == 0;

    // Respond before releasing the accept loop: once `run` returns the
    // process may exit, and this handler thread must not be killed with
    // the response still unsent.
    let body = format!(
        "{{\"status\": \"draining\", \"cancelled\": {cancelled}, \"idle\": {idle}, \"exiting\": {}}}\n",
        exit && idle
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())?;

    if exit && idle {
        state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(state.bound_addr);
    }
    Ok(())
}

fn get_status(state: &Arc<State>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let info = state
        .campaigns
        .lock()
        .expect("campaign map lock")
        .get(id)
        .cloned();
    let Some(info) = info else {
        return not_found(stream);
    };
    let rows = state.store.existing_row_count(id).unwrap_or(0);
    let error = match &info.status {
        Status::Failed(message) => format!(", \"error\": {}", json_string(message)),
        _ => String::new(),
    };
    let body = format!(
        "{{\"id\": {}, \"status\": {}, \"rows\": {rows}, \"spec_hash\": {}, \"seed\": {}, \"trials_total\": {}{error}}}\n",
        json_string(id),
        json_string(info.status.token()),
        json_string(&spec_hash(&info.spec)),
        info.spec.seed,
        info.spec.flatten().len(),
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn get_rows(state: &Arc<State>, stream: TcpStream, id: &str) -> io::Result<()> {
    if state.status_of(id).is_none() && !state.store.rows_path(id).exists() {
        let mut stream = stream;
        return not_found(&mut stream);
    }
    stream_rows(state, stream, id, "follow")
}

fn post_campaign(
    state: &Arc<State>,
    stream: TcpStream,
    request: &Request,
    direct: bool,
) -> io::Result<()> {
    let mut stream = stream;
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error_response(&mut stream, 400, "Bad Request", "spec body is not UTF-8"),
    };
    let sc = match Scenario::from_json(text) {
        Ok(sc) => sc,
        Err(e) => return error_response(&mut stream, 400, "Bad Request", &e.to_string()),
    };
    if let Err(e) = sc.validate() {
        return error_response(&mut stream, 400, "Bad Request", &e.to_string());
    }
    // Sink negotiation shares the CLI's `--sink` grammar; the service
    // streams jsonl and owns artifact placement, so only a bare `jsonl`
    // (the default) is accepted.
    if let Some(token) = request.query_param("sink") {
        let negotiated = match SinkSpec::parse(token) {
            Ok(spec) => spec,
            Err(e) => return error_response(&mut stream, 400, "Bad Request", &e.to_string()),
        };
        if negotiated.format != SinkFormat::Jsonl || negotiated.out.is_some() {
            return error_response(
                &mut stream,
                400,
                "Bad Request",
                "the campaign service streams jsonl rows and owns artifact placement; use sink=jsonl",
            );
        }
    }
    if state.draining.load(Ordering::SeqCst) {
        return shed_response(
            state,
            &mut stream,
            503,
            "Service Unavailable",
            "service is draining; retry against another instance or after restart",
        );
    }

    let id = campaign_id(&sc);
    enum Admission {
        Stream(&'static str),
        Full,
    }
    let admission = {
        let mut campaigns = state.campaigns.lock().expect("campaign map lock");
        match campaigns.get(&id).map(|info| info.status.clone()) {
            Some(Status::Complete) => Admission::Stream("hit"),
            Some(Status::Failed(_)) | Some(Status::Cancelled) | None
                if state.store.is_complete(&id) =>
            {
                campaigns.insert(
                    id.clone(),
                    CampaignInfo {
                        spec: sc.clone(),
                        status: Status::Complete,
                    },
                );
                Admission::Stream("hit")
            }
            Some(Status::Queued) | Some(Status::Running) => Admission::Stream("join"),
            // Unknown or previously failed/cancelled: (re-)enqueue. Rows
            // already on disk from an interrupted run are kept and skipped
            // over. Admission is bounded: no free queue slot means shed.
            _ => {
                if !state.try_reserve_queue_slot() {
                    Admission::Full
                } else {
                    if let Err(e) = state.store.begin(&id, &sc) {
                        state.queued.fetch_sub(1, Ordering::SeqCst);
                        return Err(e);
                    }
                    campaigns.insert(
                        id.clone(),
                        CampaignInfo {
                            spec: sc.clone(),
                            status: Status::Queued,
                        },
                    );
                    state
                        .jobs
                        .send(Job {
                            id: id.clone(),
                            spec: sc,
                            direct,
                        })
                        .expect("worker pool outlives the listener");
                    Admission::Stream("miss")
                }
            }
        }
    };
    match admission {
        Admission::Full => shed_response(
            state,
            &mut stream,
            429,
            "Too Many Requests",
            "campaign queue is full; backpressure — retry after the interval",
        ),
        Admission::Stream(cache) => {
            if cache == "hit" {
                state.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            stream_rows(state, stream, &id, cache)
        }
    }
}

/// Opens a chunked `application/x-ndjson` response for the row artifact
/// of `id` and hands the connection to the follower poller, which streams
/// the file as workers append until the campaign completes (or fails or
/// is cancelled, in which case the stream ends at the last persisted row
/// and the status endpoint carries the detail).
///
/// The handler thread only writes the (tiny) response head; everything
/// after that is the poller's non-blocking business, so a follower never
/// pins a thread.
fn stream_rows(state: &Arc<State>, stream: TcpStream, id: &str, cache: &str) -> io::Result<()> {
    let mut stream = stream;
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\nX-Campaign-Id: {id}\r\nX-Dream-Cache: {cache}\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    stream.set_nonblocking(true)?;
    state
        .followers
        .send(Follower {
            stream,
            id: id.to_string(),
            offset: 0,
            pending: Vec::new(),
            sent: 0,
            finished: false,
            stalled_since: None,
        })
        .expect("poller outlives the listener");
    // Make sure the poller ships whatever is already on disk promptly.
    state.notify();
    Ok(())
}

/// The follower poller: owns every streaming connection as a non-blocking
/// socket, woken by engine progress notifications (with [`FOLLOW_POLL`]
/// as backstop). Each pass frames fresh artifact bytes into per-follower
/// buffers and pumps them; `WouldBlock` retries next pass, and a stall
/// past the write timeout sheds the follower.
fn poller_loop(state: &Arc<State>, incoming: &mpsc::Receiver<Follower>) {
    let mut followers: Vec<Follower> = Vec::new();
    loop {
        {
            let guard = state.progress_lock.lock().expect("progress lock");
            let _ = state
                .progress
                .wait_timeout(guard, FOLLOW_POLL)
                .expect("progress lock");
        }
        loop {
            match incoming.try_recv() {
                Ok(follower) => followers.push(follower),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    if followers.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }
        followers.retain_mut(|follower| pump_follower(state, follower));
    }
}

/// Advances one follower as far as the artifact and the socket allow.
/// Returns `false` when the connection is finished, dead, or shed.
fn pump_follower(state: &Arc<State>, f: &mut Follower) -> bool {
    loop {
        // Drain the framed bytes first.
        while f.sent < f.pending.len() {
            match f.stream.write(&f.pending[f.sent..]) {
                Ok(0) => return false,
                Ok(n) => {
                    f.sent += n;
                    f.stalled_since = None;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let since = *f.stalled_since.get_or_insert_with(Instant::now);
                    // Shed a consumer whose TCP window stayed shut past
                    // the write timeout — the slow-follower guard.
                    return since.elapsed() <= state.write_timeout;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        f.pending.clear();
        f.sent = 0;
        if f.finished {
            let _ = f.stream.flush();
            return false;
        }

        // Status first, bytes second: when the status already says
        // "done", every row was on disk before we read (the worker marks
        // completion after its sink finished), so the read below cannot
        // miss a tail.
        let status = state.status_of(&f.id);
        let done = !matches!(status, Some(Status::Queued) | Some(Status::Running));

        let mut framed = false;
        match std::fs::File::open(state.store.rows_path(&f.id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => return false,
            Ok(mut file) => {
                if file.seek(SeekFrom::Start(f.offset)).is_err() {
                    return false;
                }
                let mut fresh = Vec::new();
                if file.take(FILL_CAP as u64).read_to_end(&mut fresh).is_err() {
                    return false;
                }
                // Only ship whole rows: a concurrent append can land
                // between the worker's write syscalls.
                let boundary = fresh.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                if boundary > 0 {
                    frame_chunk(&mut f.pending, &fresh[..boundary]);
                    f.offset += boundary as u64;
                    framed = true;
                }
            }
        }
        if !framed {
            if done {
                f.pending.extend_from_slice(b"0\r\n\r\n");
                f.finished = true;
                continue;
            }
            // Idle: nothing new on disk — wait for the next notification.
            return true;
        }
        // Freshly framed bytes: loop back and pump them out.
    }
}

/// Frames `data` as one HTTP chunk into `out` (the buffered counterpart
/// of [`crate::http::ChunkedBody::chunk`]).
fn frame_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}
