//! A fault-injecting TCP proxy for exercising the campaign service's
//! failure paths from real sockets.
//!
//! [`ChaosProxy`] listens on an ephemeral port and forwards each accepted
//! connection to a fixed upstream, applying the next [`Fault`] popped
//! from its queue (connections beyond the queue pass through untouched).
//! Faults model the transport failures the retry layer in
//! [`crate::client`] must survive:
//!
//! * [`Fault::Refuse`] — accept, then close immediately (connection
//!   reset before any bytes).
//! * [`Fault::CloseAfter`] — forward N upstream-response bytes, then
//!   sever both directions (truncates a chunked stream mid-chunk).
//! * [`Fault::StallAfter`] — forward N response bytes, then go silent
//!   for a duration before severing (exercises read timeouts /
//!   slow-loris handling from the server's perspective in reverse).
//!
//! The proxy is deliberately dumb: it counts raw bytes, not HTTP frames,
//! so a fault can land anywhere — inside a chunk header, mid-row, or
//! between the status line and the body. That arbitrariness is the point.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// One scripted misbehavior, applied to a single proxied connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully (the default when the queue is empty).
    None,
    /// Close the client connection immediately, before contacting the
    /// upstream.
    Refuse,
    /// Forward the request, then cut the connection after this many
    /// upstream-response bytes have been relayed.
    CloseAfter(usize),
    /// Forward this many response bytes, stall for the duration, then
    /// cut the connection.
    StallAfter(usize, Duration),
}

/// Handle to a running proxy; dropping it shuts the listener down.
pub struct ChaosProxy {
    addr: SocketAddr,
    faults: Arc<Mutex<VecDeque<Fault>>>,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Starts a proxy on `127.0.0.1:0` forwarding to `upstream`.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn start(upstream: SocketAddr) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let faults: Arc<Mutex<VecDeque<Fault>>> = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_faults = Arc::clone(&faults);
        let accept_stop = Arc::clone(&stop);
        thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { break };
                let fault = accept_faults
                    .lock()
                    .expect("fault queue poisoned")
                    .pop_front()
                    .unwrap_or(Fault::None);
                thread::spawn(move || {
                    let _ = proxy_connection(client, upstream, fault);
                });
            }
        });
        Ok(ChaosProxy { addr, faults, stop })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queues a fault for the next not-yet-scripted connection.
    pub fn push(&self, fault: Fault) {
        self.faults
            .lock()
            .expect("fault queue poisoned")
            .push_back(fault);
    }

    /// Faults queued but not yet consumed by a connection.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.faults.lock().expect("fault queue poisoned").len()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept so the thread can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Relays one connection under `fault`.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) -> io::Result<()> {
    if fault == Fault::Refuse {
        let _ = client.shutdown(Shutdown::Both);
        return Ok(());
    }
    let server = TcpStream::connect(upstream)?;

    // Request direction: client -> upstream, forwarded faithfully.
    let mut client_read = client.try_clone()?;
    let mut server_write = server.try_clone()?;
    let up = thread::spawn(move || {
        let _ = pump(&mut client_read, &mut server_write, usize::MAX, None);
        let _ = server_write.shutdown(Shutdown::Write);
    });

    // Response direction: upstream -> client, where faults land.
    let (budget, stall) = match fault {
        Fault::None | Fault::Refuse => (usize::MAX, None),
        Fault::CloseAfter(n) => (n, None),
        Fault::StallAfter(n, pause) => (n, Some(pause)),
    };
    let mut server_read = server.try_clone()?;
    let mut client_write = client.try_clone()?;
    let _ = pump(&mut server_read, &mut client_write, budget, stall);

    // Budget exhausted (or upstream EOF): sever both directions so the
    // client sees a hard cut, not a half-open socket.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = up.join();
    Ok(())
}

/// Copies up to `budget` bytes from `src` to `dst`; on budget exhaustion
/// optionally sleeps `stall` before returning.
fn pump(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    budget: usize,
    stall: Option<Duration>,
) -> io::Result<usize> {
    let mut remaining = budget;
    let mut total = 0usize;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let want = buf.len().min(remaining);
        let n = match src.read(&mut buf[..want]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if dst.write_all(&buf[..n]).is_err() {
            break;
        }
        let _ = dst.flush();
        total += n;
        remaining -= n;
    }
    if remaining == 0 {
        if let Some(pause) = stall {
            thread::sleep(pause);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// One-shot echo upstream: accepts a single connection, reads one
    /// line, writes `payload` back, closes.
    fn echo_upstream(payload: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let addr = listener.local_addr().expect("addr");
        thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                let mut w = stream;
                let _ = w.write_all(payload);
            }
        });
        addr
    }

    fn round_trip(proxy: &ChaosProxy) -> Vec<u8> {
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect proxy");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(b"hello\n").expect("send");
        let mut got = Vec::new();
        let _ = stream.read_to_end(&mut got);
        got
    }

    #[test]
    fn passthrough_and_truncation_and_refusal() {
        let upstream = echo_upstream(b"0123456789");
        let proxy = ChaosProxy::start(upstream).expect("start proxy");

        // Unscripted connection: full payload.
        assert_eq!(round_trip(&proxy), b"0123456789");

        // Truncated connection: exactly 4 response bytes survive.
        proxy.push(Fault::CloseAfter(4));
        assert_eq!(round_trip(&proxy), b"0123");

        // Refused connection: nothing at all.
        proxy.push(Fault::Refuse);
        assert_eq!(round_trip(&proxy), b"");
        assert_eq!(proxy.pending(), 0);

        // Queue consumed in order; next connection is clean again.
        assert_eq!(round_trip(&proxy), b"0123456789");
    }

    #[test]
    fn stall_delays_the_cut() {
        let upstream = echo_upstream(b"abcdef");
        let proxy = ChaosProxy::start(upstream).expect("start proxy");
        proxy.push(Fault::StallAfter(3, Duration::from_millis(200)));
        let started = std::time::Instant::now();
        let got = round_trip(&proxy);
        assert_eq!(got, b"abc");
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "cut arrived before the stall elapsed"
        );
    }
}
