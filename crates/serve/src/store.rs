//! The content-addressed artifact store: one directory per campaign,
//! keyed on `(spec_hash, seed)`.
//!
//! ```text
//! <root>/<id>/spec.json   the spec as first POSTed (resume + audit)
//! <root>/<id>/rows.jsonl  the streamed row artifact (append-only)
//! <root>/<id>/meta.json   written last — its presence marks completion
//! <root>/<id>/  with no meta.json = an interrupted campaign; the next
//!               POST of the same spec resumes it via skip-rows append
//! <root>/quarantine/<id>[-N]/  artifacts whose completion marker lied
//!               (torn meta, checksum mismatch) — kept for autopsy, never
//!               served; the campaign re-runs from scratch
//! ```
//!
//! The id is `{spec_hash}-{seed:016x}` where `spec_hash` is the first 16
//! hex digits of the SHA-256 of the **canonical** spec JSON
//! ([`canonical_spec_json`]): presentation fields (`name`, `title`,
//! `sink`) are normalized away and the seed is zeroed, so two submissions
//! that would produce identical rows share one artifact, and the seed —
//! the one knob that changes rows without changing shape — stays legible
//! in the id instead of hiding in the digest.
//!
//! # Crash safety
//!
//! The completion marker is the store's only trust anchor, so it is
//! written to survive `kill -9` and torn disk writes: the rows file is
//! fsynced first, its SHA-256 goes *into* the marker, and the marker
//! itself lands via temp-file + atomic rename with the file and its
//! parent directory both fsynced. On preload, [`Store::verify`] replays
//! that contract — a marker that does not parse, names a row count the
//! artifact doesn't have, or checksums bytes that are not on disk sends
//! the whole campaign directory to `quarantine/` instead of serving bad
//! bytes; the deterministic engine simply re-runs the spec.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dream_sim::scenario::{Scenario, SinkSpec};

use crate::hash::sha256_hex;

/// Name of the sub-directory corrupt artifacts are moved to.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Canonicalizes `sc` for hashing: presentation fields cleared, seed
/// zeroed (it is keyed separately), everything else verbatim.
pub fn canonical_spec_json(sc: &Scenario) -> String {
    let mut canonical = sc.clone();
    canonical.name = "campaign".to_string();
    canonical.title = String::new();
    canonical.sink = SinkSpec::default();
    canonical.seed = 0;
    canonical.to_json()
}

/// The first 16 hex digits of the SHA-256 of [`canonical_spec_json`].
pub fn spec_hash(sc: &Scenario) -> String {
    sha256_hex(canonical_spec_json(sc).as_bytes())[..16].to_string()
}

/// The store key of `sc`: `{spec_hash}-{seed:016x}`.
pub fn campaign_id(sc: &Scenario) -> String {
    format!("{}-{:016x}", spec_hash(sc), sc.seed)
}

/// The parsed completion marker of one campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Rows the artifact held when the campaign completed.
    pub rows: usize,
    /// SHA-256 (hex) of the complete `rows.jsonl` bytes.
    pub rows_sha256: String,
}

/// The integrity verdict of one on-disk campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Integrity {
    /// Marker present, checksum and row count match the artifact.
    Verified,
    /// No completion marker — an interrupted campaign (resumable, not
    /// corrupt).
    Incomplete,
    /// The marker and the artifact disagree; the reason says how.
    Corrupt(String),
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, fsync, atomic rename over the destination, fsync of the
/// parent directory so the rename itself is durable.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| "atomic".to_string())
    ));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename needs the directory entry flushed too.
    fs::File::open(parent)?.sync_all()
}

/// Extracts `"key": <json scalar>` from a flat JSON object — the store's
/// meta files are written by us and only hold scalars, so a real parser
/// would be dead weight. Returns the raw token (quotes stripped for
/// strings).
fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = body[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// A directory of campaign artifacts addressed by [`campaign_id`].
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<Store> {
        fs::create_dir_all(root)?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of campaign `id`.
    pub fn dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// The row artifact of campaign `id`.
    pub fn rows_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("rows.jsonl")
    }

    /// The stored spec of campaign `id`.
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("spec.json")
    }

    /// The completion marker of campaign `id`.
    pub fn meta_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("meta.json")
    }

    /// The quarantine root (`<store>/quarantine`).
    pub fn quarantine_root(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// Prepares the directory of campaign `id` and records its spec
    /// (atomically — a crash mid-write must not leave a torn spec where a
    /// resumable one stood). Idempotent: re-beginning an interrupted
    /// campaign keeps its rows.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn begin(&self, id: &str, sc: &Scenario) -> io::Result<()> {
        fs::create_dir_all(self.dir(id))?;
        write_atomic(&self.spec_path(id), sc.to_json().as_bytes())
    }

    /// True when campaign `id` finished (its meta marker exists).
    pub fn is_complete(&self, id: &str) -> bool {
        self.meta_path(id).exists()
    }

    /// The number of complete (newline-terminated) rows currently in the
    /// artifact of campaign `id`; 0 when it has none. A ragged final line
    /// (a write cut mid-row by a crash) is not counted.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than the file not existing.
    pub fn existing_row_count(&self, id: &str) -> io::Result<usize> {
        match fs::read(self.rows_path(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
            Ok(bytes) => Ok(bytes.iter().filter(|&&b| b == b'\n').count()),
        }
    }

    /// Repairs the artifact of campaign `id` for appending: truncates a
    /// ragged final line (no trailing newline) so the next append starts
    /// on a row boundary. Returns the surviving row count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn truncate_ragged_tail(&self, id: &str) -> io::Result<usize> {
        let path = self.rows_path(id);
        let mut file = match fs::OpenOptions::new().read(true).write(true).open(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            other => other?,
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        if keep < bytes.len() {
            file.set_len(keep as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(bytes[..keep].iter().filter(|&&b| b == b'\n').count())
    }

    /// Marks campaign `id` complete with its final row count. Written
    /// last, after every row is on disk — the marker's existence is the
    /// completion contract, so the rows file is fsynced first, its
    /// checksum is recorded in the marker, and the marker lands via
    /// [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn mark_complete(&self, id: &str, sc: &Scenario, rows: usize) -> io::Result<()> {
        let rows_bytes = match fs::read(self.rows_path(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            other => other?,
        };
        if self.rows_path(id).exists() {
            // The marker attests to these bytes: they must hit the platter
            // before it does.
            fs::File::open(self.rows_path(id))?.sync_all()?;
        }
        let digest = sha256_hex(&rows_bytes);
        let meta = format!(
            "{{\"id\": \"{id}\", \"spec_hash\": \"{}\", \"seed\": {}, \"rows\": {rows}, \"rows_sha256\": \"{digest}\"}}\n",
            spec_hash(sc),
            sc.seed
        );
        write_atomic(&self.meta_path(id), meta.as_bytes())
    }

    /// Reads and parses the completion marker of campaign `id`.
    /// `Ok(None)` when the marker does not exist.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the marker exists but does not parse (torn
    /// write) — callers treat that as corruption, not absence.
    pub fn read_meta(&self, id: &str) -> io::Result<Option<Meta>> {
        let text = match fs::read_to_string(self.meta_path(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            other => other?,
        };
        let parse = || -> Option<Meta> {
            let rows: usize = json_field(&text, "rows")?.parse().ok()?;
            let rows_sha256 = json_field(&text, "rows_sha256")?.to_string();
            if rows_sha256.len() != 64 || !rows_sha256.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            Some(Meta { rows, rows_sha256 })
        };
        parse().map(Some).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("meta.json of {id} is torn or from an older format"),
            )
        })
    }

    /// Checks the completion marker of campaign `id` against the bytes
    /// actually on disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (other than not-found, which is a
    /// verdict, not an error).
    pub fn verify(&self, id: &str) -> io::Result<Integrity> {
        let meta = match self.read_meta(id) {
            Ok(None) => return Ok(Integrity::Incomplete),
            Ok(Some(meta)) => meta,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(Integrity::Corrupt(e.to_string()))
            }
            Err(e) => return Err(e),
        };
        let rows_bytes = match fs::read(self.rows_path(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(Integrity::Corrupt(
                    "meta.json present but rows.jsonl missing".to_string(),
                ))
            }
            other => other?,
        };
        let digest = sha256_hex(&rows_bytes);
        if digest != meta.rows_sha256 {
            return Ok(Integrity::Corrupt(format!(
                "rows.jsonl checksum mismatch (meta {}, disk {})",
                &meta.rows_sha256[..16.min(meta.rows_sha256.len())],
                &digest[..16]
            )));
        }
        let rows = rows_bytes.iter().filter(|&&b| b == b'\n').count();
        if rows != meta.rows {
            return Ok(Integrity::Corrupt(format!(
                "row count mismatch (meta {}, disk {rows})",
                meta.rows
            )));
        }
        Ok(Integrity::Verified)
    }

    /// Moves the whole directory of campaign `id` into the quarantine,
    /// recording `reason` alongside, and returns the destination. The
    /// campaign then looks unknown to the store and re-runs from scratch.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn quarantine(&self, id: &str, reason: &str) -> io::Result<PathBuf> {
        let qroot = self.quarantine_root();
        fs::create_dir_all(&qroot)?;
        let mut dest = qroot.join(id);
        let mut n = 1;
        while dest.exists() {
            dest = qroot.join(format!("{id}-{n}"));
            n += 1;
        }
        fs::rename(self.dir(id), &dest)?;
        fs::write(dest.join("quarantine_reason.txt"), format!("{reason}\n"))?;
        Ok(dest)
    }

    /// Every campaign on disk: `(id, spec, complete)`. The quarantine
    /// sub-directory is skipped, as are directories whose spec no longer
    /// parses (a newer spec vocabulary may have obsoleted them) — the
    /// store never fails to open over them.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn scan(&self) -> io::Result<Vec<(String, Scenario, bool)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let id = entry.file_name().to_string_lossy().to_string();
            if id == QUARANTINE_DIR {
                continue;
            }
            let Ok(text) = fs::read_to_string(self.spec_path(&id)) else {
                continue;
            };
            let Ok(sc) = Scenario::from_json(&text) else {
                continue;
            };
            let complete = self.is_complete(&id);
            found.push((id, sc, complete));
        }
        found.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_sim::scenario::registry;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("dream_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    #[test]
    fn presentation_fields_do_not_change_the_address() {
        let base = registry::get("fig2", true).unwrap();
        let mut renamed = base.clone();
        renamed.name = "my-campaign".into();
        renamed.title = "same physics, different label".into();
        renamed.sink = SinkSpec::parse("jsonl:elsewhere").unwrap();
        assert_eq!(campaign_id(&base), campaign_id(&renamed));

        let mut reseeded = base.clone();
        reseeded.seed += 1;
        assert_eq!(spec_hash(&base), spec_hash(&reseeded));
        assert_ne!(campaign_id(&base), campaign_id(&reseeded));

        let mut retrialed = base;
        retrialed.trials += 1;
        assert_ne!(
            spec_hash(&registry::get("fig2", true).unwrap()),
            spec_hash(&retrialed)
        );
    }

    #[test]
    fn ids_are_filesystem_safe_and_seed_legible() {
        let sc = registry::get("fig4", true).unwrap();
        let id = campaign_id(&sc);
        assert_eq!(id.len(), 16 + 1 + 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit() || c == '-'));
        assert!(id.ends_with(&format!("{:016x}", sc.seed)));
    }

    #[test]
    fn lifecycle_begin_append_complete() {
        let store = temp_store("lifecycle");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        assert!(!store.is_complete(&id));
        assert_eq!(store.existing_row_count(&id).unwrap(), 0);
        assert_eq!(store.verify(&id).unwrap(), Integrity::Incomplete);

        fs::write(store.rows_path(&id), "{\"a\": 1}\n{\"a\": 2}\n").unwrap();
        assert_eq!(store.existing_row_count(&id).unwrap(), 2);

        store.mark_complete(&id, &sc, 2).unwrap();
        assert!(store.is_complete(&id));
        assert_eq!(store.verify(&id).unwrap(), Integrity::Verified);
        // The atomic write leaves no temp file behind.
        assert!(!store.dir(&id).join("meta.json.tmp").exists());
        let meta = store.read_meta(&id).unwrap().unwrap();
        assert_eq!(meta.rows, 2);
        assert_eq!(
            meta.rows_sha256,
            sha256_hex(b"{\"a\": 1}\n{\"a\": 2}\n"),
            "marker must checksum the artifact bytes"
        );
        let scan = store.scan().unwrap();
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0].0, id);
        assert_eq!(scan[0].1, sc);
        assert!(scan[0].2);
    }

    #[test]
    fn ragged_tails_are_truncated_to_a_row_boundary() {
        let store = temp_store("ragged");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        fs::write(store.rows_path(&id), "{\"a\": 1}\n{\"a\": 2}\n{\"a\"").unwrap();
        // Read-only counting ignores the ragged tail…
        assert_eq!(store.existing_row_count(&id).unwrap(), 2);
        // …and repair removes it so appends start on a row boundary.
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 2);
        assert_eq!(
            fs::read_to_string(store.rows_path(&id)).unwrap(),
            "{\"a\": 1}\n{\"a\": 2}\n"
        );
    }

    #[test]
    fn truncate_ragged_tail_edge_cases() {
        let store = temp_store("ragged_edges");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();

        // Missing file: nothing to repair, zero rows.
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 0);

        // Empty file: stays empty, zero rows.
        fs::write(store.rows_path(&id), "").unwrap();
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 0);
        assert_eq!(fs::read(store.rows_path(&id)).unwrap(), b"");

        // A single partial line (crash inside the very first row): the
        // whole file is the ragged tail.
        fs::write(store.rows_path(&id), "{\"a\": ").unwrap();
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 0);
        assert_eq!(fs::read(store.rows_path(&id)).unwrap(), b"");

        // A trailing newline-only tail is already on a row boundary —
        // nothing is cut, nothing is counted twice.
        fs::write(store.rows_path(&id), "{\"a\": 1}\n\n").unwrap();
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 2);
        assert_eq!(fs::read(store.rows_path(&id)).unwrap(), b"{\"a\": 1}\n\n");

        // CRLF endings: the CR belongs to the row, the LF terminates it;
        // a complete CRLF row survives, a ragged tail after it is cut.
        fs::write(store.rows_path(&id), "{\"a\": 1}\r\n{\"b\"").unwrap();
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 1);
        assert_eq!(fs::read(store.rows_path(&id)).unwrap(), b"{\"a\": 1}\r\n");
        assert_eq!(store.existing_row_count(&id).unwrap(), 1);
    }

    #[test]
    fn tampered_rows_fail_verification_and_quarantine_moves_them() {
        let store = temp_store("tamper");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        fs::write(store.rows_path(&id), "{\"a\": 1}\n").unwrap();
        store.mark_complete(&id, &sc, 1).unwrap();
        assert_eq!(store.verify(&id).unwrap(), Integrity::Verified);

        // Bit-rot: one byte flips after completion.
        fs::write(store.rows_path(&id), "{\"a\": 9}\n").unwrap();
        let verdict = store.verify(&id).unwrap();
        assert!(
            matches!(&verdict, Integrity::Corrupt(r) if r.contains("checksum")),
            "{verdict:?}"
        );

        let dest = store.quarantine(&id, "checksum mismatch in test").unwrap();
        assert!(dest.starts_with(store.quarantine_root()));
        assert!(!store.dir(&id).exists(), "campaign dir must be gone");
        assert!(dest.join("rows.jsonl").exists(), "evidence preserved");
        assert!(fs::read_to_string(dest.join("quarantine_reason.txt"))
            .unwrap()
            .contains("checksum"));
        // The store no longer knows the campaign (scan skips quarantine).
        assert!(store.scan().unwrap().is_empty());

        // Quarantining a fresh incarnation of the same id does not clobber
        // the first autopsy.
        store.begin(&id, &sc).unwrap();
        let dest2 = store.quarantine(&id, "second failure").unwrap();
        assert_ne!(dest, dest2);
    }

    #[test]
    fn torn_meta_and_row_count_lies_are_corrupt() {
        let store = temp_store("torn_meta");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        fs::write(store.rows_path(&id), "{\"a\": 1}\n").unwrap();

        // A torn marker (crash mid-write of a pre-atomic store, or cosmic
        // rays) parses as corruption, not completion.
        fs::write(store.meta_path(&id), "{\"id\": \"abc\", \"row").unwrap();
        assert!(matches!(store.verify(&id).unwrap(), Integrity::Corrupt(_)));

        // A marker whose row count disagrees with the artifact is corrupt
        // even when its checksum field matches the bytes.
        let digest = sha256_hex(b"{\"a\": 1}\n");
        fs::write(
            store.meta_path(&id),
            format!("{{\"rows\": 7, \"rows_sha256\": \"{digest}\"}}\n"),
        )
        .unwrap();
        let verdict = store.verify(&id).unwrap();
        assert!(
            matches!(&verdict, Integrity::Corrupt(r) if r.contains("row count")),
            "{verdict:?}"
        );

        // A marker over a missing artifact is corrupt too.
        fs::remove_file(store.rows_path(&id)).unwrap();
        fs::write(
            store.meta_path(&id),
            format!("{{\"rows\": 1, \"rows_sha256\": \"{digest}\"}}\n"),
        )
        .unwrap();
        assert!(matches!(store.verify(&id).unwrap(), Integrity::Corrupt(_)));
    }

    #[test]
    fn json_field_extracts_strings_and_numbers() {
        let body = "{\"id\": \"abc-def\", \"rows\": 42, \"rows_sha256\": \"00ff\"}";
        assert_eq!(json_field(body, "id"), Some("abc-def"));
        assert_eq!(json_field(body, "rows"), Some("42"));
        assert_eq!(json_field(body, "rows_sha256"), Some("00ff"));
        assert_eq!(json_field(body, "missing"), None);
    }
}
