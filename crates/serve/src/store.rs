//! The content-addressed artifact store: one directory per campaign,
//! keyed on `(spec_hash, seed)`.
//!
//! ```text
//! <root>/<id>/spec.json   the spec as first POSTed (resume + audit)
//! <root>/<id>/rows.jsonl  the streamed row artifact (append-only)
//! <root>/<id>/meta.json   written last — its presence marks completion
//! <root>/<id>/  with no meta.json = an interrupted campaign; the next
//!               POST of the same spec resumes it via skip-rows append
//! ```
//!
//! The id is `{spec_hash}-{seed:016x}` where `spec_hash` is the first 16
//! hex digits of the SHA-256 of the **canonical** spec JSON
//! ([`canonical_spec_json`]): presentation fields (`name`, `title`,
//! `sink`) are normalized away and the seed is zeroed, so two submissions
//! that would produce identical rows share one artifact, and the seed —
//! the one knob that changes rows without changing shape — stays legible
//! in the id instead of hiding in the digest.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dream_sim::scenario::{Scenario, SinkSpec};

use crate::hash::sha256_hex;

/// Canonicalizes `sc` for hashing: presentation fields cleared, seed
/// zeroed (it is keyed separately), everything else verbatim.
pub fn canonical_spec_json(sc: &Scenario) -> String {
    let mut canonical = sc.clone();
    canonical.name = "campaign".to_string();
    canonical.title = String::new();
    canonical.sink = SinkSpec::default();
    canonical.seed = 0;
    canonical.to_json()
}

/// The first 16 hex digits of the SHA-256 of [`canonical_spec_json`].
pub fn spec_hash(sc: &Scenario) -> String {
    sha256_hex(canonical_spec_json(sc).as_bytes())[..16].to_string()
}

/// The store key of `sc`: `{spec_hash}-{seed:016x}`.
pub fn campaign_id(sc: &Scenario) -> String {
    format!("{}-{:016x}", spec_hash(sc), sc.seed)
}

/// A directory of campaign artifacts addressed by [`campaign_id`].
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<Store> {
        fs::create_dir_all(root)?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of campaign `id`.
    pub fn dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// The row artifact of campaign `id`.
    pub fn rows_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("rows.jsonl")
    }

    /// The stored spec of campaign `id`.
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("spec.json")
    }

    /// The completion marker of campaign `id`.
    pub fn meta_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("meta.json")
    }

    /// Prepares the directory of campaign `id` and records its spec.
    /// Idempotent: re-beginning an interrupted campaign keeps its rows.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn begin(&self, id: &str, sc: &Scenario) -> io::Result<()> {
        fs::create_dir_all(self.dir(id))?;
        fs::write(self.spec_path(id), sc.to_json())
    }

    /// True when campaign `id` finished (its meta marker exists).
    pub fn is_complete(&self, id: &str) -> bool {
        self.meta_path(id).exists()
    }

    /// The number of complete (newline-terminated) rows currently in the
    /// artifact of campaign `id`; 0 when it has none. A ragged final line
    /// (a write cut mid-row by a crash) is not counted.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than the file not existing.
    pub fn existing_row_count(&self, id: &str) -> io::Result<usize> {
        match fs::read(self.rows_path(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
            Ok(bytes) => Ok(bytes.iter().filter(|&&b| b == b'\n').count()),
        }
    }

    /// Repairs the artifact of campaign `id` for appending: truncates a
    /// ragged final line (no trailing newline) so the next append starts
    /// on a row boundary. Returns the surviving row count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn truncate_ragged_tail(&self, id: &str) -> io::Result<usize> {
        let path = self.rows_path(id);
        let mut file = match fs::OpenOptions::new().read(true).write(true).open(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            other => other?,
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        if keep < bytes.len() {
            file.set_len(keep as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(bytes[..keep].iter().filter(|&&b| b == b'\n').count())
    }

    /// Marks campaign `id` complete with its final row count. Written
    /// last, after every row is on disk — the marker's existence is the
    /// completion contract.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn mark_complete(&self, id: &str, sc: &Scenario, rows: usize) -> io::Result<()> {
        let mut file = fs::File::create(self.meta_path(id))?;
        writeln!(
            file,
            "{{\"id\": \"{id}\", \"spec_hash\": \"{}\", \"seed\": {}, \"rows\": {rows}}}",
            spec_hash(sc),
            sc.seed
        )
    }

    /// Every campaign on disk: `(id, spec, complete)`. Directories whose
    /// spec no longer parses are skipped (a newer spec vocabulary may
    /// have obsoleted them) — the store never fails to open over them.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn scan(&self) -> io::Result<Vec<(String, Scenario, bool)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let id = entry.file_name().to_string_lossy().to_string();
            let Ok(text) = fs::read_to_string(self.spec_path(&id)) else {
                continue;
            };
            let Ok(sc) = Scenario::from_json(&text) else {
                continue;
            };
            let complete = self.is_complete(&id);
            found.push((id, sc, complete));
        }
        found.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_sim::scenario::registry;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("dream_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    #[test]
    fn presentation_fields_do_not_change_the_address() {
        let base = registry::get("fig2", true).unwrap();
        let mut renamed = base.clone();
        renamed.name = "my-campaign".into();
        renamed.title = "same physics, different label".into();
        renamed.sink = SinkSpec::parse("jsonl:elsewhere").unwrap();
        assert_eq!(campaign_id(&base), campaign_id(&renamed));

        let mut reseeded = base.clone();
        reseeded.seed += 1;
        assert_eq!(spec_hash(&base), spec_hash(&reseeded));
        assert_ne!(campaign_id(&base), campaign_id(&reseeded));

        let mut retrialed = base;
        retrialed.trials += 1;
        assert_ne!(
            spec_hash(&registry::get("fig2", true).unwrap()),
            spec_hash(&retrialed)
        );
    }

    #[test]
    fn ids_are_filesystem_safe_and_seed_legible() {
        let sc = registry::get("fig4", true).unwrap();
        let id = campaign_id(&sc);
        assert_eq!(id.len(), 16 + 1 + 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit() || c == '-'));
        assert!(id.ends_with(&format!("{:016x}", sc.seed)));
    }

    #[test]
    fn lifecycle_begin_append_complete() {
        let store = temp_store("lifecycle");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        assert!(!store.is_complete(&id));
        assert_eq!(store.existing_row_count(&id).unwrap(), 0);

        fs::write(store.rows_path(&id), "{\"a\": 1}\n{\"a\": 2}\n").unwrap();
        assert_eq!(store.existing_row_count(&id).unwrap(), 2);

        store.mark_complete(&id, &sc, 2).unwrap();
        assert!(store.is_complete(&id));
        let scan = store.scan().unwrap();
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0].0, id);
        assert_eq!(scan[0].1, sc);
        assert!(scan[0].2);
    }

    #[test]
    fn ragged_tails_are_truncated_to_a_row_boundary() {
        let store = temp_store("ragged");
        let sc = registry::get("fig2", true).unwrap();
        let id = campaign_id(&sc);
        store.begin(&id, &sc).unwrap();
        fs::write(store.rows_path(&id), "{\"a\": 1}\n{\"a\": 2}\n{\"a\"").unwrap();
        // Read-only counting ignores the ragged tail…
        assert_eq!(store.existing_row_count(&id).unwrap(), 2);
        // …and repair removes it so appends start on a row boundary.
        assert_eq!(store.truncate_ragged_tail(&id).unwrap(), 2);
        assert_eq!(
            fs::read_to_string(store.rows_path(&id)).unwrap(),
            "{\"a\": 1}\n{\"a\": 2}\n"
        );
    }
}
