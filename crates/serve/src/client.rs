//! The retrying campaign client: the CLI-side counterpart of the
//! service's backpressure and crash-safety story.
//!
//! [`fetch_campaign`] POSTs a spec and streams the chunked JSONL response
//! into the caller's writer, surviving everything the transport can throw
//! at it:
//!
//! * **Sheds** (`429` queue-full, `503` draining) sleep out the server's
//!   `Retry-After` and resubmit — backpressure is honored, not fought.
//! * **Transport faults** (refused connects, resets, stalls past the read
//!   timeout, streams truncated mid-chunk) retry with exponential backoff
//!   plus deterministic jitter.
//! * **Interrupted streams resume**: only complete rows are ever written
//!   out, their count is carried across attempts, and each retry skips
//!   that prefix of the (byte-identical, deterministically replayed)
//!   stream — so the assembled output is exactly the artifact, no matter
//!   how many times the connection died.
//!
//! Permanent client errors (`400` malformed spec and friends) fail fast —
//! retrying them would never succeed.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::hash::sha256;
use crate::http::read_response_head;

/// Retry/backoff knobs of one [`fetch_campaign`] call.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Streams opened before giving up (connects that reach a verdict —
    /// sheds count too).
    pub max_attempts: u32,
    /// First backoff delay; doubles per consecutive transport failure.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read timeout — a stream that stalls longer is treated as
    /// interrupted and retried.
    pub read_timeout: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// What one completed [`fetch_campaign`] did.
#[derive(Clone, Debug, Default)]
pub struct FetchOutcome {
    /// Complete rows written to the output.
    pub rows: usize,
    /// Streams opened (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts answered with `429`/`503` + `Retry-After`.
    pub throttled: u32,
    /// Rows skipped on retries because an earlier stream already
    /// delivered them — nonzero means a mid-stream resume happened.
    pub resumed_rows: usize,
    /// The last `X-Dream-Cache` header seen (`hit`/`join`/`miss`).
    pub cache: Option<String>,
}

/// How one streaming attempt ended.
enum Attempt {
    /// The chunked body terminated cleanly after `rows` total rows.
    Complete { rows: usize, cache: Option<String> },
    /// The server shed the submission; sleep and resubmit.
    Throttled { retry_after: Option<Duration> },
    /// The stream died mid-flight; `rows_done` complete rows are safely
    /// in the output so far.
    Interrupted { rows_done: usize },
    /// A non-retryable HTTP error (4xx other than 429).
    Fatal { status: u16, body: String },
}

/// POSTs `spec_json` to `http://{addr}/campaigns` and streams the JSONL
/// rows into `out`, retrying per `policy` until the artifact is complete.
///
/// # Errors
///
/// Fails on permanent (4xx) server verdicts, on output-write failures,
/// and when `policy.max_attempts` streams all died.
pub fn fetch_campaign(
    addr: &str,
    spec_json: &str,
    out: &mut dyn Write,
    policy: &RetryPolicy,
) -> io::Result<FetchOutcome> {
    fetch_rows(addr, "/campaigns", spec_json, out, policy)
}

/// [`fetch_campaign`] against an arbitrary row-streaming target — the
/// coordinator uses `"/shards"` to pull shard sub-artifacts from workers
/// over exactly the same retry/resume machinery.
///
/// # Errors
///
/// As for [`fetch_campaign`].
pub fn fetch_rows(
    addr: &str,
    target: &str,
    spec_json: &str,
    out: &mut dyn Write,
    policy: &RetryPolicy,
) -> io::Result<FetchOutcome> {
    let mut outcome = FetchOutcome::default();
    let mut rows_done = 0usize;
    let mut delay = policy.base_delay;
    let mut last_error = String::new();
    while outcome.attempts < policy.max_attempts {
        outcome.attempts += 1;
        match try_stream(addr, target, spec_json, rows_done, out, policy) {
            Ok(Attempt::Complete { rows, cache }) => {
                outcome.rows = rows;
                outcome.resumed_rows = rows_done.min(rows);
                outcome.cache = cache;
                return Ok(outcome);
            }
            Ok(Attempt::Throttled { retry_after }) => {
                outcome.throttled += 1;
                last_error = "server shed the submission (backpressure)".to_string();
                if outcome.attempts >= policy.max_attempts {
                    break;
                }
                // Honor the server's interval when it names one; it knows
                // its queue better than our backoff curve does.
                let wait = retry_after.unwrap_or(delay);
                std::thread::sleep(wait + jitter(wait, outcome.attempts));
            }
            Ok(Attempt::Interrupted { rows_done: done }) => {
                rows_done = rows_done.max(done);
                last_error = "stream interrupted mid-flight".to_string();
                if outcome.attempts >= policy.max_attempts {
                    break;
                }
                std::thread::sleep(delay + jitter(delay, outcome.attempts));
                delay = (delay * 2).min(policy.max_delay);
            }
            Ok(Attempt::Fatal { status, body }) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "server rejected the campaign (HTTP {status}): {}",
                        body.trim()
                    ),
                ));
            }
            Err(e) => {
                // Connect-level failure (refused, unreachable, reset
                // before the status line) — same retry path as a
                // mid-stream interruption.
                last_error = e.to_string();
                if outcome.attempts >= policy.max_attempts {
                    break;
                }
                std::thread::sleep(delay + jitter(delay, outcome.attempts));
                delay = (delay * 2).min(policy.max_delay);
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        format!(
            "campaign fetch gave up after {} attempts ({} throttled): {last_error}",
            outcome.attempts, outcome.throttled
        ),
    ))
}

/// Deterministic jitter in `[0, base/2]`, derived from the attempt number
/// and process id — decorrelates a fleet of retrying clients without a
/// RNG dependency.
fn jitter(base: Duration, attempt: u32) -> Duration {
    let mut salt = [0u8; 8];
    salt[..4].copy_from_slice(&std::process::id().to_le_bytes());
    salt[4..].copy_from_slice(&attempt.to_le_bytes());
    let digest = sha256(&salt);
    let frac = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) % 1024;
    base.mul_f64(frac as f64 / 2048.0)
}

/// Opens one stream and pumps it: complete rows beyond `rows_done` go to
/// `out` immediately, so even a stream that dies delivered everything it
/// could.
///
/// Output-write failures abort the whole fetch (`Err` from the inner
/// write is not retryable) — they surface as `Fatal` via the `?` below
/// reaching the caller as a hard error.
fn try_stream(
    addr: &str,
    target: &str,
    spec_json: &str,
    rows_done: usize,
    out: &mut dyn Write,
    policy: &RetryPolicy,
) -> io::Result<Attempt> {
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("bad address {addr}"))
    })?;
    let stream = TcpStream::connect_timeout(&socket_addr, policy.connect_timeout)?;
    stream.set_read_timeout(Some(policy.read_timeout))?;
    stream.set_write_timeout(Some(policy.read_timeout))?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "POST {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        spec_json.len()
    )?;
    writer.write_all(spec_json.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let (status, headers) = read_response_head(&mut reader)?;
    match status {
        200 => {}
        429 | 503 => {
            let retry_after = headers
                .get("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs);
            return Ok(Attempt::Throttled { retry_after });
        }
        _ => {
            let mut body = Vec::new();
            let _ = reader.read_to_end(&mut body);
            return Ok(Attempt::Fatal {
                status,
                body: String::from_utf8_lossy(&body).to_string(),
            });
        }
    }
    if headers.get("transfer-encoding").map(String::as_str) != Some("chunked") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "campaign stream was not chunked",
        ));
    }
    let cache = headers.get("x-dream-cache").cloned();

    // De-chunk incrementally, committing complete rows as they land.
    let mut seen = 0usize; // complete rows observed in THIS stream
    let mut written = rows_done; // complete rows in the output overall
    let mut line: Vec<u8> = Vec::new();
    loop {
        let size = match read_chunk_size(&mut reader) {
            Ok(size) => size,
            Err(_) => return Ok(Attempt::Interrupted { rows_done: written }),
        };
        if size == 0 {
            // Clean terminator. A whole-row streamer never leaves a
            // partial line here; if one appears the stream is broken.
            if !line.is_empty() {
                return Ok(Attempt::Interrupted { rows_done: written });
            }
            return Ok(Attempt::Complete { rows: seen, cache });
        }
        // Consume the chunk payload incrementally, committing each
        // complete row the moment its newline arrives — a connection cut
        // mid-chunk still leaves every finished row in the output, which
        // is exactly what the next attempt's skip resumes past.
        let mut remaining = size;
        let mut buf = [0u8; 4096];
        while remaining > 0 {
            let want = buf.len().min(remaining);
            let n = match reader.read(&mut buf[..want]) {
                Ok(0) => return Ok(Attempt::Interrupted { rows_done: written }),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Ok(Attempt::Interrupted { rows_done: written }),
            };
            for &byte in &buf[..n] {
                line.push(byte);
                if byte == b'\n' {
                    seen += 1;
                    if seen > rows_done {
                        out.write_all(&line)?;
                        written = written.max(seen);
                    }
                    line.clear();
                }
            }
            remaining -= n;
        }
        let mut crlf = [0u8; 2];
        if read_exact_or_interrupt(&mut reader, &mut crlf).is_err() {
            return Ok(Attempt::Interrupted { rows_done: written });
        }
    }
}

/// Reads one `{hex}\r\n` chunk-size line.
fn read_chunk_size<R: BufRead>(reader: &mut R) -> io::Result<usize> {
    let mut raw = String::new();
    if reader.read_line(&mut raw)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF at chunk boundary",
        ));
    }
    usize::from_str_radix(raw.trim(), 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad chunk size {raw:?}"),
        )
    })
}

/// `read_exact` that treats EOF/timeout as a (retryable) failure.
fn read_exact_or_interrupt<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside chunk",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_bounded_and_deterministic_per_attempt() {
        let base = Duration::from_millis(200);
        for attempt in 0..32 {
            let j = jitter(base, attempt);
            assert!(j <= base / 2, "attempt {attempt}: {j:?}");
            assert_eq!(j, jitter(base, attempt), "same inputs, same jitter");
        }
    }

    #[test]
    fn default_policy_is_patient_but_finite() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 3);
        assert!(p.base_delay < p.max_delay);
    }
}
