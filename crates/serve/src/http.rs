//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`]: just
//! enough protocol for the campaign API — request parsing with a bounded
//! body, plain responses, and chunked transfer encoding for row streams.
//!
//! The workspace vendors no HTTP crate, and the API needs exactly four
//! verbs worth of surface, so the layer is hand-rolled and std-only.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request head (start line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body in bytes — campaign specs are small.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/campaigns/abc`).
    pub path: String,
    /// The raw query string after `?`, empty when absent.
    pub query: String,
    /// Header map with lower-cased names.
    headers: HashMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from `reader`.
    ///
    /// # Errors
    ///
    /// `Ok(None)` on a cleanly closed connection (EOF before any bytes);
    /// `Err` on malformed requests, oversized heads/bodies, or transport
    /// failures.
    pub fn read(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
        let start = match read_line(reader)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => return Ok(None),
            Some(line) => line,
        };
        let mut parts = start.split_whitespace();
        let (method, target) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m, t),
            _ => return Err(bad(format!("malformed request line {start:?}"))),
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = HashMap::new();
        let mut head_bytes = start.len();
        loop {
            let line = read_line(reader)?.ok_or_else(|| bad("EOF inside headers".into()))?;
            if line.is_empty() {
                break;
            }
            head_bytes += line.len();
            if head_bytes > MAX_HEAD {
                return Err(bad("request head too large".into()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(format!("malformed header line {line:?}")))?;
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }

        let length: usize = match headers.get("content-length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| bad(format!("bad Content-Length {v:?}")))?,
        };
        if length > MAX_BODY {
            return Err(bad(format!("body of {length} bytes exceeds {MAX_BODY}")));
        }
        let mut body = vec![0; length];
        reader.read_exact(&mut body)?;

        Ok(Some(Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body,
        }))
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The value of one `key=value` pair in the query string, if present
    /// (no percent-decoding — the API's tokens don't need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line; `None` at EOF.
fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Writes a complete (non-chunked) response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response body: `start`, any number of `chunk`s,
/// then `finish` (the zero-length terminator).
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedBody<'a> {
    /// Writes the response head and opens the chunked body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start(
        stream: &'a mut TcpStream,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<ChunkedBody<'a>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
        )?;
        for (name, value) in extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.flush()?;
        Ok(ChunkedBody { stream })
    }

    /// Writes one chunk (empty input writes nothing — an empty chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response — the test/CI helper's view.
#[derive(Debug)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Header map with lower-cased names.
    pub headers: HashMap<String, String>,
    /// The body, de-chunked when the response used chunked transfer.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// Minimal HTTP client for tests and smoke scripts: sends one request to
/// `addr` and reads the full (de-chunked) response.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn client_request(addr: &str, method: &str, target: &str, body: &[u8]) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?.ok_or_else(|| bad("no status line".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = HashMap::new();
    loop {
        let line = read_line(&mut reader)?.ok_or_else(|| bad("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let mut body = Vec::new();
    if headers.get("transfer-encoding").map(String::as_str) == Some("chunked") {
        loop {
            let size_line =
                read_line(&mut reader)?.ok_or_else(|| bad("EOF in chunk size".into()))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section (we send none) ends with a blank line.
                let _ = read_line(&mut reader)?;
                break;
            }
            let mut chunk = vec![0; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(length) = headers.get("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| bad(format!("bad Content-Length {length:?}")))?;
        body = vec![0; length];
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}
