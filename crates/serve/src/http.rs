//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`]: just
//! enough protocol for the campaign API — request parsing with a bounded
//! head and body, plain responses, and chunked transfer encoding for row
//! streams.
//!
//! The workspace vendors no HTTP crate, and the API needs exactly four
//! verbs worth of surface, so the layer is hand-rolled and std-only.
//!
//! # Hostile-client posture
//!
//! Parsing never trusts the peer: the request line and every header line
//! are read through [`read_line_bounded`], which buffers at most the
//! head budget no matter how many bytes arrive without a newline, and the
//! whole request is subject to a wall-clock [`ReadLimits::deadline`] — a
//! client trickling one byte per socket-timeout interval (slow loris)
//! exhausts the deadline, not a worker thread. Failures carry a typed
//! [`HttpError`] so the server can answer `400`/`408`/`413`/`431` with a
//! JSON body instead of silently dropping the connection.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Default upper bound on a request head (start line + headers) in bytes.
pub const MAX_HEAD: usize = 16 * 1024;
/// Default upper bound on a request body in bytes — campaign specs are
/// small.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read — each protocol-level variant maps to
/// the HTTP status the server should answer with; [`HttpError::Io`] means
/// the transport itself died and no response can be delivered.
#[derive(Debug)]
pub enum HttpError {
    /// The request violates the grammar (→ `400 Bad Request`).
    Malformed(String),
    /// The start line + headers exceed the head budget
    /// (→ `431 Request Header Fields Too Large`).
    HeadTooLarge,
    /// `Content-Length` exceeds the body budget
    /// (→ `413 Content Too Large`).
    BodyTooLarge(usize),
    /// The client was too slow delivering the request — a socket read
    /// timed out or the per-request deadline lapsed
    /// (→ `408 Request Timeout`).
    Timeout,
    /// The connection itself failed; there is nobody to answer.
    Io(io::Error),
}

impl HttpError {
    /// The `(status, reason, message)` the server should answer with, or
    /// `None` when the transport is dead.
    pub fn response(&self) -> Option<(u16, &'static str, String)> {
        match self {
            HttpError::Malformed(m) => Some((400, "Bad Request", m.clone())),
            HttpError::HeadTooLarge => Some((
                431,
                "Request Header Fields Too Large",
                "request head exceeds the configured budget".to_string(),
            )),
            HttpError::BodyTooLarge(n) => Some((
                413,
                "Content Too Large",
                format!("body of {n} bytes exceeds the configured budget"),
            )),
            HttpError::Timeout => Some((
                408,
                "Request Timeout",
                "client was too slow delivering the request".to_string(),
            )),
            HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => f.write_str("request head too large"),
            HttpError::BodyTooLarge(n) => write!(f, "request body of {n} bytes too large"),
            HttpError::Timeout => f.write_str("request read timed out"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Maps a transport error: socket-timeout kinds become [`HttpError::Timeout`]
/// (answerable), everything else is a dead connection.
fn classify(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Budgets applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct ReadLimits {
    /// Byte budget for the start line + headers.
    pub max_head: usize,
    /// Byte budget for the body (`Content-Length` is rejected above it).
    pub max_body: usize,
    /// Wall-clock budget for the entire request — the slow-loris guard.
    /// `None` disables it (trusted in-process callers only).
    pub deadline: Option<Duration>,
}

impl Default for ReadLimits {
    fn default() -> Self {
        ReadLimits {
            max_head: MAX_HEAD,
            max_body: MAX_BODY,
            deadline: None,
        }
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/campaigns/abc`).
    pub path: String,
    /// The raw query string after `?`, empty when absent.
    pub query: String,
    /// Header map with lower-cased names.
    headers: HashMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from `reader` under `limits`.
    ///
    /// # Errors
    ///
    /// `Ok(None)` on a cleanly closed connection (EOF before any bytes);
    /// a typed [`HttpError`] on malformed, oversized, or too-slow
    /// requests, and on transport failures.
    pub fn read<R: BufRead>(
        reader: &mut R,
        limits: &ReadLimits,
    ) -> Result<Option<Request>, HttpError> {
        let deadline = limits.deadline.map(|d| Instant::now() + d);
        let start = match read_line_bounded(reader, limits.max_head, deadline)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => return Ok(None),
            Some(line) => line,
        };
        let mut parts = start.split_whitespace();
        let (method, target) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m, t),
            _ => {
                return Err(HttpError::Malformed(format!(
                    "malformed request line {start:?}"
                )))
            }
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = HashMap::new();
        let mut head_bytes = start.len();
        loop {
            let budget = limits.max_head.saturating_sub(head_bytes);
            let line = read_line_bounded(reader, budget, deadline)?
                .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
            if line.is_empty() {
                break;
            }
            head_bytes += line.len();
            if head_bytes > limits.max_head {
                return Err(HttpError::HeadTooLarge);
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("malformed header line {line:?}")))?;
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }

        let length: usize = match headers.get("content-length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        };
        if length > limits.max_body {
            return Err(HttpError::BodyTooLarge(length));
        }
        let mut body = vec![0; length];
        read_exact_deadline(reader, &mut body, deadline)?;

        Ok(Some(Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body,
        }))
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The value of one `key=value` pair in the query string, if present
    /// (no percent-decoding — the API's tokens don't need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, buffering at most
/// `limit` bytes of line content and re-checking `deadline` every time
/// the transport hands over bytes — a trickling client burns its deadline,
/// not unbounded memory or time. `Ok(None)` at EOF before any byte.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    limit: usize,
    deadline: Option<Instant>,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(HttpError::Timeout);
        }
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify(e)),
        };
        if available.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Malformed("EOF inside line".into()))
            };
        }
        // Never buffer more than one byte past the budget: that one byte
        // is how "the line continues past the limit" is detected.
        let take = available.len().min(limit + 1 - line.len());
        match available[..take].iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&available[..i]);
                reader.consume(i + 1);
                if line.len() > limit {
                    return Err(HttpError::HeadTooLarge);
                }
                while line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| HttpError::Malformed("line is not UTF-8".into()));
            }
            None => {
                line.extend_from_slice(&available[..take]);
                reader.consume(take);
                if line.len() > limit {
                    return Err(HttpError::HeadTooLarge);
                }
            }
        }
    }
}

/// Fills `buf` completely, re-checking `deadline` between transport reads.
fn read_exact_deadline<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < buf.len() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(HttpError::Timeout);
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("EOF inside body".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(classify(e)),
        }
    }
    Ok(())
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Client-side line read: bounded like the server's but surfaced as a
/// plain I/O error (the client retries, it doesn't answer with a status).
fn client_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    match read_line_bounded(reader, MAX_HEAD, None) {
        Ok(line) => Ok(line),
        Err(HttpError::Io(e)) => Err(e),
        Err(e) => Err(bad(e.to_string())),
    }
}

/// Writes a complete (non-chunked) response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response body: `start`, any number of `chunk`s,
/// then `finish` (the zero-length terminator).
pub struct ChunkedBody<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedBody<'a, W> {
    /// Writes the response head and opens the chunked body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start(
        stream: &'a mut W,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<ChunkedBody<'a, W>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
        )?;
        for (name, value) in extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.flush()?;
        Ok(ChunkedBody { stream })
    }

    /// Writes one chunk (empty input writes nothing — an empty chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response — the test/CI helper's view.
#[derive(Debug)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Header map with lower-cased names.
    pub headers: HashMap<String, String>,
    /// The body, de-chunked when the response used chunked transfer.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// Reads a status line + headers from `reader`.
pub(crate) fn read_response_head<R: BufRead>(
    reader: &mut R,
) -> io::Result<(u16, HashMap<String, String>)> {
    let status_line = client_line(reader)?.ok_or_else(|| bad("no status line".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = HashMap::new();
    loop {
        let line = client_line(reader)?.ok_or_else(|| bad("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, headers))
}

/// Minimal HTTP client for tests and smoke scripts: sends one request to
/// `addr` and reads the full (de-chunked) response.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn client_request(addr: &str, method: &str, target: &str, body: &[u8]) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let (status, headers) = read_response_head(&mut reader)?;

    let mut body = Vec::new();
    if headers.get("transfer-encoding").map(String::as_str) == Some("chunked") {
        loop {
            let size_line =
                client_line(&mut reader)?.ok_or_else(|| bad("EOF in chunk size".into()))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section (we send none) ends with a blank line.
                let _ = client_line(&mut reader)?;
                break;
            }
            let mut chunk = vec![0; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(length) = headers.get("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| bad(format!("bad Content-Length {length:?}")))?;
        body = vec![0; length];
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str, limits: &ReadLimits) -> Result<Option<Request>, HttpError> {
        Request::read(&mut Cursor::new(raw.as_bytes().to_vec()), limits)
    }

    #[test]
    fn parses_a_well_formed_request() {
        let req = parse(
            "POST /campaigns?sink=jsonl HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
            &ReadLimits::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.query_param("sink"), Some("jsonl"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn bare_lf_lines_parse_too() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n", &ReadLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("", &ReadLimits::default()).unwrap().is_none());
    }

    #[test]
    fn garbage_request_lines_are_malformed() {
        for raw in ["BLARG\r\n\r\n", "GET /\r\n\r\n", "GET / SMTP/1.0\r\n\r\n"] {
            let err = parse(raw, &ReadLimits::default()).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{raw:?}: {err}");
            assert_eq!(err.response().unwrap().0, 400);
        }
    }

    #[test]
    fn oversized_request_lines_are_431_without_unbounded_buffering() {
        let limits = ReadLimits {
            max_head: 64,
            ..ReadLimits::default()
        };
        // No newline at all: the reader must give up after the budget,
        // not buffer the whole stream.
        let raw = format!("GET /{} HTTP/1.1", "a".repeat(1024 * 1024));
        let err = parse(&raw, &limits).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge), "{err}");
        assert_eq!(err.response().unwrap().0, 431);
    }

    #[test]
    fn oversized_header_blocks_are_431() {
        let limits = ReadLimits {
            max_head: 128,
            ..ReadLimits::default()
        };
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(512));
        let err = parse(&raw, &limits).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge), "{err}");
    }

    #[test]
    fn oversized_declared_bodies_are_413_before_any_body_read() {
        let limits = ReadLimits {
            max_body: 16,
            ..ReadLimits::default()
        };
        let err = parse(
            "POST /campaigns HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            &limits,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(999999)), "{err}");
        assert_eq!(err.response().unwrap().0, 413);
    }

    #[test]
    fn truncated_bodies_and_heads_are_malformed() {
        let err = parse(
            "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            &ReadLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        let err = parse("GET / HTTP/1.1\r\nHost: x", &ReadLimits::default()).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn non_utf8_lines_are_malformed() {
        let mut raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec();
        let err = Request::read(
            &mut Cursor::new(std::mem::take(&mut raw)),
            &ReadLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn an_expired_deadline_times_the_request_out() {
        let limits = ReadLimits {
            deadline: Some(Duration::ZERO),
            ..ReadLimits::default()
        };
        let err = parse("GET / HTTP/1.1\r\n\r\n", &limits).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "{err}");
        assert_eq!(err.response().unwrap().0, 408);
    }

    #[test]
    fn chunked_bodies_round_trip_through_a_buffer() {
        let mut out: Vec<u8> = Vec::new();
        let mut body = ChunkedBody::start(&mut out, "text/plain", &[("X-Tag", "t")]).unwrap();
        body.chunk(b"hello ").unwrap();
        body.chunk(b"").unwrap(); // no-op, must not terminate
        body.chunk(b"world").unwrap();
        body.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Tag: t\r\n"));
        assert!(text.contains("6\r\nhello \r\n"));
        assert!(text.contains("5\r\nworld\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
